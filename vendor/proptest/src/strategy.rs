//! The `Strategy` trait and combinators.

use crate::test_runner::Rng;
use std::rc::Rc;

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Boxes the strategy behind a shared, clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut Rng| s.generate(rng)))
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let s = self;
        from_fn(move |rng| f(s.generate(rng))).boxed()
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
    where
        Self: Sized + 'static,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        let s = self;
        from_fn(move |rng| f(s.generate(rng)).generate(rng)).boxed()
    }

    /// Recursive strategies: `self` is the leaf case; `recurse` receives a
    /// handle generating subtrees and returns the branch case. `depth`
    /// bounds nesting; the `_desired_size`/`_expected_branch_size` hints
    /// of the real crate are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            let leaf = base.clone();
            // At each level, sometimes bottom out early so generated
            // values span all depths, not just the maximum.
            current = from_fn(move |rng| {
                if rng.next_u64() % 4 == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            })
            .boxed();
        }
        current
    }
}

/// Builds a strategy from a generation function.
pub fn from_fn<T, F: Fn(&mut Rng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// A strategy backed by a plain function.
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut Rng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (self.0)(rng)
    }
}

/// A shared, clonable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut Rng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (self.0)(rng)
    }
    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Always generates a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among boxed strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Creates a union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.gen_range_usize(0, self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $as_u64:ident),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let (s, e) = (*self.start() as i128, *self.end() as i128);
                assert!(s <= e, "empty range strategy");
                let span = (e - s + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (s + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(
    u8 => a, u16 => b, u32 => c, u64 => d, usize => e,
    i8 => f, i16 => g, i32 => h, i64 => i, isize => j
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
    A, B, C, D, E, F
));

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop_oneof;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::from_name("bounds");
        for _ in 0..1000 {
            let v = (10i32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let u = (0usize..3).generate(&mut rng);
            assert!(u < 3);
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let n = (-5i64..-1).generate(&mut rng);
            assert!((-5..-1).contains(&n));
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let s = prop_oneof![(0u8..4).prop_map(|v| v as i32), 100i32..104];
        let mut rng = Rng::from_name("compose");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((0..4).contains(&v) || (100..104).contains(&v));
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug)]
        enum T {
            // The payload is constructed but only pattern-matched.
            #[allow(dead_code)]
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u8..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(a.into(), b.into()))
            });
        let mut rng = Rng::from_name("recursive");
        let mut max = 0;
        for _ in 0..300 {
            max = max.max(depth(&s.generate(&mut rng)));
        }
        assert!(max >= 1, "recursion never fired");
        assert!(max <= 3, "depth bound exceeded: {max}");
    }
}
