//! Deterministic RNG, config, and failure type for the proptest subset.

use std::fmt;

/// splitmix64: small, fast, and plenty random for test generation.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seeded(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Derives a deterministic RNG from a test name, so each property test
    /// explores the same cases on every run.
    pub fn from_name(name: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Rng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`; panics if the range is empty.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for API compatibility.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = Rng::from_name("x");
        let mut b = Rng::from_name("x");
        let mut c = Rng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Rng::from_name("range");
        for _ in 0..1000 {
            let v = r.gen_range_usize(3, 9);
            assert!((3..9).contains(&v));
        }
    }
}
