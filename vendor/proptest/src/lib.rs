//! A small, offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the pieces of proptest its property tests use:
//! range/tuple strategies, `prop_map`/`prop_flat_map`/`prop_recursive`,
//! `prop_oneof!`, `collection::vec`, `array::uniform4`, `any`, the
//! `proptest!` macro, and `prop_assert*`. Generation is random (seeded
//! deterministically per test) but there is no shrinking: a failing case
//! reports the error and panics.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, Rng, TestCaseError};

/// `any::<T>()` strategies over a type's whole domain.
pub mod arbitrary {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::Rng;

    /// Types with a full-domain generator.
    pub trait Arbitrary: Sized + 'static {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut Rng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        crate::strategy::from_fn(|rng| T::arbitrary(rng)).boxed()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};

    /// Anything usable as a collection size specification.
    pub trait SizeRange {
        /// Picks a size.
        fn pick(&self, rng: &mut crate::test_runner::Rng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut crate::test_runner::Rng) -> usize {
            rng.gen_range_usize(self.start, self.end)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut crate::test_runner::Rng) -> usize {
            rng.gen_range_usize(*self.start(), *self.end() + 1)
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut crate::test_runner::Rng) -> usize {
            *self
        }
    }

    /// A strategy producing vectors whose elements come from `element`.
    pub fn vec<S, R>(element: S, size: R) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
        R: SizeRange + 'static,
    {
        crate::strategy::from_fn(move |rng| {
            let n = size.pick(rng);
            (0..n).map(|_| element.generate(rng)).collect()
        })
        .boxed()
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::{BoxedStrategy, Strategy};

    macro_rules! uniform {
        ($name:ident, $n:expr) => {
            /// A strategy producing arrays of `$n` values from `element`.
            pub fn $name<S>(element: S) -> BoxedStrategy<[S::Value; $n]>
            where
                S: Strategy + 'static,
                S::Value: 'static,
            {
                crate::strategy::from_fn(move |rng| std::array::from_fn(|_| element.generate(rng)))
                    .boxed()
            }
        };
    }
    uniform!(uniform2, 2);
    uniform!(uniform3, 3);
    uniform!(uniform4, 4);
    uniform!(uniform8, 8);
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Chooses uniformly among strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    }};
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular `#[test]` that generates `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(#[test] fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::Rng::from_name(stringify!($name));
                let strategies = ($($strategy,)*);
                for case in 0..config.cases {
                    let ($($arg,)*) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} failed at case {}/{}: {}",
                               stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}
