//! A small, offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the API surface its benches use: groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, and `Bencher::iter`.
//! Each benchmark runs a fixed warm-up plus a measured batch and prints
//! the mean wall time — enough to spot regressions locally, with no
//! statistics, plotting, or CLI.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the measured batch.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the subset runs a fixed batch size.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.criterion.iters,
            last_ns: 0.0,
        };
        f(&mut b);
        println!("bench {}/{}: {:.1} ns/iter", self.name, id.0, b.last_ns);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.criterion.iters,
            last_ns: 0.0,
        };
        f(&mut b, input);
        println!("bench {}/{}: {:.1} ns/iter", self.name, id.0, b.last_ns);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Accepted for compatibility; there is no CLI to configure from.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            criterion: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut ran = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran >= 4, "warmup + batch: {ran}");
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", "x").0, "f/x");
        assert_eq!(BenchmarkId::from("plain").0, "plain");
    }
}
