//! Workspace-level facade crate.
//!
//! This package exists to host the repository's cross-crate integration
//! tests (`tests/`) and runnable examples (`examples/`). The public API
//! lives in [`wasmperf_core`]; see that crate and the repository README.

pub use wasmperf_core as core;
