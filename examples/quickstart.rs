//! Quickstart: compile one program for every engine and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wasmperf_core::Pipeline;

fn main() {
    // A small CLite program: dot product with a function call in the loop.
    let src = "
        const N = 4096;
        array i32 A[N];
        array i32 B[N];
        fn mix(a: i32, b: i32) -> i32 { return (a ^ b) + (a >> 2); }
        fn main() -> i32 {
            var i: i32 = 0;
            var s: i32 = 0;
            for (i = 0; i < N; i += 1) { A[i] = i * 3 + 1; B[i] = i * 7 - 2; }
            for (i = 0; i < N; i += 1) { s += mix(A[i], B[i]); }
            return s;
        }";

    let pipeline = Pipeline::new(src).expect("program compiles");
    println!("engine          checksum      cycles  instrs  loads  branches  code-bytes");
    let mut native_cycles = None;
    for (engine, r) in pipeline.run_all().expect("all engines agree") {
        let c = &r.counters;
        let total = c.total_cycles();
        let rel = match native_cycles {
            None => {
                native_cycles = Some(total as f64);
                "1.00x".to_string()
            }
            Some(n) => format!("{:.2}x", total as f64 / n),
        };
        println!(
            "{:<15} {:>9}  {:>9} ({rel})  {:>6}  {:>5}  {:>8}  {:>10}",
            format!("{engine:?}"),
            r.checksum,
            total,
            c.instructions_retired,
            c.loads_retired,
            c.branches_retired,
            r.code_bytes,
        );
    }
    println!();
    println!("Every engine computed the same checksum; the WebAssembly engines");
    println!("executed more instructions and cycles — the paper's headline result.");
}
