//! Codegen tour: the paper's Figure 7 case study on your terminal.
//!
//! Shows the same `matmul` function as compiled by the Clang-like native
//! backend and by the Chrome-profile WebAssembly JIT, then runs both and
//! prints the counter deltas that Section 6 of the paper analyses.
//!
//! ```text
//! cargo run --release --example codegen_tour
//! ```

use wasmperf_core::clanglite::CompileOptions;
use wasmperf_core::cpu::{Machine, NullHost};
use wasmperf_core::isa::disasm::format_function;
use wasmperf_core::wasmjit::EngineProfile;

const SRC: &str = "
const NI = 40; const NK = 44; const NJ = 48;
array i32 C[NI * NJ];
array i32 A[NI * NK];
array i32 B[NK * NJ];
fn matmul() {
    var i: i32 = 0; var k: i32 = 0; var j: i32 = 0;
    for (i = 0; i < NI; i += 1) {
        for (k = 0; k < NK; k += 1) {
            for (j = 0; j < NJ; j += 1) {
                C[i * NJ + j] += A[i * NK + k] * B[k * NJ + j];
            }
        }
    }
}
fn main() -> i32 {
    var i: i32 = 0;
    for (i = 0; i < NI * NK; i += 1) { A[i] = i % 13; }
    for (i = 0; i < NK * NJ; i += 1) { B[i] = i % 7; }
    matmul();
    var cs: i32 = 0;
    for (i = 0; i < NI * NJ; i += 1) { cs = cs * 31 + C[i]; }
    return cs;
}";

fn main() {
    let prog = wasmperf_core::cir::compile(SRC).expect("compiles");

    // Native, without unrolling so the listing matches the paper's Fig 7b.
    let native = wasmperf_core::clanglite::compile(
        &prog,
        &CompileOptions {
            unroll: false,
            ..CompileOptions::default()
        },
    );
    let wasm = wasmperf_core::emcc::compile(&prog);
    let jit = wasmperf_core::wasmjit::compile(&wasm, &EngineProfile::chrome()).expect("jit");

    let show = |label: &str, m: &wasmperf_core::isa::Module| {
        let id = m.func_by_name("matmul").expect("matmul");
        let listing = format_function(m.func(id));
        let n = listing.lines().filter(|l| l.starts_with("    ")).count();
        println!("== {label} ({n} instructions) ==\n{listing}");
    };
    show("clanglite (native, like Figure 7b)", &native);
    show("chrome JIT (like Figure 7c)", &jit.module);

    // Now run both (the default native build, with unrolling) and compare
    // retired-event counters.
    let native_full = wasmperf_core::clanglite::compile(&prog, &CompileOptions::default());
    let run = |m: &wasmperf_core::isa::Module| {
        let mut machine = Machine::new(m, NullHost);
        machine
            .run(m.entry.unwrap(), &[], 2_000_000_000)
            .expect("runs")
    };
    let n = run(&native_full);
    let c = run(&jit.module);
    assert_eq!(n.ret, c.ret, "both compute the same matrix");
    println!("== counters (chrome / native) ==");
    let rows = [
        (
            "instructions",
            c.counters.instructions_retired,
            n.counters.instructions_retired,
        ),
        ("loads", c.counters.loads_retired, n.counters.loads_retired),
        (
            "stores",
            c.counters.stores_retired,
            n.counters.stores_retired,
        ),
        (
            "branches",
            c.counters.branches_retired,
            n.counters.branches_retired,
        ),
        (
            "cond branches",
            c.counters.cond_branches_retired,
            n.counters.cond_branches_retired,
        ),
        (
            "cycles",
            c.counters.total_cycles(),
            n.counters.total_cycles(),
        ),
    ];
    for (label, jit_v, native_v) in rows {
        println!(
            "{label:>14}: {jit_v:>10} vs {native_v:>10}  ({:.2}x)",
            jit_v as f64 / native_v as f64
        );
    }
}
