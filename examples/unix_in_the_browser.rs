//! Browsix in action: a POSIX-style program (files, pipes, stdout)
//! compiled to WebAssembly and run against the in-browser kernel.
//!
//! ```text
//! cargo run --release --example unix_in_the_browser
//! ```

use wasmperf_core::{EngineKind, Pipeline};

fn main() {
    // A word-frequency-ish filter: read a file, histogram bytes, write a
    // report file and a summary to stdout — the kind of Unix program the
    // paper's BROWSIX-WASM makes runnable in a browser unmodified.
    let src = r#"
        array u8 buf[4096];
        array i32 hist[256];
        array u8 report[1024];
        array u8 in_path = "/words.txt\0";
        array u8 out_path = "/histogram.bin\0";
        array u8 msg = "histogram written\n";

        fn main() -> i32 {
            var fd: i32 = syscall(5, in_path, 0, 0);
            if (fd < 0) { return 0 - 1; }
            var total: i32 = 0;
            var n: i32 = syscall(3, fd, buf, 4096);
            while (n > 0) {
                var i: i32 = 0;
                for (i = 0; i < n; i += 1) { hist[buf[i]] += 1; }
                total += n;
                n = syscall(3, fd, buf, 4096);
            }
            syscall(6, fd);

            // Serialize the 32 most-populated buckets.
            var o: i32 = 0;
            var b: i32 = 0;
            for (b = 0; b < 256; b += 1) {
                if (hist[b] > 4 && o < 1020) {
                    report[o] = b;
                    report[o + 1] = hist[b] & 255;
                    report[o + 2] = (hist[b] >> 8) & 255;
                    o += 3;
                }
            }
            var ofd: i32 = syscall(5, out_path, 0x241, 0);
            syscall(4, ofd, report, o);
            syscall(6, ofd);
            syscall(4, 1, msg, 18);

            var cs: i32 = total;
            for (b = 0; b < 256; b += 1) { cs = cs * 31 + hist[b]; }
            return cs;
        }"#;

    let mut words = Vec::new();
    for i in 0..600 {
        words.extend_from_slice(["the ", "quick ", "brown ", "fox ", "jumps\n"][i % 5].as_bytes());
    }

    let pipeline = Pipeline::new(src)
        .expect("compiles")
        .with_input("/words.txt", words);

    for engine in [EngineKind::Native, EngineKind::Chrome, EngineKind::Firefox] {
        let r = pipeline.run(engine).expect("runs");
        println!(
            "{engine:?}: checksum={} stdout={:?} kernel-time={:.3}% of {} cycles",
            r.checksum,
            String::from_utf8_lossy(&r.stdout),
            r.counters.host_time_percent(),
            r.counters.total_cycles(),
        );
    }
    println!();
    println!("The same binary semantics, three engines, one in-browser kernel —");
    println!("with kernel (Browsix) time visible separately, as in the paper's Figure 4.");
}
