//! Behavioral equivalence of the sandboxing-cost ablations.
//!
//! The sandbox axis ([`SandboxModel`]) must change *cost*, never
//! *meaning*: explicit bounds checks ([`SandboxModel::Bounds`]) and
//! PKU-style domain switching ([`SandboxModel::Pku`]) have to compute
//! the same values, write the same output bytes, and trap for the same
//! reason as the guard-page baseline every real engine uses. Counters
//! are deliberately *not* compared — the whole point of the axis is
//! that they differ — but the cost deltas themselves are pinned: the
//! bounds tax scales with memory traffic, and the PKU tax is exactly
//! two WRPKRU switches per host-call boundary crossing, which
//! concentrates it on the I/O-heavy class (see docs/SANDBOX.md).

use std::sync::Arc;
use wasmperf_benchsuite::{Benchmark, Size};
use wasmperf_browsix::AppendPolicy;
use wasmperf_cpu::{Machine, NullHost};
use wasmperf_harness::engine::{Engine, RunResult};
use wasmperf_harness::run_one;
use wasmperf_isa::inst::TrapKind;
use wasmperf_isa::Module;
use wasmperf_wasmjit::{EngineProfile, SandboxModel, PKU_SWITCH_CYCLES};

/// Same bound the difftest fuzzer uses for machine pipelines.
const FUEL: u64 = 50_000_000;

/// The guard-page baseline plus the two ablations, on the wasm profile
/// with the smallest register pool (most spills, most heap traffic).
fn ablations() -> [EngineProfile; 3] {
    [
        EngineProfile::chrome(),
        EngineProfile::chrome().with_sandbox(SandboxModel::Bounds),
        EngineProfile::chrome().with_sandbox(SandboxModel::Pku {
            switch_cycles: PKU_SWITCH_CYCLES,
        }),
    ]
}

/// What an ablation may not change about a hostless run: the returned
/// value and exit code, or — for trapping corpus cases — the trap
/// reason. Trap *location* is excluded on purpose: bounds checks add
/// instructions, so the faulting pc shifts with the ablation.
type Behavior = Result<(u64, Option<i32>), TrapKind>;

fn behavior(module: &Module) -> Behavior {
    let entry = module
        .entry
        .or_else(|| module.func_by_name("main"))
        .expect("module has an entry");
    let mut m = Machine::new(module, NullHost);
    m.run(entry, &[], FUEL)
        .map(|out| (out.ret, out.exit_code))
        .map_err(|e| e.kind)
}

/// Replays every corpus case — shrunk programs that each exposed a real
/// divergence, several of which trap by design — under all three
/// sandbox models and demands identical behavior.
#[test]
fn corpus_behaves_identically_under_all_sandbox_models() {
    let mut cases = 0;
    let mut paths: Vec<_> = std::fs::read_dir("corpus")
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "clite"))
        .collect();
    paths.sort();
    for path in paths {
        let src = std::fs::read_to_string(&path).expect("readable case");
        let name = path.display();
        let prog = wasmperf_cir::compile(&src).expect("corpus case compiles");
        let wasm = wasmperf_emcc::compile(&prog);

        let [guard, bounds, pku] = ablations();
        let baseline = behavior(
            &wasmperf_wasmjit::compile(&wasm, &guard)
                .expect("jit compiles")
                .module,
        );
        for profile in [bounds, pku] {
            let jit = wasmperf_wasmjit::compile(&wasm, &profile).expect("jit compiles");
            assert_eq!(
                behavior(&jit.module),
                baseline,
                "{name}: {} diverged from guard-page baseline",
                profile.name
            );
        }
        cases += 1;
    }
    assert!(cases >= 7, "corpus shrank? replayed only {cases} cases");
}

/// An out-of-bounds heap access must trap under every model — the
/// explicit-check ablation and the modeled guard pages fault on the
/// same access, for the same reason.
#[test]
fn oob_access_traps_under_every_sandbox_model() {
    let src = "array i32 a0[4];\nfn main() -> i32 { return a0[49250]; }\n";
    let prog = wasmperf_cir::compile(src).expect("compiles");
    let wasm = wasmperf_emcc::compile(&prog);
    for profile in ablations() {
        let jit = wasmperf_wasmjit::compile(&wasm, &profile).expect("jit compiles");
        assert_eq!(
            behavior(&jit.module),
            Err(TrapKind::MemoryOutOfBounds),
            "{}: gap access must trap",
            profile.name
        );
    }
}

fn run_matrix(bench: &Benchmark) -> [RunResult; 3] {
    ablations().map(|profile| {
        let engine = Engine::Jit(profile);
        run_one(bench, &engine, AppendPolicy::Chunked4K).expect("runs")
    })
}

/// Checks that two ablation runs agree on everything observable —
/// checksum, output bytes, and kernel interaction — while leaving the
/// counters (the ablation's measurement payload) free to differ.
fn assert_same_behavior(a: &RunResult, b: &RunResult, bench: &str) {
    assert_eq!(a.checksum, b.checksum, "{bench}: {} checksum", b.engine);
    assert_eq!(a.outputs, b.outputs, "{bench}: {} outputs", b.engine);
    assert_eq!(
        a.kernel_syscalls, b.kernel_syscalls,
        "{bench}: {} syscalls",
        b.engine
    );
    assert_eq!(
        a.kernel_bytes, b.kernel_bytes,
        "{bench}: {} kernel bytes",
        b.engine
    );
}

/// The full harness matrix: compute-bound kernels and the I/O-heavy
/// class, each run under all three models. Results must be identical;
/// the cost structure must match the model:
///
/// - bounds: more retired instructions and cycles than guard, scaling
///   with memory traffic (two extra uops per heap access);
/// - pku: identical instruction stream to guard, plus exactly
///   `2 × switch_cycles` cycles per host-call boundary crossing.
#[test]
fn harness_matrix_same_results_modeled_costs() {
    let want = ["gemm", "durbin", "401.bzip2"];
    let benches: Vec<Benchmark> = wasmperf_benchsuite::all(Size::Test)
        .into_iter()
        .filter(|b| want.contains(&b.name.as_str()))
        .collect();
    assert_eq!(benches.len(), want.len());
    for bench in &benches {
        let [guard, bounds, pku] = run_matrix(bench);
        assert_same_behavior(&guard, &bounds, &bench.name);
        assert_same_behavior(&guard, &pku, &bench.name);

        // Bounds checks are extra instructions: strictly more retired
        // uops, and at least as many cycles, as the free guard pages.
        assert!(
            bounds.counters.instructions_retired > guard.counters.instructions_retired,
            "{}: bounds retired {} <= guard {}",
            bench.name,
            bounds.counters.instructions_retired,
            guard.counters.instructions_retired
        );
        assert!(
            bounds.counters.cycles >= guard.counters.cycles,
            "{}: bounds cycles {} < guard {}",
            bench.name,
            bounds.counters.cycles,
            guard.counters.cycles
        );

        // PKU leaves the code untouched; the whole tax is the two
        // WRPKRU switches per host call, and nothing else.
        assert_eq!(
            pku.counters.instructions_retired, guard.counters.instructions_retired,
            "{}: pku must not change the instruction stream",
            bench.name
        );
        assert_eq!(
            pku.counters.host_calls, guard.counters.host_calls,
            "{}: pku must not change host-call count",
            bench.name
        );
        assert_eq!(
            pku.counters.cycles - guard.counters.cycles,
            2 * PKU_SWITCH_CYCLES as u64 * pku.counters.host_calls,
            "{}: pku overhead must be exactly two switches per host call",
            bench.name
        );
    }
}

/// The PKU tax lands on the I/O-heavy class: per retired instruction,
/// the recorded `io.rwmix` workload pays far more for domain switching
/// than a compute kernel does, because its host-call density is orders
/// of magnitude higher. This is the ablation's headline asymmetry
/// (bounds taxes compute, PKU taxes I/O).
#[test]
fn pku_overhead_concentrates_on_io_class() {
    let recs = wasmperf_replay::load_dir(std::path::Path::new("recordings")).expect("recordings");
    let rec = recs
        .into_iter()
        .find(|r| r.name == "io.rwmix")
        .expect("io.rwmix recording");
    let io_bench = wasmperf_benchsuite::replay::from_recording(Arc::new(rec));
    let compute_bench = wasmperf_benchsuite::all(Size::Test)
        .into_iter()
        .find(|b| b.name == "gemm")
        .expect("known benchmark");

    let overhead_per_kiloinst = |bench: &Benchmark| {
        let [guard, _, pku] = run_matrix(bench);
        assert_same_behavior(&guard, &pku, &bench.name);
        let tax = pku.counters.cycles - guard.counters.cycles;
        assert_eq!(
            tax,
            2 * PKU_SWITCH_CYCLES as u64 * pku.counters.host_calls,
            "{}: pku overhead must be exactly two switches per host call",
            bench.name
        );
        tax * 1000 / guard.counters.instructions_retired
    };

    let io = overhead_per_kiloinst(&io_bench);
    let compute = overhead_per_kiloinst(&compute_bench);
    assert!(
        io > 10 * compute,
        "pku tax should concentrate on I/O: io.rwmix {io} vs gemm {compute} cycles/kinst"
    );
}
