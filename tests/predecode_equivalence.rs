//! Differential equivalence of the three interpreter loops.
//!
//! The predecoded micro-op engine ([`ExecMode::Predecoded`]) and the
//! direct-threaded superblock engine ([`ExecMode::Threaded`]) must both
//! be unobservable optimizations: every result, trap location, counter,
//! and output byte must match the legacy per-instruction interpreter
//! ([`ExecMode::Legacy`]) exactly. These tests replay the entire
//! regression corpus, a report-style benchmark × engine matrix, and the
//! checked-in replay recordings through all three loops and compare
//! everything — including trap and out-of-fuel outcomes, where the
//! threaded tier's batched fuel accounting must roll back to the exact
//! per-instruction trap location.

use std::sync::Arc;
use wasmperf_benchsuite::{Benchmark, Size};
use wasmperf_browsix::AppendPolicy;
use wasmperf_cpu::machine::ExecError;
use wasmperf_cpu::{ExecMode, Machine, NullHost, PerfCounters};
use wasmperf_harness::engine::{
    execute_with_mode, execute_with_mode_and_fuel, run_one_traced, Engine,
};
use wasmperf_harness::{prepare, TraceConfig};
use wasmperf_isa::Module;
use wasmperf_wasmjit::EngineProfile;

/// Same bound the difftest fuzzer uses for machine pipelines.
const FUEL: u64 = 50_000_000;

/// The two optimized loops, each checked against [`ExecMode::Legacy`].
const FAST_MODES: [ExecMode; 2] = [ExecMode::Predecoded, ExecMode::Threaded];

/// Everything observable about a hostless run: the outcome (or the full
/// trap, location and detail included) plus the final counters.
type Observation = (Result<(u64, Option<i32>), ExecError>, PerfCounters);

fn observe(module: &Module, mode: ExecMode) -> Observation {
    let entry = module
        .entry
        .or_else(|| module.func_by_name("main"))
        .expect("module has an entry");
    let mut m = Machine::new(module, NullHost);
    m.set_exec_mode(mode);
    let res = m.run(entry, &[], FUEL).map(|out| (out.ret, out.exit_code));
    (res, m.counters())
}

fn assert_modes_agree(module: &Module, what: &str) {
    let slow = observe(module, ExecMode::Legacy);
    for mode in FAST_MODES {
        let fast = observe(module, mode);
        assert_eq!(fast, slow, "{what}: {mode:?} and legacy runs diverged");
    }
}

/// Replays every corpus case — each a shrunk program that once exposed a
/// real semantics divergence, several of which trap by design — through
/// all four machine-code pipelines, under all three interpreter loops.
#[test]
fn corpus_replays_identically_under_all_loops() {
    let mut cases = 0;
    let mut paths: Vec<_> = std::fs::read_dir("corpus")
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "clite"))
        .collect();
    paths.sort();
    for path in paths {
        let src = std::fs::read_to_string(&path).expect("readable case");
        let name = path.display();
        let prog = wasmperf_cir::compile(&src).expect("corpus case compiles");

        let native = wasmperf_clanglite::compile(&prog, &Default::default());
        assert_modes_agree(&native, &format!("{name} (native)"));

        let wasm = wasmperf_emcc::compile(&prog);
        for profile in [
            EngineProfile::chrome(),
            EngineProfile::firefox(),
            EngineProfile::chrome_asmjs(),
            EngineProfile::firefox_asmjs(),
        ] {
            let jit = wasmperf_wasmjit::compile(&wasm, &profile).expect("jit compiles");
            assert_modes_agree(&jit.module, &format!("{name} ({})", profile.name));
        }
        cases += 1;
    }
    assert!(cases >= 7, "corpus shrank? replayed only {cases} cases");
}

/// A report-style sweep: real benchmarks (compute-bound kernels and
/// I/O-heavy SPEC analogs) on the paper's engine set, comparing the
/// full [`wasmperf_harness::RunResult`] — checksum, every counter,
/// syscall count, and output file bytes — across all three loops.
#[test]
fn report_matrix_is_byte_identical_across_loops() {
    let want = ["gemm", "durbin", "401.bzip2", "464.h264ref"];
    let benches: Vec<Benchmark> = wasmperf_benchsuite::all(Size::Test)
        .into_iter()
        .filter(|b| want.contains(&b.name.as_str()))
        .collect();
    assert_eq!(benches.len(), want.len());
    for bench in &benches {
        for engine in Engine::headline() {
            let artifact = prepare(bench, &engine).expect("compiles");
            let run = |mode| {
                execute_with_mode(bench, &engine, &artifact, AppendPolicy::Chunked4K, mode)
                    .expect("runs")
            };
            let slow = run(ExecMode::Legacy);
            for mode in FAST_MODES {
                assert_eq!(
                    run(mode),
                    slow,
                    "{}/{}: {mode:?} diverged from legacy",
                    bench.name,
                    engine.name()
                );
            }
        }
    }
}

/// Every checked-in replay recording — compute-bound (`gemm`), I/O-bound
/// (`io.rwmix`), and mixed (`401.bzip2`) — replays byte-identically under
/// all three loops, on the native pipeline and a wasm JIT. The replay
/// kernel answers syscalls from the recording, so this exercises the
/// threaded tier's host-call side exits against recorded workloads.
#[test]
fn recordings_replay_identically_across_loops() {
    let recs = wasmperf_replay::load_dir(std::path::Path::new("recordings")).expect("corpus");
    assert!(
        recs.len() >= 3,
        "expected >= 3 recordings, got {}",
        recs.len()
    );
    for rec in recs {
        let bench = wasmperf_benchsuite::replay::from_recording(Arc::new(rec));
        for engine in [Engine::Native, Engine::Jit(EngineProfile::chrome())] {
            let artifact = prepare(&bench, &engine).expect("compiles");
            let run = |mode| {
                execute_with_mode(&bench, &engine, &artifact, AppendPolicy::Chunked4K, mode)
                    .expect("replays")
            };
            let slow = run(ExecMode::Legacy);
            for mode in FAST_MODES {
                assert_eq!(
                    run(mode),
                    slow,
                    "{}/{}: {mode:?} diverged from legacy",
                    bench.name,
                    engine.name()
                );
            }
        }
    }
}

/// A torn recording traps mid-run with a replay-divergence error; the
/// error (benchmark, engine, and message, including the trap location)
/// must be identical under all three loops.
#[test]
fn truncated_recording_traps_identically_across_loops() {
    let recs = wasmperf_replay::load_dir(std::path::Path::new("recordings")).expect("corpus");
    let mut rec = recs
        .into_iter()
        .find(|r| r.name == "io.rwmix")
        .expect("io.rwmix recording");
    rec.records.pop();
    let bench = wasmperf_benchsuite::replay::from_recording(Arc::new(rec));
    let engine = Engine::Native;
    let artifact = prepare(&bench, &engine).expect("compiles");
    let run = |mode| {
        execute_with_mode(&bench, &engine, &artifact, AppendPolicy::Chunked4K, mode)
            .expect_err("truncated recording must not replay cleanly")
    };
    let slow = run(ExecMode::Legacy);
    let msg = slow.to_string();
    assert!(
        msg.contains("replay") || msg.contains("divergence"),
        "unhelpful truncation error: {msg}"
    );
    for mode in FAST_MODES {
        assert_eq!(run(mode), slow, "{mode:?} truncation trap diverged");
    }
}

/// Out-of-fuel runs through the full harness: at several budgets — some
/// tiny, some mid-run — every loop reports the identical
/// [`wasmperf_harness::Error::OutOfFuel`]. The threaded tier batches fuel
/// per superblock, so this pins its side-exit rollback at harness level.
#[test]
fn out_of_fuel_is_identical_across_loops() {
    let bench = wasmperf_benchsuite::all(Size::Test)
        .into_iter()
        .find(|b| b.name == "gemm")
        .expect("known benchmark");
    for engine in [Engine::Native, Engine::Jit(EngineProfile::chrome())] {
        let artifact = prepare(&bench, &engine).expect("compiles");
        let full = execute_with_mode(
            &bench,
            &engine,
            &artifact,
            AppendPolicy::Chunked4K,
            ExecMode::Legacy,
        )
        .expect("runs");
        let total = full.counters.instructions_retired;
        for fuel in [1, 97, total / 2, total - 1] {
            let run = |mode| {
                execute_with_mode_and_fuel(
                    &bench,
                    &engine,
                    &artifact,
                    AppendPolicy::Chunked4K,
                    mode,
                    fuel,
                )
                .expect_err("budget chosen below the benchmark's run length")
            };
            let slow = run(ExecMode::Legacy);
            for mode in FAST_MODES {
                assert_eq!(
                    run(mode),
                    slow,
                    "{}/fuel={fuel}: {mode:?} out-of-fuel diverged",
                    engine.name()
                );
            }
        }
    }
}

/// Profiled runs are pinned to the legacy loop so `wasmperf-trace`
/// attribution stays exact per instruction — but their results must
/// still match both optimized loops, and the profile must cover every
/// retired instruction and cycle.
#[test]
fn traced_legacy_run_matches_optimized_runs() {
    let bench = wasmperf_benchsuite::all(Size::Test)
        .into_iter()
        .find(|b| b.name == "401.bzip2")
        .expect("known benchmark");
    let engine = Engine::Jit(EngineProfile::chrome());

    let config = TraceConfig {
        profile: true,
        ..TraceConfig::off()
    };
    let (traced, session) =
        run_one_traced(&bench, &engine, AppendPolicy::Chunked4K, config).expect("traced run");

    let artifact = prepare(&bench, &engine).expect("compiles");
    for mode in FAST_MODES {
        let fast = execute_with_mode(&bench, &engine, &artifact, AppendPolicy::Chunked4K, mode)
            .expect("runs");
        assert_eq!(traced, fast, "traced (legacy) vs {mode:?} diverged");
        assert_eq!(
            session
                .as_ref()
                .expect("tracing on")
                .profile
                .as_ref()
                .expect("profile collected")
                .total_instructions(),
            fast.counters.instructions_retired
        );
    }
}
