//! Differential equivalence of the two interpreter loops.
//!
//! The predecoded micro-op engine ([`ExecMode::Predecoded`]) must be an
//! unobservable optimization: every result, trap location, counter, and
//! output byte must match the legacy per-instruction interpreter
//! ([`ExecMode::Legacy`]) exactly. These tests replay the entire
//! regression corpus and a report-style benchmark × engine matrix
//! through both loops and compare everything.

use wasmperf_benchsuite::{Benchmark, Size};
use wasmperf_browsix::AppendPolicy;
use wasmperf_cpu::machine::ExecError;
use wasmperf_cpu::{ExecMode, Machine, NullHost, PerfCounters};
use wasmperf_harness::engine::{execute_with_mode, run_one_traced, Engine};
use wasmperf_harness::{prepare, TraceConfig};
use wasmperf_isa::Module;
use wasmperf_wasmjit::EngineProfile;

/// Same bound the difftest fuzzer uses for machine pipelines.
const FUEL: u64 = 50_000_000;

/// Everything observable about a hostless run: the outcome (or the full
/// trap, location and detail included) plus the final counters.
type Observation = (Result<(u64, Option<i32>), ExecError>, PerfCounters);

fn observe(module: &Module, mode: ExecMode) -> Observation {
    let entry = module
        .entry
        .or_else(|| module.func_by_name("main"))
        .expect("module has an entry");
    let mut m = Machine::new(module, NullHost);
    m.set_exec_mode(mode);
    let res = m.run(entry, &[], FUEL).map(|out| (out.ret, out.exit_code));
    (res, m.counters())
}

fn assert_modes_agree(module: &Module, what: &str) {
    let fast = observe(module, ExecMode::Predecoded);
    let slow = observe(module, ExecMode::Legacy);
    assert_eq!(fast, slow, "{what}: predecoded and legacy runs diverged");
}

/// Replays every corpus case — each a shrunk program that once exposed a
/// real semantics divergence — through all four machine-code pipelines,
/// under both interpreter loops.
#[test]
fn corpus_replays_identically_under_both_loops() {
    let mut cases = 0;
    let mut paths: Vec<_> = std::fs::read_dir("corpus")
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "clite"))
        .collect();
    paths.sort();
    for path in paths {
        let src = std::fs::read_to_string(&path).expect("readable case");
        let name = path.display();
        let prog = wasmperf_cir::compile(&src).expect("corpus case compiles");

        let native = wasmperf_clanglite::compile(&prog, &Default::default());
        assert_modes_agree(&native, &format!("{name} (native)"));

        let wasm = wasmperf_emcc::compile(&prog);
        for profile in [
            EngineProfile::chrome(),
            EngineProfile::firefox(),
            EngineProfile::chrome_asmjs(),
            EngineProfile::firefox_asmjs(),
        ] {
            let jit = wasmperf_wasmjit::compile(&wasm, &profile).expect("jit compiles");
            assert_modes_agree(&jit.module, &format!("{name} ({})", profile.name));
        }
        cases += 1;
    }
    assert!(cases >= 7, "corpus shrank? replayed only {cases} cases");
}

/// A report-style sweep: real benchmarks (compute-bound kernels and
/// I/O-heavy SPEC analogs) on the paper's engine set, comparing the
/// full [`wasmperf_harness::RunResult`] — checksum, every counter,
/// syscall count, and output file bytes.
#[test]
fn report_matrix_is_byte_identical_across_loops() {
    let want = ["gemm", "durbin", "401.bzip2", "464.h264ref"];
    let benches: Vec<Benchmark> = wasmperf_benchsuite::all(Size::Test)
        .into_iter()
        .filter(|b| want.contains(&b.name.as_str()))
        .collect();
    assert_eq!(benches.len(), want.len());
    for bench in &benches {
        for engine in Engine::headline() {
            let artifact = prepare(bench, &engine).expect("compiles");
            let run = |mode| {
                execute_with_mode(bench, &engine, &artifact, AppendPolicy::Chunked4K, mode)
                    .expect("runs")
            };
            let fast = run(ExecMode::Predecoded);
            let slow = run(ExecMode::Legacy);
            assert_eq!(
                fast,
                slow,
                "{}/{}: loops diverged",
                bench.name,
                engine.name()
            );
        }
    }
}

/// Profiled runs are pinned to the legacy loop so `wasmperf-trace`
/// attribution stays exact per instruction — but their results must
/// still match a predecoded run, and the profile must cover every
/// retired instruction and cycle.
#[test]
fn traced_legacy_run_matches_predecoded_run() {
    let bench = wasmperf_benchsuite::all(Size::Test)
        .into_iter()
        .find(|b| b.name == "401.bzip2")
        .expect("known benchmark");
    let engine = Engine::Jit(EngineProfile::chrome());

    let config = TraceConfig {
        profile: true,
        ..TraceConfig::off()
    };
    let (traced, session) =
        run_one_traced(&bench, &engine, AppendPolicy::Chunked4K, config).expect("traced run");

    let artifact = prepare(&bench, &engine).expect("compiles");
    let fast = execute_with_mode(
        &bench,
        &engine,
        &artifact,
        AppendPolicy::Chunked4K,
        ExecMode::Predecoded,
    )
    .expect("runs");
    assert_eq!(traced, fast, "traced (legacy) vs predecoded diverged");

    let profile = session
        .expect("tracing on")
        .profile
        .expect("profile collected");
    assert_eq!(
        profile.total_instructions(),
        fast.counters.instructions_retired
    );
}
