//! Cross-executor differential tests.
//!
//! Every benchmark must produce identical checksums under four executors:
//! the CLite interpreter, the wasm reference interpreter, the native
//! build, and the browser JITs — the repository's strongest correctness
//! property.

use wasmperf_benchsuite::{Benchmark, Size};
use wasmperf_browsix::{AppendPolicy, Kernel};
use wasmperf_core::{EngineKind, Pipeline};
use wasmperf_wasm::{Instance, Value};

fn clite_checksum(b: &Benchmark) -> i32 {
    let prog = wasmperf_cir::compile(&b.source).expect("compiles");
    let mut kernel = Kernel::new(AppendPolicy::Chunked4K);
    for (p, d) in &b.inputs {
        kernel.fs.write_all(p, d).unwrap();
    }
    let mut i = wasmperf_cir::Interp::new(&prog, kernel);
    i.set_fuel(4_000_000_000);
    i.run("main", &[]).expect("runs").expect("checksum") as u32 as i32
}

fn wasm_interp_checksum(b: &Benchmark) -> i32 {
    let prog = wasmperf_cir::compile(&b.source).expect("compiles");
    let module = wasmperf_emcc::compile(&prog);
    wasmperf_wasm::validate(&module).expect("validates");
    let mut kernel = Kernel::new(AppendPolicy::Chunked4K);
    for (p, d) in &b.inputs {
        kernel.fs.write_all(p, d).unwrap();
    }
    let mut inst = Instance::new(&module, kernel).expect("instantiates");
    match inst.invoke_export("main", &[]).expect("runs") {
        Some(Value::I32(v)) => v,
        other => panic!("unexpected result {other:?}"),
    }
}

fn machine_checksum(b: &Benchmark, engine: EngineKind) -> i32 {
    let mut p = Pipeline::new(&b.source).expect("compiles");
    for (path, data) in &b.inputs {
        p = p.with_input(path, data.clone());
    }
    p.run(engine).expect("runs").checksum
}

/// A fast representative subset (full sweeps run in the report binary).
fn subset() -> Vec<Benchmark> {
    let want = [
        "gemm",
        "lu",
        "durbin",
        "fdtd-2d",
        "gramschmidt",
        "401.bzip2",
        "429.mcf",
        "445.gobmk",
        "450.soplex",
        "458.sjeng",
        "464.h264ref",
        "473.astar",
        "641.leela_s",
    ];
    wasmperf_benchsuite::all(Size::Test)
        .into_iter()
        .filter(|b| want.contains(&b.name.as_str()))
        .collect()
}

#[test]
fn four_executors_agree_on_subset() {
    for b in subset() {
        let clite = clite_checksum(&b);
        assert_eq!(clite, wasm_interp_checksum(&b), "{}: wasm interp", b.name);
        assert_eq!(
            clite,
            machine_checksum(&b, EngineKind::Native),
            "{}: native",
            b.name
        );
        assert_eq!(
            clite,
            machine_checksum(&b, EngineKind::Chrome),
            "{}: chrome",
            b.name
        );
        assert_eq!(
            clite,
            machine_checksum(&b, EngineKind::Firefox),
            "{}: firefox",
            b.name
        );
    }
}

#[test]
fn asmjs_engines_agree_too() {
    for b in subset().into_iter().take(4) {
        let clite = clite_checksum(&b);
        for engine in [EngineKind::ChromeAsmjs, EngineKind::FirefoxAsmjs] {
            assert_eq!(
                clite,
                machine_checksum(&b, engine),
                "{}: {engine:?}",
                b.name
            );
        }
    }
}

#[test]
fn all_polybench_native_vs_chrome() {
    for b in wasmperf_benchsuite::polybench::all(Size::Test) {
        let native = machine_checksum(&b, EngineKind::Native);
        let chrome = machine_checksum(&b, EngineKind::Chrome);
        assert_eq!(native, chrome, "{}", b.name);
    }
}
