//! Property-based differential fuzzing.
//!
//! Generates random CLite expression programs and checks that the CLite
//! interpreter, the wasm interpreter, the native backend, and both JIT
//! profiles compute identical results — plus binary-format round-trips of
//! the emitted wasm modules.

use proptest::prelude::*;
use wasmperf_core::{EngineKind, Pipeline};
use wasmperf_wasm::{Instance, NoImports, Value};

/// A random integer expression over variables a..d, avoiding traps:
/// divisors forced odd-positive, shift counts masked.
#[derive(Debug, Clone)]
enum Expr {
    Var(u8),
    Lit(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Rem(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Shl(Box<Expr>, Box<Expr>),
    Shr(Box<Expr>, Box<Expr>),
    Lt(Box<Expr>, Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(Expr::Var),
        (-1000i32..1000).prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Rem(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Shl(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Shr(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Lt(a.into(), b.into())),
        ]
    })
}

fn render(e: &Expr) -> String {
    match e {
        Expr::Var(v) => format!("{}", (b'a' + v) as char),
        Expr::Lit(v) => {
            if *v < 0 {
                format!("(0 - {})", -(*v as i64))
            } else {
                format!("{v}")
            }
        }
        Expr::Add(a, b) => format!("({} + {})", render(a), render(b)),
        Expr::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        Expr::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        // Trap-free division: divisor made odd, positive, and small.
        Expr::Div(a, b) => format!("({} / (({} & 255) | 1))", render(a), render(b)),
        Expr::Rem(a, b) => format!("({} % (({} & 255) | 1))", render(a), render(b)),
        Expr::And(a, b) => format!("({} & {})", render(a), render(b)),
        Expr::Or(a, b) => format!("({} | {})", render(a), render(b)),
        Expr::Xor(a, b) => format!("({} ^ {})", render(a), render(b)),
        Expr::Shl(a, b) => format!("({} << ({} & 31))", render(a), render(b)),
        Expr::Shr(a, b) => format!("({} >> ({} & 31))", render(a), render(b)),
        Expr::Lt(a, b) => format!("(i32({} < {}))", render(a), render(b)),
    }
}

fn program_for(e: &Expr) -> String {
    format!(
        "fn main(a: i32, b: i32, c: i32, d: i32) -> i32 {{
             var r: i32 = {};
             return r;
         }}",
        render(e)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_expressions_agree_everywhere(
        e in expr_strategy(),
        args in proptest::array::uniform4(-10000i32..10000),
    ) {
        let src = program_for(&e);
        let prog = wasmperf_cir::compile(&src).expect("generated source compiles");

        // Oracle: CLite interpreter.
        let mut ci = wasmperf_cir::Interp::new(&prog, wasmperf_cir::NoSyscalls);
        let raw_args: Vec<u64> = args.iter().map(|&a| a as u32 as u64).collect();
        let oracle = ci.run("main", &raw_args).expect("no traps").unwrap() as u32 as i32;

        // wasm interpreter.
        let wasm = wasmperf_emcc::compile(&prog);
        wasmperf_wasm::validate(&wasm).expect("validates");
        let mut wi = Instance::new(&wasm, NoImports).unwrap();
        let vargs: Vec<Value> = args.iter().map(|&a| Value::I32(a)).collect();
        let wr = wi.invoke_export("main", &vargs).unwrap();
        prop_assert_eq!(wr, Some(Value::I32(oracle)));

        // Binary round trip.
        let bytes = wasmperf_wasm::binary::encode(&wasm);
        let decoded = wasmperf_wasm::binary::decode(&bytes).expect("decodes");
        prop_assert_eq!(&decoded, &wasm);

        // Machines: native + chrome JIT via explicit modules (Pipeline
        // runs main() without args, so invoke machines directly).
        let native = wasmperf_clanglite::compile(&prog, &Default::default());
        let mut nm = wasmperf_cpu::Machine::new(&native, wasmperf_cpu::NullHost);
        let nr = nm.run(native.entry.unwrap(), &raw_args, 50_000_000).expect("native runs");
        prop_assert_eq!(nr.ret as u32 as i32, oracle);

        let jit = wasmperf_wasmjit::compile(&wasm, &wasmperf_wasmjit::EngineProfile::chrome())
            .expect("jit compiles");
        let mut jm = wasmperf_cpu::Machine::new(&jit.module, wasmperf_cpu::NullHost);
        let jid = jit.module.func_by_name("main").unwrap();
        let jr = jm.run(jid, &raw_args, 50_000_000).expect("jit runs");
        prop_assert_eq!(jr.ret as u32 as i32, oracle);
    }
}

/// Keep the unused Pipeline import honest (and give the file one plain
/// smoke test that does not need proptest).
#[test]
fn pipeline_smoke() {
    let p = Pipeline::new("fn main() -> i32 { return 5 * 8 + 2; }").unwrap();
    assert_eq!(p.run(EngineKind::Firefox).unwrap().checksum, 42);
}
