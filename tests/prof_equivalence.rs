//! wasmperf-prof's unobservability and reconciliation contract.
//!
//! Profiling is a read-only layer: a profiled run must be byte-identical
//! to an unprofiled run — same checksum, same counters, same output
//! files — for compute-bound and syscall-bound programs alike, on all
//! four standard pipelines. And what the profiler reports must reconcile
//! exactly: per-record cycle components sum to each record's cycles, the
//! profile's total to the run's kernel `host_cycles`, and the three-way
//! attribution to `total_cycles + compile_cycles`.

use wasmperf_browsix::AppendPolicy;
use wasmperf_harness::{run_one, run_one_traced, Engine, TraceConfig};
use wasmperf_trace::SyscallProfile;

fn four_pipelines() -> Vec<Engine> {
    ["native", "chrome", "firefox", "chrome-asmjs"]
        .iter()
        .map(|n| Engine::parse(n).unwrap())
        .collect()
}

fn find_bench(name: &str) -> wasmperf_benchsuite::Benchmark {
    wasmperf_benchsuite::all(wasmperf_benchsuite::Size::Test)
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("{name} in suite"))
}

#[test]
fn profiled_runs_are_byte_identical_for_compute_and_io() {
    // One compute kernel and one I/O-class benchmark; strace-only and
    // full configs must both leave the result untouched.
    for bench_name in ["gemm", "io.rwmix"] {
        let bench = find_bench(bench_name);
        for engine in four_pipelines() {
            let plain = run_one(&bench, &engine, AppendPolicy::Chunked4K).unwrap();
            for config in [
                TraceConfig {
                    strace: true,
                    profile: false,
                    spans: false,
                },
                TraceConfig::full(),
            ] {
                let (traced, trace) =
                    run_one_traced(&bench, &engine, AppendPolicy::Chunked4K, config).unwrap();
                let ctx = format!("{bench_name} on {}", engine.name());
                assert_eq!(plain, traced, "profiled run must be identical: {ctx}");
                assert!(trace.is_some(), "{ctx}");
            }
        }
    }
}

#[test]
fn io_benchmarks_validate_across_all_pipelines() {
    // The cross-engine cmp step for the whole I/O class: every pipeline
    // agrees on checksum and output bytes, and every program actually
    // exercises the kernel.
    for bench in wasmperf_benchsuite::io::all(wasmperf_benchsuite::Size::Test) {
        let mut results = Vec::new();
        for engine in four_pipelines() {
            let r = run_one(&bench, &engine, AppendPolicy::Chunked4K).unwrap();
            assert!(r.kernel_syscalls > 0, "{} is syscall-bound", bench.name);
            assert!(r.kernel_bytes > 0, "{} marshals payload", bench.name);
            assert!(!r.outputs.is_empty() && !r.outputs[0].1.is_empty());
            results.push((engine.name(), r.checksum, r.outputs));
        }
        for w in results.windows(2) {
            assert_eq!(
                (&w[0].1, &w[0].2),
                (&w[1].1, &w[1].2),
                "{}: {} vs {} disagree",
                bench.name,
                w[0].0,
                w[1].0
            );
        }
    }
}

#[test]
fn profile_reconciles_exactly_with_run_counters() {
    for bench_name in ["io.pipechain", "io.grep", "io.fsmeta", "io.rwmix", "gemm"] {
        let bench = find_bench(bench_name);
        for engine in four_pipelines() {
            let (result, trace) = run_one_traced(
                &bench,
                &engine,
                AppendPolicy::Chunked4K,
                TraceConfig::full(),
            )
            .unwrap();
            let trace = trace.unwrap();
            let log = trace.strace.as_ref().unwrap();
            let ctx = format!("{bench_name} on {}", engine.name());

            // Per-record components sum to each record's cycles.
            for r in &log.records {
                assert_eq!(
                    r.transport_cycles + r.service_cycles + r.fs_cycles,
                    r.cycles,
                    "{ctx}"
                );
            }

            // The aggregated profile's cycle total equals host_cycles.
            let profile = SyscallProfile::from_log(log);
            assert_eq!(
                profile.total_cycles(),
                result.counters.host_cycles,
                "{ctx}: per-syscall cycles must sum to kernel host_cycles"
            );
            assert_eq!(profile.total_calls(), result.kernel_syscalls, "{ctx}");
            assert_eq!(profile.total_payload(), result.kernel_bytes, "{ctx}");

            // The three-way attribution accounts for every cycle:
            // counters.cycles is user execution (host time is separate).
            let attr = profile.attribution(result.counters.cycles, result.compile_cycles);
            assert_eq!(
                attr.total(),
                result.counters.total_cycles() + result.compile_cycles,
                "{ctx}: attribution must cover the whole run"
            );
        }
    }
}
