//! The paper's qualitative results, asserted as fast integration tests.
//!
//! These check the *shape* of every headline finding at `Size::Test`; the
//! full-scale numbers live in EXPERIMENTS.md (produced by the `report`
//! binary at `Size::Ref`).

use wasmperf_benchsuite::Size;
use wasmperf_browsix::AppendPolicy;
use wasmperf_harness::{prepare, run_one, Engine, Session};
use wasmperf_wasmjit::EngineProfile;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// SPEC subset used by the fast shape checks.
const SPEC_SUBSET: [&str; 6] = [
    "401.bzip2",
    "445.gobmk",
    "450.soplex",
    "458.sjeng",
    "473.astar",
    "482.sphinx3",
];

#[test]
fn webassembly_is_substantially_slower_on_spec() {
    let mut s = Session::new(Size::Test);
    let mut ch = Vec::new();
    let mut fx = Vec::new();
    for name in SPEC_SUBSET {
        ch.push(
            s.slowdown(name, &Engine::Jit(EngineProfile::chrome()))
                .unwrap(),
        );
        fx.push(
            s.slowdown(name, &Engine::Jit(EngineProfile::firefox()))
                .unwrap(),
        );
    }
    let (gc, gf) = (geomean(&ch), geomean(&fx));
    // The paper: 1.55x / 1.45x over full SPEC at ref size; at test size we
    // only require a substantial gap in the right order of magnitude.
    assert!(gc > 1.25 && gc < 2.5, "chrome geomean {gc}");
    assert!(gf > 1.25 && gf < 2.5, "firefox geomean {gf}");
}

#[test]
fn counters_inflate_in_the_papers_directions() {
    let mut s = Session::new(Size::Test);
    let mut instr = Vec::new();
    let mut loads = Vec::new();
    let mut stores = Vec::new();
    let mut branches = Vec::new();
    for name in SPEC_SUBSET {
        let n = s.run(name, &Engine::Native).unwrap().counters;
        let c = s
            .run(name, &Engine::Jit(EngineProfile::chrome()))
            .unwrap()
            .counters;
        instr.push(c.instructions_retired as f64 / n.instructions_retired as f64);
        loads.push(c.loads_retired as f64 / n.loads_retired as f64);
        stores.push(c.stores_retired as f64 / n.stores_retired as f64);
        branches.push(c.branches_retired as f64 / n.branches_retired as f64);
    }
    assert!(geomean(&instr) > 1.4, "instructions {:?}", geomean(&instr));
    assert!(geomean(&loads) > 1.1, "loads {:?}", geomean(&loads));
    assert!(geomean(&stores) > 1.05, "stores {:?}", geomean(&stores));
    assert!(
        geomean(&branches) > 1.3,
        "branches {:?}",
        geomean(&branches)
    );
}

#[test]
fn asmjs_is_slower_than_wasm() {
    let mut s = Session::new(Size::Test);
    let mut ratios = Vec::new();
    for name in ["401.bzip2", "473.astar", "458.sjeng"] {
        let wasm = s
            .run(name, &Engine::Jit(EngineProfile::chrome()))
            .unwrap()
            .counters
            .total_cycles() as f64;
        let asmjs = s
            .run(name, &Engine::Jit(EngineProfile::chrome_asmjs()))
            .unwrap()
            .counters
            .total_cycles() as f64;
        ratios.push(asmjs / wasm);
    }
    let g = geomean(&ratios);
    assert!(g > 1.1, "asm.js/wasm geomean {g} (paper: 1.54x in Chrome)");
}

#[test]
fn browsix_overhead_is_small_for_compute_benchmarks() {
    let mut s = Session::new(Size::Test);
    // PolyBench makes no syscalls: zero kernel share.
    let pct = s
        .run("gemm", &Engine::Jit(EngineProfile::firefox()))
        .unwrap()
        .counters
        .host_time_percent();
    assert_eq!(pct, 0.0);
    // The compute-dominated SPEC analogs stay in low single digits even at
    // test size (at ref size they land under ~2%, cf. the paper's 1.2%).
    let pct = s
        .run("482.sphinx3", &Engine::Jit(EngineProfile::firefox()))
        .unwrap()
        .counters
        .host_time_percent();
    assert!(pct < 5.0, "{pct}%");
}

#[test]
fn mcf_is_the_closest_to_parity() {
    let mut s = Session::new(Size::Test);
    let mcf = s
        .slowdown("429.mcf", &Engine::Jit(EngineProfile::chrome()))
        .unwrap();
    let sjeng = s
        .slowdown("458.sjeng", &Engine::Jit(EngineProfile::chrome()))
        .unwrap();
    // The paper's anomaly: memory-bound mcf hides wasm's instruction
    // overhead under cache misses; compute-bound sjeng cannot.
    assert!(mcf < sjeng, "mcf {mcf} vs sjeng {sjeng}");
    assert!(mcf < 1.35, "mcf should be near parity, got {mcf}");
}

#[test]
fn browserfs_append_policy_matters() {
    let s = Session::new(Size::Test);
    let b = s.bench("464.h264ref").unwrap().clone();
    let exact = run_one(
        &b,
        &Engine::Jit(EngineProfile::firefox()),
        AppendPolicy::ExactFit,
    )
    .expect("runs");
    let chunked = run_one(
        &b,
        &Engine::Jit(EngineProfile::firefox()),
        AppendPolicy::Chunked4K,
    )
    .expect("runs");
    assert_eq!(exact.checksum, chunked.checksum);
    assert!(
        exact.counters.host_cycles > chunked.counters.host_cycles,
        "exact-fit {} vs chunked {}",
        exact.counters.host_cycles,
        chunked.counters.host_cycles
    );
}

#[test]
fn jit_compiles_much_faster_than_native() {
    let s = Session::new(Size::Test);
    let b = s.bench("458.sjeng").unwrap().clone();
    // Table 2's shape under the deterministic compile-cost model: the AOT
    // pipeline (graph coloring, unrolling) is decisively slower to compile
    // than the single-pass JIT.
    let native = prepare(&b, &Engine::Native).expect("native compiles");
    let jit = prepare(&b, &Engine::Jit(EngineProfile::chrome())).expect("jit compiles");
    assert!(
        native.compile_cycles > 3 * jit.compile_cycles,
        "native {} vs jit {}",
        native.compile_cycles,
        jit.compile_cycles
    );
}

#[test]
fn tiers_do_not_regress() {
    use wasmperf_wasmjit::Tier;
    let mut s = Session::new(Size::Test);
    let mut last = f64::INFINITY;
    for tier in [Tier::Y2017, Tier::Y2018, Tier::Y2019] {
        let sd = s
            .slowdown("gemm", &Engine::Jit(EngineProfile::chrome().at_tier(tier)))
            .unwrap();
        assert!(sd <= last * 1.02, "{tier:?} regressed: {sd} > {last}");
        last = sd;
    }
}
