//! Tracing is observation-only: enabling the full observability stack
//! must not change a single counter value or output byte of the run it
//! observes, and what it collects must account for the run exactly.

use wasmperf_browsix::AppendPolicy;
use wasmperf_harness::experiments::trace_matmul_bench;
use wasmperf_harness::{run_one, run_one_traced, Engine, TraceConfig};
use wasmperf_trace::report;
use wasmperf_wasmjit::EngineProfile;

#[test]
fn traced_run_is_identical_to_untraced() {
    let bench = trace_matmul_bench(24);
    for engine in [Engine::Native, Engine::Jit(EngineProfile::chrome())] {
        let plain = run_one(&bench, &engine, AppendPolicy::Chunked4K).unwrap();
        let (traced, trace) = run_one_traced(
            &bench,
            &engine,
            AppendPolicy::Chunked4K,
            TraceConfig::full(),
        )
        .unwrap();
        assert_eq!(plain.checksum, traced.checksum, "{}", engine.name());
        assert_eq!(plain.counters, traced.counters, "{}", engine.name());
        assert_eq!(plain.outputs, traced.outputs, "{}", engine.name());
        assert!(trace.is_some(), "full config must yield a trace");
    }
}

#[test]
fn trace_off_yields_no_session() {
    let bench = trace_matmul_bench(16);
    let (_, trace) = run_one_traced(
        &bench,
        &Engine::Native,
        AppendPolicy::Chunked4K,
        TraceConfig::off(),
    )
    .unwrap();
    assert!(trace.is_none());
}

#[test]
fn profile_attributes_cycles_to_named_functions() {
    let bench = trace_matmul_bench(24);
    for engine in [Engine::Native, Engine::Jit(EngineProfile::chrome())] {
        let (result, trace) = run_one_traced(
            &bench,
            &engine,
            AppendPolicy::Chunked4K,
            TraceConfig::full(),
        )
        .unwrap();
        let trace = trace.unwrap();
        let profile = trace.profile.as_ref().unwrap();
        let symbols = trace.symbols.as_ref().unwrap();

        // Every retired instruction lands in some address bucket.
        assert_eq!(
            profile.total_instructions(),
            result.counters.instructions_retired,
            "{}",
            engine.name()
        );

        // The acceptance bar: >= 90% of retired cycles attributed to
        // named functions (here the map is complete, so 100%).
        let (rows, coverage) = report::aggregate(profile, symbols);
        assert!(coverage >= 90.0, "{}: coverage {coverage}", engine.name());
        assert!(
            rows.iter().any(|r| r.name == "matmul"),
            "{}: matmul missing from {rows:?}",
            engine.name()
        );

        // The rendered table agrees.
        let table = trace.perf_report();
        assert!(table.contains("matmul"), "{table}");
    }
}

#[test]
fn strace_kernel_cycles_sum_to_host_cycles() {
    let bench = wasmperf_benchsuite::all(wasmperf_benchsuite::Size::Test)
        .into_iter()
        .find(|b| b.name == "401.bzip2")
        .expect("401.bzip2 in suite");
    let (result, trace) = run_one_traced(
        &bench,
        &Engine::Native,
        AppendPolicy::Chunked4K,
        TraceConfig::full(),
    )
    .unwrap();
    let trace = trace.unwrap();
    let log = trace.strace.as_ref().unwrap();
    assert!(!log.records.is_empty(), "401.bzip2 performs I/O");
    assert_eq!(
        log.total_cycles(),
        result.counters.host_cycles,
        "every kernel cycle must be accounted to a syscall"
    );
    let summary = trace.strace_summary();
    assert!(summary.contains("per-class kernel cycles"), "{summary}");
}

#[test]
fn exports_are_well_formed() {
    let bench = trace_matmul_bench(16);
    let (_, trace) = run_one_traced(
        &bench,
        &Engine::Jit(EngineProfile::chrome()),
        AppendPolicy::Chunked4K,
        TraceConfig::full(),
    )
    .unwrap();
    let trace = trace.unwrap();

    let chrome = trace.chrome_trace();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.trim_end().ends_with('}'));
    assert!(chrome.contains("\"ph\":\"X\""), "has complete events");

    let jsonl = trace.jsonl();
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
}
