//! The record–reduce–replay determinism contract, end to end (ISSUE 7's
//! acceptance tests):
//!
//! (a) running a benchmark under the recorder is *observation-only*: the
//!     `RunResult` is byte-identical to an un-recorded run;
//! (b) reducing a recording changes the encoding, never the replay:
//!     results, syscall counters, and (for truncated recordings) traps
//!     are identical between the raw and reduced forms on every
//!     pipeline;
//! (c) replayed benchmarks are byte-identical across a serial session, a
//!     `--jobs 4` session, and the serve `/run` execution path.
//!
//! The checked-in corpus under `recordings/` is covered too: every file
//! loads, replays on all four pipelines, and (for the mixed workload)
//! still matches a fresh recording's content address — so a benchmark
//! edit that invalidates a recording fails here, loudly.

use std::sync::Arc;
use wasmperf_benchsuite::{Benchmark, Size};
use wasmperf_browsix::AppendPolicy;
use wasmperf_harness::{execute, execute_recorded, prepare, run_one, Engine, RunResult, Session};
use wasmperf_replay::{reduce, Recording};
use wasmperf_serve::exec::{ExecService, RunRequest, Target};
use wasmperf_wasmjit::EngineProfile;

/// The four standard pipelines.
fn pipelines() -> Vec<Engine> {
    vec![
        Engine::Native,
        Engine::Jit(EngineProfile::chrome()),
        Engine::Jit(EngineProfile::firefox()),
        Engine::Jit(EngineProfile::chrome_asmjs()),
    ]
}

fn suite_bench(name: &str) -> Benchmark {
    wasmperf_benchsuite::all(Size::Test)
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("no benchmark named {name}"))
}

/// Records `name` on the native pipeline, returning the live result and
/// the raw recording.
fn record(name: &str) -> (RunResult, Recording) {
    let bench = suite_bench(name);
    let artifact = prepare(&bench, &Engine::Native).expect("compile");
    execute_recorded(&bench, &artifact, AppendPolicy::Chunked4K, Size::Test).expect("record")
}

fn replay_result(rec: &Arc<Recording>, engine: &Engine) -> RunResult {
    let bench = wasmperf_benchsuite::replay::from_recording(Arc::clone(rec));
    run_one(&bench, engine, AppendPolicy::Chunked4K).expect("replay")
}

// (a) Recording is observation-only.
#[test]
fn recorded_run_is_byte_identical_to_unrecorded() {
    for name in ["io.rwmix", "401.bzip2", "gemm"] {
        let bench = suite_bench(name);
        let artifact = prepare(&bench, &Engine::Native).expect("compile");
        let live =
            execute(&bench, &Engine::Native, &artifact, AppendPolicy::Chunked4K).expect("live run");
        let (recorded, rec) = record(name);
        assert_eq!(live, recorded, "{name}: recording perturbed the run");
        assert_eq!(rec.checksum, live.checksum);
        assert_eq!(rec.records.len() as u64, live.kernel_syscalls, "{name}");
    }
}

// (b) Reduction changes the encoding, never the replay.
#[test]
fn reduced_recordings_replay_identically_to_raw() {
    for name in ["io.rwmix", "401.bzip2"] {
        let (_, raw) = record(name);
        let reduced = reduce::reduce(&raw);
        assert_eq!(raw.content_hash(), reduced.content_hash());
        let raw = Arc::new(raw);
        let reduced = Arc::new(reduced);
        for engine in pipelines() {
            let a = replay_result(&raw, &engine);
            let b = replay_result(&reduced, &engine);
            assert_eq!(a, b, "{name} on {}: reduced replay diverged", engine.name());
        }
    }
}

// (b) ...including traps: a torn recording diverges identically whether
// raw or reduced, and the error names the replay boundary.
#[test]
fn truncated_recordings_trap_identically_raw_and_reduced() {
    let (_, mut raw) = record("io.rwmix");
    raw.records.pop();
    let reduced = reduce::reduce(&raw);
    for rec in [raw, reduced] {
        let bench = wasmperf_benchsuite::replay::from_recording(Arc::new(rec));
        let err = run_one(&bench, &Engine::Native, AppendPolicy::Chunked4K)
            .expect_err("truncated recording must not replay cleanly");
        let msg = err.to_string();
        assert!(
            msg.contains("replay") || msg.contains("divergence"),
            "unhelpful truncation error: {msg}"
        );
    }
}

// (c) Serial session == --jobs 4 session == serve /run.
#[test]
fn replay_is_identical_across_serial_jobs4_and_serve() {
    let mut serial = Session::new(Size::Test);
    let names = serial.replay_names();
    assert!(
        names.len() >= 3,
        "checked-in corpus should provide >= 3 recordings, got {names:?}"
    );
    let engines = pipelines();
    let mut parallel = Session::new(Size::Test).with_jobs(4);
    parallel.ensure(&names, &engines).expect("parallel batch");
    let svc = ExecService::new(2, 16);
    for name in &names {
        for e in &engines {
            let a = serial.run(name, e).expect("serial").clone();
            let b = parallel.run(name, e).expect("parallel").clone();
            assert_eq!(a, b, "{name} on {}: serial vs --jobs 4", e.name());
            let req = RunRequest {
                target: Target::Named(name.clone()),
                engine: e.name(),
                size: Size::Test,
                deadline_ms: None,
            };
            let out = svc.run(&req).expect("serve /run");
            assert_eq!(a, *out.result, "{name} on {}: session vs serve", e.name());
        }
    }
}

// The checked-in corpus stays loadable, replayable, and in sync with the
// benchmarks it was recorded from.
#[test]
fn checked_in_corpus_replays_and_matches_fresh_recordings() {
    let recs = wasmperf_replay::load_dir(std::path::Path::new("recordings")).expect("corpus");
    assert!(
        recs.len() >= 3,
        "expected >= 3 recordings, got {}",
        recs.len()
    );
    let mut suites: Vec<&str> = Vec::new();
    for rec in recs {
        // One compute-bound, one I/O-bound, one mixed recording.
        suites.push(match rec.name.as_str() {
            "gemm" => "compute",
            "io.rwmix" => "io",
            "401.bzip2" => "mixed",
            _ => "other",
        });
        // A checked-in recording must still describe today's benchmark:
        // same content address as a fresh native recording.
        let (_, fresh) = record(&rec.name);
        assert_eq!(
            rec.content_hash(),
            fresh.content_hash(),
            "{}: stale recording — re-record with `wasmperf-replay record {} --size test`",
            rec.name,
            rec.name
        );
        let rec = Arc::new(rec);
        let native = replay_result(&rec, &Engine::Native);
        assert_eq!(native.checksum, rec.checksum);
        for engine in &pipelines()[1..] {
            assert_eq!(replay_result(&rec, engine).checksum, rec.checksum);
        }
    }
    for wanted in ["compute", "io", "mixed"] {
        assert!(
            suites.contains(&wanted),
            "corpus lacks a {wanted}-bound recording"
        );
    }
}
