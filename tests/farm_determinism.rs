//! The farm's contract, proven end to end:
//!
//! 1. **Determinism** — every rendered table is byte-identical between a
//!    serial session and a `--jobs 4` session (results are pure functions
//!    of their job spec; the pool returns them in submission order; noise
//!    seeds are keyed by spec, not execution order).
//! 2. **Compile-once** — the artifact cache builds exactly one artifact
//!    per (benchmark source, engine config) pair per process, and
//!    re-rendering adds zero builds.
//! 3. **Resume** — a second process pointed at the same `--results DIR`
//!    executes zero jobs, resumes all of them from the store, compiles
//!    nothing, and still renders the identical report.
//!
//! These run the PolyBench suite plus the ad-hoc experiments to stay fast
//! in debug builds; CI's farm-smoke job repeats the byte-identity and
//! resume checks over the *complete* report in release mode.

use std::path::PathBuf;
use wasmperf_benchsuite::Size;
use wasmperf_harness::experiments as exp;
use wasmperf_harness::{Error, Session};

/// A scratch directory that outlives one "process" (session) and is
/// reused by the next, then removed.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("wasmperf-farm-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The experiment set the byte-identity check runs over: a registry-suite
/// relative-time figure (fig3a), ± noise columns keyed by job spec
/// (table1's machinery is shared; fig3a's ratios already cover ordering),
/// ad-hoc content-addressed benchmarks (fig8's same-named matmuls), and a
/// policy-split ablation sharing one artifact across policies.
fn render_all(s: &mut Session) -> Result<String, Error> {
    let mut out = String::new();
    out.push_str(&exp::fig3a(s)?);
    out.push_str(&exp::fig8(s, &[20, 30])?);
    out.push_str(&exp::ablation_browserfs(s)?);
    Ok(out)
}

#[test]
fn parallel_report_is_byte_identical_to_serial() -> Result<(), Error> {
    let mut serial = Session::new(Size::Test);
    let mut parallel = Session::new(Size::Test).with_jobs(4);
    let a = render_all(&mut serial)?;
    let b = render_all(&mut parallel)?;
    assert_eq!(a, b, "parallel output diverged from serial");
    // Both did real work (nothing degenerated into an empty render).
    assert!(serial.farm_stats().executed > 0);
    assert_eq!(serial.farm_stats().executed, parallel.farm_stats().executed);
    Ok(())
}

#[test]
fn artifacts_compile_exactly_once_per_pair() -> Result<(), Error> {
    let mut s = Session::new(Size::Test).with_jobs(4);
    exp::fig3a(&mut s)?;
    // fig3a is the full PolyBench suite x {native, chrome, firefox}: one
    // build per pair, no more (trials/policies share artifacts), no fewer
    // (nothing resumed, so every pair really compiled here).
    let pairs = (s.polybench_names().len() * 3) as u64;
    assert_eq!(s.artifact_stats().builds, pairs);
    // Re-rendering adds zero builds, and the two policy variants in the
    // ablation share a single new artifact.
    exp::fig3a(&mut s)?;
    assert_eq!(s.artifact_stats().builds, pairs);
    exp::ablation_browserfs(&mut s)?;
    assert_eq!(s.artifact_stats().builds, pairs + 1);
    Ok(())
}

#[test]
fn resumed_report_skips_all_jobs_and_matches() -> Result<(), Error> {
    let tmp = TempDir::new("resume");

    // First "process": record every job.
    let mut first = Session::new(Size::Test)
        .with_jobs(4)
        .with_results_dir(&tmp.0)?;
    let a = render_all(&mut first)?;
    let done = first.farm_stats();
    assert!(done.executed > 0);
    assert_eq!(done.resumed, 0);

    // Second "process", same results dir: everything resumes from disk —
    // zero jobs executed, zero artifacts compiled, identical bytes.
    let mut second = Session::new(Size::Test)
        .with_jobs(4)
        .with_results_dir(&tmp.0)?;
    let b = render_all(&mut second)?;
    assert_eq!(a, b, "resumed output diverged from recorded run");
    assert_eq!(second.farm_stats().executed, 0);
    assert_eq!(second.farm_stats().resumed, done.executed);
    assert_eq!(second.artifact_stats().builds, 0);
    Ok(())
}
