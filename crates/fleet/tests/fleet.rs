//! Socket-level fleet tests: router + shards over real loopback TCP,
//! driving the acceptance contract end to end — byte-identical routing,
//! shed-or-retry (never wrong) failover, ring re-admission, and warm
//! restarts from the persistent result store.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use wasmperf_farm::Json;
use wasmperf_fleet::{ring, router, RouterConfig, ShardSpec};
use wasmperf_serve::loadgen::{self, Mode, Options};
use wasmperf_serve::{Client, Registry, RunRequest, ServerConfig, ServerHandle};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("wasmperf-fleet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One in-process shard, as the supervisor would configure it.
fn shard(name: &str, results: Option<&std::path::Path>) -> (ServerHandle, ShardSpec) {
    let handle = wasmperf_serve::start(ServerConfig {
        workers: 1,
        queue_capacity: 16,
        shard: Some(name.into()),
        results_dir: results.map(Into::into),
        ..ServerConfig::default()
    })
    .unwrap();
    let spec = ShardSpec {
        name: name.into(),
        addr: handle.addr().to_string(),
    };
    (handle, spec)
}

/// A router over the given shards with a fast health loop, so failover
/// and re-admission settle in a few hundred milliseconds.
fn router_over(shards: Vec<ShardSpec>) -> (router::RouterHandle, String) {
    let handle = router::start(RouterConfig {
        shards,
        health_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn run_body(bench: &str, engine: &str) -> Json {
    Json::Obj(vec![
        ("bench".into(), Json::Str(bench.into())),
        ("engine".into(), Json::Str(engine.into())),
        ("size".into(), Json::Str("test".into())),
    ])
}

/// The content-addressed key the router routes this body by.
fn job_key(body: &Json) -> u64 {
    let req = RunRequest::from_json(body).unwrap();
    Registry::load().job_key(&req).unwrap()
}

fn get_json(addr: &str, path: &str) -> Json {
    let mut c = Client::connect(addr).unwrap();
    let resp = c.get(path).unwrap();
    assert_eq!(resp.status, 200, "{path}");
    resp.body_json().unwrap()
}

/// Polls the router until exactly `want` shards are live.
fn wait_live(addr: &str, want: u64) {
    let t0 = Instant::now();
    loop {
        let health = get_json(addr, "/healthz");
        if health.get("live").and_then(Json::as_u64) == Some(want) {
            return;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "router never reached {want} live shards: {health:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn router_routes_by_key_and_relays_shard_bytes() {
    let (h0, s0) = shard("shard-0", None);
    let (h1, s1) = shard("shard-1", None);
    let (h2, s2) = shard("shard-2", None);
    let specs = vec![s0, s1, s2];
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let (rh, raddr) = router_over(specs.clone());

    let mut via_router = Client::connect(&raddr).unwrap();
    for (bench, engine) in [("gemm", "native"), ("gemm", "chrome"), ("2mm", "native")] {
        let body = run_body(bench, engine);
        let resp = via_router.post_json("/run", &body).unwrap();
        assert_eq!(resp.status, 200, "{bench}/{engine}");
        let routed = resp.body_json().unwrap();
        assert_eq!(routed.get("cached"), Some(&Json::Bool(false)));

        // The ring owner must now hold the result: resubmitting directly
        // to it is a warm hit with the identical result subtree — which
        // proves both where the router sent the run and that the relayed
        // bytes are the shard's bytes.
        let owner = ring::pick(job_key(&body), &names).unwrap();
        let owner_addr = &specs.iter().find(|s| s.name == owner).unwrap().addr;
        let mut direct = Client::connect(owner_addr).unwrap();
        let direct_resp = direct.post_json("/run", &body).unwrap();
        assert_eq!(direct_resp.status, 200);
        let direct_body = direct_resp.body_json().unwrap();
        assert_eq!(
            direct_body.get("cached"),
            Some(&Json::Bool(true)),
            "router sent {bench}/{engine} somewhere other than ring owner {owner}"
        );
        assert_eq!(
            direct_body.get("result").unwrap().render(),
            routed.get("result").unwrap().render(),
            "{bench}/{engine}: direct and router-proxied results diverged"
        );
    }

    // The full loadgen contract holds through the router: byte-identity
    // against in-process runs and exact /metrics reconciliation over
    // the fleet aggregate.
    let report = loadgen::run(&Options {
        addr: raddr.clone(),
        mode: Mode::Closed { conns: 2 },
        requests: 12,
        benches: vec!["gemm".into(), "2mm".into()],
        engines: vec!["native".into(), "chrome".into()],
        check: true,
        verify_metrics: true,
        ..Options::default()
    });
    assert!(report.ok(), "loadgen gates failed: {}", report.render());
    assert_eq!(report.transport_errors, 0);
    assert_eq!(report.status_counts.get(&200), Some(&12));

    // The fan-out /metrics view: per-shard sections plus an exactly
    // merged cross-shard latency histogram.
    let m = get_json(&raddr, "/metrics");
    let fleet = m.get("fleet").unwrap();
    assert_eq!(fleet.get("live").and_then(Json::as_u64), Some(3));
    let shards = m.get("shards").unwrap();
    let mut latency_sum = 0;
    for name in &names {
        let section = shards.get(name).unwrap();
        assert_eq!(
            section
                .get("shard")
                .and_then(|s| s.get("name"))
                .and_then(Json::as_str),
            Some(name.as_str()),
            "shard identity block missing for {name}"
        );
        latency_sum += section
            .get("latency")
            .and_then(|l| l.get("count"))
            .and_then(Json::as_u64)
            .unwrap();
    }
    let merged = fleet
        .get("shard_latency")
        .and_then(|l| l.get("count"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(merged, latency_sum, "merged histogram lost samples");

    // Draining the router drains the shards too, in order.
    let resp = Client::connect(&raddr)
        .unwrap()
        .request("POST", "/shutdown", b"")
        .unwrap();
    assert_eq!(resp.status, 200);
    rh.join();
    h0.join();
    h1.join();
    h2.join();
    assert!(
        Client::connect(&raddr).is_err(),
        "router outlived its drain"
    );
}

#[test]
fn dead_shard_fails_over_then_readmits_after_recovery() {
    let mut handles = Vec::new();
    let mut specs = Vec::new();
    for i in 0..3 {
        let (h, s) = shard(&format!("shard-{i}"), None);
        handles.push(Some(h));
        specs.push(s);
    }
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let (rh, raddr) = router_over(specs.clone());

    let body = run_body("gemm", "native");
    let owner = ring::pick(job_key(&body), &names).unwrap().to_string();
    let owner_index = names.iter().position(|n| *n == owner).unwrap();

    // Reference bytes while the fleet is whole.
    let mut c = Client::connect(&raddr).unwrap();
    let first = c.post_json("/run", &body).unwrap();
    assert_eq!(first.status, 200);
    let reference = first.body_json().unwrap().get("result").unwrap().render();

    // Kill the owner. Until the ring fails over, the only permissible
    // degraded answer is a 503 with a usable Retry-After — never a
    // wrong or torn response.
    let dead = handles[owner_index].take().unwrap();
    dead.shutdown();
    dead.join();
    let mut recovered = None;
    for _ in 0..100 {
        let mut c = Client::connect(&raddr).unwrap();
        let resp = c.post_json("/run", &body).unwrap();
        match resp.status {
            200 => {
                recovered = Some(resp.body_json().unwrap());
                break;
            }
            503 => {
                let retry: u64 = resp
                    .header("retry-after")
                    .expect("503 must carry Retry-After")
                    .parse()
                    .expect("Retry-After must be whole seconds");
                assert!(retry >= 1);
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("unexpected status {other} during failover"),
        }
    }
    let failover = recovered.expect("ring never failed over to a live shard");
    assert_eq!(
        failover.get("result").unwrap().render(),
        reference,
        "failover changed the result bytes"
    );
    wait_live(&raddr, 2);

    // Restart the owner under its old name at a new address and
    // re-admit it; the health loop promotes it after clean probes.
    let (new_handle, new_spec) = shard(&owner, None);
    let admit = Json::Obj(vec![
        ("shard".into(), Json::Str(owner.clone())),
        ("addr".into(), Json::Str(new_spec.addr.clone())),
    ]);
    let resp = Client::connect(&raddr)
        .unwrap()
        .post_json("/admit", &admit)
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.body_json().unwrap().get("live"),
        Some(&Json::Bool(false)),
        "admit must start the shard in probation"
    );
    wait_live(&raddr, 3);

    // Unknown shards and malformed bodies are rejected, not admitted.
    let mut c = Client::connect(&raddr).unwrap();
    let bogus = Json::Obj(vec![
        ("shard".into(), Json::Str("shard-99".into())),
        ("addr".into(), Json::Str(new_spec.addr.clone())),
    ]);
    assert_eq!(c.post_json("/admit", &bogus).unwrap().status, 404);
    assert_eq!(c.request("POST", "/admit", b"{oops").unwrap().status, 400);

    // The key routes to the restarted owner again: it executes fresh
    // (empty caches), byte-identical, then serves warm.
    let r1 = c.post_json("/run", &body).unwrap();
    assert_eq!(r1.status, 200);
    let r1 = r1.body_json().unwrap();
    assert_eq!(r1.get("cached"), Some(&Json::Bool(false)));
    assert_eq!(r1.get("result").unwrap().render(), reference);
    let r2 = c.post_json("/run", &body).unwrap();
    let r2 = r2.body_json().unwrap();
    assert_eq!(r2.get("cached"), Some(&Json::Bool(true)));
    let mut direct = Client::connect(&new_spec.addr).unwrap();
    let held = direct
        .post_json("/run", &body)
        .unwrap()
        .body_json()
        .unwrap();
    assert_eq!(
        held.get("cached"),
        Some(&Json::Bool(true)),
        "re-admitted owner does not hold its key"
    );

    rh.shutdown();
    rh.join();
    new_handle.join();
    for h in handles.into_iter().flatten() {
        h.join();
    }
}

#[test]
fn restarted_shard_comes_up_warm_from_its_result_store() {
    let tmp = TempDir::new("warm");
    let dir = tmp.0.join("shard-0");
    let (h, spec) = shard("shard-0", Some(&dir));
    let (rh, raddr) = router_over(vec![spec]);

    let body = run_body("2mm", "native");
    let mut c = Client::connect(&raddr).unwrap();
    let first = c.post_json("/run", &body).unwrap();
    assert_eq!(first.status, 200);
    let first = first.body_json().unwrap();
    assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
    let reference = first.get("result").unwrap().render();

    // Whole fleet down: shed-or-retry, not errors.
    h.shutdown();
    h.join();
    let resp = Client::connect(&raddr)
        .unwrap()
        .post_json("/run", &body)
        .unwrap();
    assert_eq!(resp.status, 503);
    assert!(resp.header("retry-after").is_some());

    // Restart over the same result store and re-admit.
    let (h2, spec2) = shard("shard-0", Some(&dir));
    let admit = Json::Obj(vec![
        ("shard".into(), Json::Str("shard-0".into())),
        ("addr".into(), Json::Str(spec2.addr.clone())),
    ]);
    assert_eq!(
        Client::connect(&raddr)
            .unwrap()
            .post_json("/admit", &admit)
            .unwrap()
            .status,
        200
    );
    wait_live(&raddr, 1);

    // The previously-seen key is answered warm: cached, byte-identical,
    // and with zero executions since the restart.
    let again = Client::connect(&raddr)
        .unwrap()
        .post_json("/run", &body)
        .unwrap();
    assert_eq!(again.status, 200);
    let again = again.body_json().unwrap();
    assert_eq!(
        again.get("cached"),
        Some(&Json::Bool(true)),
        "restart was not warm"
    );
    assert_eq!(again.get("result").unwrap().render(), reference);

    let m = get_json(&raddr, "/metrics");
    let section = m.get("shards").unwrap().get("shard-0").unwrap();
    let sys = section.get("syscalls").unwrap();
    assert_eq!(sys.get("runs_executed").and_then(Json::as_u64), Some(0));
    let cache = section.get("cache").unwrap();
    assert!(cache.get("store_hits").and_then(Json::as_u64).unwrap() >= 1);
    let identity = section.get("shard").unwrap();
    assert_eq!(identity.get("store_loaded").and_then(Json::as_u64), Some(1));
    assert_eq!(
        identity.get("runs_since_start").and_then(Json::as_u64),
        Some(0)
    );
    // The fleet aggregate mirrors the single warm shard.
    assert_eq!(
        m.get("syscalls")
            .and_then(|s| s.get("runs_executed"))
            .and_then(Json::as_u64),
        Some(0)
    );

    rh.shutdown();
    rh.join();
    h2.join();
}

#[test]
fn fleet_binary_up_route_run_drain() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let exe = env!("CARGO_BIN_EXE_wasmperf-fleet");
    let mut child = Command::new(exe)
        .args([
            "up",
            "--shards",
            "2",
            "--port",
            "0",
            "--workers",
            "1",
            "--queue",
            "8",
            "--health-interval-ms",
            "50",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let mut reader = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut shard_lines = 0;
    let mut router_addr = None;
    let mut line = String::new();
    while router_addr.is_none() {
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "fleet exited before the router came up");
        if line.contains(" shard shard-") {
            shard_lines += 1;
            assert!(line.contains(" pid "), "{line}");
        }
        if let Some((_, rest)) = line.split_once("router listening on ") {
            router_addr = Some(rest.trim().to_string());
        }
    }
    assert_eq!(shard_lines, 2, "expected one contract line per shard");
    let addr = router_addr.unwrap();

    let status = Command::new(exe)
        .args(["status", "--addr", &addr, "--wait-live", "2"])
        .output()
        .unwrap();
    assert!(
        status.status.success(),
        "status: {}",
        String::from_utf8_lossy(&status.stderr)
    );

    let route = Command::new(exe)
        .args([
            "route", "--addr", &addr, "--bench", "gemm", "--engine", "native",
        ])
        .output()
        .unwrap();
    assert!(route.status.success());
    let routed = String::from_utf8_lossy(&route.stdout);
    assert!(routed.contains("-> shard-"), "{routed}");

    let run = |expect: &str| {
        let out = Command::new(exe)
            .args([
                "run", "--addr", &addr, "--bench", "gemm", "--engine", "native",
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(text.contains(expect), "wanted {expect} in {text}");
    };
    run("\"cached\":false");
    run("\"cached\":true");

    let drain = Command::new(exe)
        .args(["drain", "--addr", &addr])
        .output()
        .unwrap();
    assert!(drain.status.success());
    let exit = child.wait().unwrap();
    assert!(exit.success(), "fleet exited {exit:?} after drain");
}
