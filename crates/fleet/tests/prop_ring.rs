//! Property tests for the rendezvous ring: the stability contract the
//! fleet's warm caches depend on.

use proptest::prelude::*;
use wasmperf_fleet::ring;

/// Shard fleets are named like the supervisor names them.
fn fleet(count: u64) -> Vec<String> {
    (0..count).map(|i| format!("shard-{i}")).collect()
}

proptest! {
    // Removing one shard remaps only that shard's keys: every key
    // owned by a surviving shard keeps its owner. This is what lets a
    // failover preserve every live shard's artifact/result caches.
    #[test]
    fn removal_only_remaps_the_removed_shards_keys(
        count in 2u64..9,
        victim in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let names = fleet(count);
        let victim = &names[(victim % count) as usize];
        let rest: Vec<String> = names.iter().filter(|n| *n != victim).cloned().collect();
        for key in keys {
            let owner = ring::pick(key, &names).unwrap();
            let after = ring::pick(key, &rest).unwrap();
            if owner != victim {
                prop_assert_eq!(after, owner);
            } else {
                prop_assert!(after != victim);
            }
        }
    }

    // Re-adding the shard restores exactly the old assignment — a
    // restarted shard gets its former keys (and its warm store) back.
    #[test]
    fn readmission_restores_the_original_assignment(
        count in 2u64..9,
        victim in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let names = fleet(count);
        let victim = &names[(victim % count) as usize];
        let mut rejoined: Vec<String> =
            names.iter().filter(|n| *n != victim).cloned().collect();
        rejoined.push(victim.clone());
        for key in keys {
            prop_assert_eq!(
                ring::pick(key, &names).unwrap(),
                ring::pick(key, &rejoined).unwrap()
            );
        }
    }

    // The pick is a pure function of (key, membership set): list order
    // is irrelevant, so router, shards, and CLI never disagree.
    #[test]
    fn pick_is_order_independent(
        count in 1u64..9,
        rotate in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let names = fleet(count);
        let mut rotated = names.clone();
        rotated.rotate_left((rotate % count) as usize);
        for key in keys {
            prop_assert_eq!(
                ring::pick(key, &names).unwrap(),
                ring::pick(key, &rotated).unwrap()
            );
        }
    }
}
