//! Rendezvous (highest-random-weight) hashing over shard names.
//!
//! Every request key is hashed once against every candidate shard and
//! the highest weight wins. Unlike a modulo ring, membership changes
//! have minimal blast radius: removing a shard remaps **only** the keys
//! that shard owned (their second-highest weight takes over), and
//! adding one back restores exactly its former keys — which is what
//! keeps the per-shard artifact and result caches warm across a
//! failover cycle.
//!
//! Weights are plain FNV over `(key, shard name)`, so every process in
//! the fleet — router, shards, the `wasmperf-fleet route` CLI — computes
//! the same owner without coordination.

use wasmperf_farm::hash::Fnv;

/// The weight of `shard` for `key`: FNV over the pair. Deterministic
/// across processes and platforms.
pub fn weight(key: u64, shard: &str) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(key);
    h.write_str(shard);
    h.finish()
}

/// Picks the owner of `key` among `shards`: the highest weight wins,
/// equal weights break toward the lexicographically smaller name so the
/// choice never depends on list order. `None` iff `shards` is empty.
pub fn pick<S: AsRef<str>>(key: u64, shards: &[S]) -> Option<&str> {
    let mut best: Option<(u64, &str)> = None;
    for shard in shards {
        let name = shard.as_ref();
        let w = weight(key, name);
        best = match best {
            None => Some((w, name)),
            Some((bw, bn)) if w > bw || (w == bw && name < bn) => Some((w, name)),
            keep => keep,
        };
    }
    best.map(|(_, name)| name)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHARDS: [&str; 3] = ["shard-0", "shard-1", "shard-2"];

    #[test]
    fn pick_is_deterministic_and_order_independent() {
        let reversed: Vec<&str> = SHARDS.iter().rev().copied().collect();
        for key in 0..200u64 {
            let a = pick(key, &SHARDS).unwrap();
            let b = pick(key, &reversed).unwrap();
            assert_eq!(a, b, "key {key} owner depends on list order");
        }
        assert_eq!(pick(7, &[] as &[&str]), None);
    }

    #[test]
    fn every_shard_owns_a_reasonable_share() {
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            let owner = pick(key, &SHARDS).unwrap();
            counts[SHARDS.iter().position(|s| *s == owner).unwrap()] += 1;
        }
        for (i, n) in counts.iter().enumerate() {
            // A grossly skewed split (worse than 1:6 of fair share)
            // would defeat sharding; FNV keeps it close to 1000 each.
            assert!(*n > 3000 / 18, "shard {i} owns only {n}/3000 keys");
        }
    }

    #[test]
    fn removing_a_shard_remaps_only_its_keys() {
        for key in 0..500u64 {
            let owner = pick(key, &SHARDS).unwrap();
            for dead in SHARDS {
                let rest: Vec<&str> = SHARDS.iter().filter(|s| **s != dead).copied().collect();
                let fallback = pick(key, &rest).unwrap();
                if owner != dead {
                    assert_eq!(fallback, owner, "key {key} moved off a live shard");
                }
            }
        }
    }
}
