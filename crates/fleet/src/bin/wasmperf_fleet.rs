//! The wasmperf-fleet binary: supervisor and fleet CLI.
//!
//! ```text
//! wasmperf-fleet up     [--shards N] [--port N] [--workers N] [--queue N]
//!                       [--results DIR] [--health-interval-ms MS]
//! wasmperf-fleet status --addr ROUTER [--wait-live N] [--timeout SECS]
//! wasmperf-fleet drain  --addr ROUTER
//! wasmperf-fleet admit  --addr ROUTER --shard NAME --shard-addr ADDR
//! wasmperf-fleet route  --addr ROUTER --bench B --engine E [--size S]
//! wasmperf-fleet run    --addr ROUTER --bench B --engine E [--size S]
//! wasmperf-fleet shard  ...            (internal: one shard subprocess)
//! ```
//!
//! `up` blocks until the fleet drains (`wasmperf-fleet drain`, or any
//! client POSTing `/shutdown` to the router). `route` computes a
//! request's content-addressed key locally and names the live shard
//! that owns it — scripts use it to find which shard to kill or warm.

use std::time::{Duration, Instant};

use wasmperf_farm::hash::hex64;
use wasmperf_farm::Json;
use wasmperf_fleet::{ring, FleetConfig};
use wasmperf_serve::{Client, Registry, RunRequest};

fn usage() -> ! {
    eprintln!(
        "usage: wasmperf-fleet <up|status|drain|admit|route|run> [options]\n\
         up:     --shards N (default 3), --port N (router; 0 = ephemeral),\n\
         \x20       --workers N, --queue N (per shard), --results DIR,\n\
         \x20       --health-interval-ms MS\n\
         status: --addr ROUTER [--wait-live N] [--timeout SECS (default 30)]\n\
         drain:  --addr ROUTER   drain shards, then the router\n\
         admit:  --addr ROUTER --shard NAME --shard-addr HOST:PORT\n\
         route:  --addr ROUTER --bench B --engine E [--size test|ref]\n\
         run:    --addr ROUTER --bench B --engine E [--size test|ref]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let rest: Vec<String> = args.collect();
    let code = match cmd.as_str() {
        "up" => up(&rest),
        "shard" => shard(&rest),
        "status" => status(&rest),
        "drain" => drain(&rest),
        "admit" => admit(&rest),
        "route" => route(&rest),
        "run" => run(&rest),
        "--help" | "-h" => usage(),
        _ => usage(),
    };
    std::process::exit(code);
}

/// Pulls `--flag value` pairs out of `rest`; unknown flags abort.
fn parse_flags(rest: &[String], allowed: &[&str]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if !allowed.contains(&flag.as_str()) {
            eprintln!("wasmperf-fleet: unknown flag {flag}");
            usage();
        }
        let Some(value) = it.next() else {
            eprintln!("wasmperf-fleet: {flag} needs a value");
            usage();
        };
        out.push((flag.clone(), value.clone()));
    }
    out
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn required<'a>(flags: &'a [(String, String)], name: &str) -> &'a str {
    flag(flags, name).unwrap_or_else(|| {
        eprintln!("wasmperf-fleet: {name} is required");
        usage();
    })
}

fn parsed<T: std::str::FromStr>(flags: &[(String, String)], name: &str, default: T) -> T {
    match flag(flags, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("wasmperf-fleet: bad value for {name}: {v}");
            usage();
        }),
    }
}

fn up(rest: &[String]) -> i32 {
    let flags = parse_flags(
        rest,
        &[
            "--shards",
            "--port",
            "--workers",
            "--queue",
            "--results",
            "--health-interval-ms",
        ],
    );
    let defaults = FleetConfig::default();
    let config = FleetConfig {
        shards: parsed(&flags, "--shards", defaults.shards),
        port: parsed(&flags, "--port", defaults.port),
        workers: parsed(&flags, "--workers", defaults.workers),
        queue: parsed(&flags, "--queue", defaults.queue),
        results_dir: flag(&flags, "--results").map(Into::into),
        health_interval: Duration::from_millis(parsed(
            &flags,
            "--health-interval-ms",
            defaults.health_interval.as_millis() as u64,
        )),
    };
    match wasmperf_fleet::up(&config) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("wasmperf-fleet: up failed: {e}");
            1
        }
    }
}

/// The internal shard subprocess: one wasmperf-serve instance on an
/// ephemeral port, printing the shared `listening on` contract line.
fn shard(rest: &[String]) -> i32 {
    let flags = parse_flags(
        rest,
        &["--name", "--port", "--workers", "--queue", "--results"],
    );
    let mut config = wasmperf_serve::ServerConfig {
        shard: flag(&flags, "--name").map(str::to_string),
        results_dir: flag(&flags, "--results").map(Into::into),
        ..wasmperf_serve::ServerConfig::default()
    };
    config.workers = parsed(&flags, "--workers", config.workers);
    config.queue_capacity = parsed(&flags, "--queue", config.queue_capacity);
    config.addr = format!("127.0.0.1:{}", parsed::<u16>(&flags, "--port", 0));
    let handle = match wasmperf_serve::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("wasmperf-fleet shard: bind failed: {e}");
            return 1;
        }
    };
    println!("wasmperf-serve listening on {}", handle.addr());
    handle.join();
    0
}

fn healthz(addr: &str) -> Result<Json, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let resp = client.get("/healthz").map_err(|e| e.to_string())?;
    if resp.status != 200 {
        return Err(format!("/healthz returned {}", resp.status));
    }
    resp.body_json()
}

fn live_count(health: &Json) -> u64 {
    health.get("live").and_then(Json::as_u64).unwrap_or(0)
}

fn status(rest: &[String]) -> i32 {
    let flags = parse_flags(rest, &["--addr", "--wait-live", "--timeout"]);
    let addr = required(&flags, "--addr");
    let timeout = Duration::from_secs(parsed(&flags, "--timeout", 30u64));
    let want_live: Option<u64> = flag(&flags, "--wait-live").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("wasmperf-fleet: bad value for --wait-live: {v}");
            usage();
        })
    });
    let deadline = Instant::now() + timeout;
    loop {
        match healthz(addr) {
            Ok(health) => {
                let live = live_count(&health);
                if want_live.is_none_or(|want| live >= want) {
                    println!("{}", health.render());
                    return 0;
                }
                if Instant::now() >= deadline {
                    println!("{}", health.render());
                    eprintln!("wasmperf-fleet: timed out waiting for {want_live:?} live shards");
                    return 1;
                }
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!("wasmperf-fleet: status failed: {e}");
                    return 1;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn drain(rest: &[String]) -> i32 {
    let flags = parse_flags(rest, &["--addr"]);
    let addr = required(&flags, "--addr");
    match Client::connect(addr).and_then(|mut c| c.request("POST", "/shutdown", b"")) {
        Ok(resp) => {
            print!("{}", String::from_utf8_lossy(&resp.body));
            i32::from(resp.status != 200)
        }
        Err(e) => {
            eprintln!("wasmperf-fleet: drain failed: {e}");
            1
        }
    }
}

fn admit(rest: &[String]) -> i32 {
    let flags = parse_flags(rest, &["--addr", "--shard", "--shard-addr"]);
    let addr = required(&flags, "--addr");
    let body = Json::Obj(vec![
        (
            "shard".into(),
            Json::Str(required(&flags, "--shard").into()),
        ),
        (
            "addr".into(),
            Json::Str(required(&flags, "--shard-addr").into()),
        ),
    ]);
    match Client::connect(addr).and_then(|mut c| c.post_json("/admit", &body)) {
        Ok(resp) => {
            print!("{}", String::from_utf8_lossy(&resp.body));
            i32::from(resp.status != 200)
        }
        Err(e) => {
            eprintln!("wasmperf-fleet: admit failed: {e}");
            1
        }
    }
}

/// Builds the `/run` body the routing key is computed from.
fn run_body(flags: &[(String, String)]) -> Json {
    Json::Obj(vec![
        ("bench".into(), Json::Str(required(flags, "--bench").into())),
        (
            "engine".into(),
            Json::Str(required(flags, "--engine").into()),
        ),
        (
            "size".into(),
            Json::Str(flag(flags, "--size").unwrap_or("test").into()),
        ),
    ])
}

fn route(rest: &[String]) -> i32 {
    let flags = parse_flags(rest, &["--addr", "--bench", "--engine", "--size"]);
    let addr = required(&flags, "--addr");
    let body = run_body(&flags);
    // The same key computation every shard uses — process-independent,
    // so the CLI, router, and shards always agree on the owner.
    let key = match RunRequest::from_json(&body).map_err(wasmperf_serve::ServeError::BadRequest) {
        Ok(req) => match Registry::load().job_key(&req) {
            Ok(key) => key,
            Err(e) => {
                eprintln!("wasmperf-fleet: {}", e.to_json().render());
                return 1;
            }
        },
        Err(e) => {
            eprintln!("wasmperf-fleet: {}", e.to_json().render());
            return 1;
        }
    };
    let health = match healthz(addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("wasmperf-fleet: route failed: {e}");
            return 1;
        }
    };
    let mut live: Vec<(String, String)> = Vec::new();
    if let Some(Json::Arr(shards)) = health.get("shards") {
        for s in shards {
            if s.get("live") == Some(&Json::Bool(true)) {
                if let (Some(name), Some(addr)) = (
                    s.get("name").and_then(Json::as_str),
                    s.get("addr").and_then(Json::as_str),
                ) {
                    live.push((name.to_string(), addr.to_string()));
                }
            }
        }
    }
    let names: Vec<&str> = live.iter().map(|(n, _)| n.as_str()).collect();
    match ring::pick(key, &names) {
        Some(owner) => {
            let owner_addr = &live.iter().find(|(n, _)| n == owner).unwrap().1;
            println!("key {} -> {owner} {owner_addr}", hex64(key));
            0
        }
        None => {
            eprintln!("wasmperf-fleet: no live shards");
            1
        }
    }
}

fn run(rest: &[String]) -> i32 {
    let flags = parse_flags(rest, &["--addr", "--bench", "--engine", "--size"]);
    let addr = required(&flags, "--addr");
    let body = run_body(&flags);
    match Client::connect(addr).and_then(|mut c| c.post_json("/run", &body)) {
        Ok(resp) => {
            print!("{}", String::from_utf8_lossy(&resp.body));
            i32::from(resp.status != 200)
        }
        Err(e) => {
            eprintln!("wasmperf-fleet: run failed: {e}");
            1
        }
    }
}
