//! The fleet supervisor: spawns N shard subprocesses, fronts them with
//! an in-process router, and reaps the children after the drain.
//!
//! Shards are child processes of the `wasmperf-fleet` binary itself
//! (the hidden `shard` subcommand wraps `wasmperf_serve::start`), found
//! via `current_exe` — no search path, works the same under `cargo
//! test` and in CI. Each shard binds an ephemeral port and prints the
//! shared `listening on` contract line, which the supervisor parses
//! before wiring the router's ring.

use std::io::{self, BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::router::{self, RouterConfig, ShardSpec};

/// `wasmperf-fleet up` configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard subprocess count.
    pub shards: usize,
    /// Router listen port (0 = ephemeral).
    pub port: u16,
    /// Worker threads per shard.
    pub workers: usize,
    /// Admission-queue capacity per shard.
    pub queue: usize,
    /// Root for the per-shard persistent result stores
    /// (`<dir>/shard-<i>`); restarted shards come up warm from it.
    pub results_dir: Option<PathBuf>,
    /// Router health-probe period.
    pub health_interval: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 3,
            port: 0,
            workers: 2,
            queue: 32,
            results_dir: None,
            health_interval: Duration::from_millis(250),
        }
    }
}

struct ShardProc {
    name: String,
    child: Child,
    addr: String,
}

fn spawn_shard(exe: &std::path::Path, index: usize, config: &FleetConfig) -> io::Result<ShardProc> {
    let name = format!("shard-{index}");
    let mut cmd = Command::new(exe);
    cmd.arg("shard")
        .arg("--name")
        .arg(&name)
        .arg("--port")
        .arg("0")
        .arg("--workers")
        .arg(config.workers.to_string())
        .arg("--queue")
        .arg(config.queue.to_string())
        .stdout(Stdio::piped());
    if let Some(dir) = &config.results_dir {
        cmd.arg("--results").arg(dir.join(&name));
    }
    let mut child = cmd.spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = BufReader::new(stdout);
    let mut addr = None;
    let mut line = String::new();
    // The startup contract: the shard prints `... listening on ADDR`
    // once its socket is bound.
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        if let Some((_, rest)) = line.split_once("listening on ") {
            addr = Some(rest.trim().to_string());
            break;
        }
    }
    let Some(addr) = addr else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(io::Error::other(format!(
            "{name} exited before printing its listen address"
        )));
    };
    // Keep the pipe drained so the child can never block on stdout.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    Ok(ShardProc { name, child, addr })
}

/// Brings the fleet up and blocks until it drains: spawn shards, print
/// one `shard NAME listening on ADDR pid PID` line each (scripts kill
/// and restart shards by these), start the router, print its contract
/// line, serve until `POST /shutdown`, then reap the children.
pub fn up(config: &FleetConfig) -> io::Result<()> {
    let exe = std::env::current_exe()?;
    let mut shards: Vec<ShardProc> = Vec::new();
    for index in 0..config.shards.max(1) {
        match spawn_shard(&exe, index, config) {
            Ok(shard) => shards.push(shard),
            Err(e) => {
                for s in &mut shards {
                    let _ = s.child.kill();
                    let _ = s.child.wait();
                }
                return Err(e);
            }
        }
    }
    for s in &shards {
        println!(
            "wasmperf-fleet shard {} listening on {} pid {}",
            s.name,
            s.addr,
            s.child.id()
        );
    }
    let handle = router::start(RouterConfig {
        addr: format!("127.0.0.1:{}", config.port),
        shards: shards
            .iter()
            .map(|s| ShardSpec {
                name: s.name.clone(),
                addr: s.addr.clone(),
            })
            .collect(),
        health_interval: config.health_interval,
        ..RouterConfig::default()
    })?;
    println!("wasmperf-fleet router listening on {}", handle.addr());
    handle.join();
    reap(shards);
    eprintln!("wasmperf-fleet: drained, exiting");
    Ok(())
}

/// Waits out the post-drain shard exits; anything still running after
/// the grace period (e.g. a shard that never got the shutdown because
/// it was marked dead) is killed.
fn reap(shards: Vec<ShardProc>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    for mut s in shards {
        loop {
            match s.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50))
                }
                _ => {
                    let _ = s.child.kill();
                    let _ = s.child.wait();
                    eprintln!("wasmperf-fleet: killed unresponsive {}", s.name);
                    break;
                }
            }
        }
    }
}
