//! wasmperf-fleet: sharded multi-process serving for the benchmark
//! service.
//!
//! One wasmperf-serve process multiplexes clients over a worker pool;
//! this crate scales that to N shard **processes** behind a router,
//! without changing a byte of the service contract:
//!
//! - [`ring`]: rendezvous hashing of content-addressed job keys over
//!   shard names — identical submissions always land on the shard whose
//!   artifact/result caches already hold them, and membership changes
//!   remap only the affected shard's keys;
//! - [`router`]: the front-door process — routes `POST /run` by job
//!   key, proxies bodies verbatim (a proxied response is the shard's
//!   bytes), fans out and merges `GET /metrics`, health-checks shards
//!   with streak hysteresis, fails dead shards out of the ring, and
//!   re-admits them (`POST /admit`) after recovery;
//! - [`fleet`]: the supervisor behind `wasmperf-fleet up` — shard
//!   subprocesses with per-shard persistent result stores, so a
//!   restarted shard answers previously-seen keys as `"cached":true`
//!   without re-executing.
//!
//! The governing invariant is inherited from wasmperf-serve and gated
//! by `wasmperf-loadgen`: degraded service means shed-or-retry (429/503
//! with `Retry-After`), **never** a wrong or torn response.

pub mod fleet;
pub mod ring;
pub mod router;

pub use fleet::{up, FleetConfig};
pub use router::{start, RouterConfig, RouterHandle, ShardSpec};
