//! The fleet router: one front-door socket over N wasmperf-serve
//! shards.
//!
//! Routing is by the request's **content-addressed job key** — the same
//! FNV key the shards use for their artifact and result caches — over a
//! rendezvous ring of live shard names ([`crate::ring`]). Identical
//! submissions therefore always land on the shard whose caches already
//! hold them, and a shard that leaves and returns gets exactly its old
//! keys back, warm.
//!
//! Failure policy: the router never invents results. A proxy failure
//! marks the shard dead and turns into `503 Service Unavailable` with
//! `Retry-After: 1`; the health loop (`GET /healthz` per shard, with
//! consecutive-streak hysteresis) takes the shard out of the ring and
//! re-admits it only after it answers healthy again. Degraded service
//! is shed-or-retry, never a wrong or torn response.
//!
//! Endpoints: `POST /run` and `POST /report` (proxied by key),
//! `GET /metrics` (fan-out: per-shard sections plus a fleet aggregate
//! whose latency histograms are merged exactly via [`Log2Hist`] wire
//! form), `GET /healthz` (local ring view), `POST /admit` (re-register
//! a restarted shard at a new address), `POST /shutdown` (drain the
//! shards, then the router).

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use wasmperf_farm::hash::fnv1a;
use wasmperf_farm::Json;
use wasmperf_serve::http::{
    read_request, read_response, write_request, write_response, Request, Response,
};
use wasmperf_serve::{latency_json, Metrics, Registry, RunRequest};
use wasmperf_trace::Log2Hist;

use crate::ring;

/// One shard the router fronts.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Stable shard name — the ring hashes names, not addresses, so a
    /// shard keeps its keys across an address change.
    pub name: String,
    /// `host:port` of the shard's wasmperf-serve socket.
    pub addr: String,
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// The shards, assumed listening at config time.
    pub shards: Vec<ShardSpec>,
    /// Health-probe period.
    pub health_interval: Duration,
    /// Consecutive failed probes before a live shard is marked dead.
    pub fail_after: u32,
    /// Consecutive healthy probes before a dead shard rejoins the ring.
    pub live_after: u32,
    /// Upstream connect (and probe read) timeout.
    pub connect_timeout: Duration,
    /// Upstream read timeout for proxied requests (must cover a shard's
    /// worst-case run execution).
    pub upstream_read_timeout: Duration,
    /// Client-side idle read timeout, as on the shards.
    pub idle_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            health_interval: Duration::from_millis(250),
            fail_after: 2,
            live_after: 2,
            connect_timeout: Duration::from_secs(1),
            upstream_read_timeout: Duration::from_secs(120),
            idle_timeout: wasmperf_serve::DEFAULT_IDLE_TIMEOUT,
        }
    }
}

/// One upstream keep-alive connection (the router's client half reuses
/// the shared HTTP codec, so router and shard can't drift on framing).
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn connect(addr: &str, connect_timeout: Duration, read_timeout: Duration) -> io::Result<Conn> {
        let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unresolvable shard address {addr}"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&sock, connect_timeout)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        write_request(&mut self.writer, method, path, body)?;
        read_response(&mut self.reader)
    }
}

struct ShardState {
    name: String,
    addr: Mutex<String>,
    live: AtomicBool,
    ok_streak: AtomicU32,
    fail_streak: AtomicU32,
    proxied: AtomicU64,
    proxy_failures: AtomicU64,
}

impl ShardState {
    fn addr(&self) -> String {
        self.addr
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Takes the shard out of the ring (proxy failure or demotion); the
    /// health loop must then see `live_after` clean probes to restore it.
    fn mark_dead(&self) {
        self.live.store(false, Ordering::SeqCst);
        self.ok_streak.store(0, Ordering::SeqCst);
    }
}

struct Shared {
    config: RouterConfig,
    shards: Vec<Arc<ShardState>>,
    registry: Registry,
    /// The router's own front-door counters: what clients of the fleet
    /// actually observed, independent of shard-side accounting.
    metrics: Metrics,
    no_live_shard: AtomicU64,
    admits: AtomicU64,
    draining: AtomicBool,
    open_connections: AtomicUsize,
    conn_streams: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

impl Shared {
    fn shard_by_name(&self, name: &str) -> Option<&Arc<ShardState>> {
        self.shards.iter().find(|s| s.name == name)
    }

    /// Sorted live shard names — the ring's current membership.
    fn live_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .filter(|s| s.live.load(Ordering::SeqCst))
            .map(|s| s.name.clone())
            .collect();
        names.sort();
        names
    }

    fn begin_drain(&self) -> bool {
        if self.draining.swap(true, Ordering::SeqCst) {
            return false;
        }
        let streams = self
            .conn_streams
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for stream in streams.values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        true
    }

    /// Drains the fleet in order: shards first (best effort), then the
    /// router's own admission.
    fn drain_shards(&self) {
        for shard in &self.shards {
            let addr = shard.addr();
            let resp = Conn::connect(
                &addr,
                self.config.connect_timeout,
                self.config.connect_timeout,
            )
            .and_then(|mut c| c.request("POST", "/shutdown", b""));
            if resp.is_err() {
                // Already gone — exactly what a drain wants.
                shard.mark_dead();
            }
        }
    }
}

/// A running router. As with the shard server, dropping the handle does
/// not stop it; drain via [`RouterHandle::shutdown`] or `POST /shutdown`.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    health_thread: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts the drain: shards first, then the router.
    pub fn shutdown(&self) {
        if self.shared.begin_drain() {
            self.shared.drain_shards();
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Waits until the accept loop exited, every connection closed, and
    /// the health loop stopped.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        while self.shared.open_connections.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(t) = self.health_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds and starts the router; returns once the socket is listening.
/// Shards start live (the caller just observed them up) and the health
/// loop demotes any that aren't.
pub fn start(config: RouterConfig) -> io::Result<RouterHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shards = config
        .shards
        .iter()
        .map(|s| {
            Arc::new(ShardState {
                name: s.name.clone(),
                addr: Mutex::new(s.addr.clone()),
                live: AtomicBool::new(true),
                ok_streak: AtomicU32::new(0),
                fail_streak: AtomicU32::new(0),
                proxied: AtomicU64::new(0),
                proxy_failures: AtomicU64::new(0),
            })
        })
        .collect();
    let shared = Arc::new(Shared {
        config,
        shards,
        registry: Registry::load(),
        metrics: Metrics::new(),
        no_live_shard: AtomicU64::new(0),
        admits: AtomicU64::new(0),
        draining: AtomicBool::new(false),
        open_connections: AtomicUsize::new(0),
        conn_streams: Mutex::new(HashMap::new()),
        next_conn: AtomicU64::new(0),
    });

    let health_shared = Arc::clone(&shared);
    let health_thread = std::thread::spawn(move || {
        while !health_shared.draining.load(Ordering::SeqCst) {
            for shard in &health_shared.shards {
                probe(&health_shared, shard);
            }
            std::thread::sleep(health_shared.config.health_interval);
        }
    });

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let _ = stream.set_nodelay(true);
            let conn_shared = Arc::clone(&accept_shared);
            conn_shared.open_connections.fetch_add(1, Ordering::AcqRel);
            let conn_id = conn_shared.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                conn_shared
                    .conn_streams
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(conn_id, clone);
            }
            if conn_shared.draining.load(Ordering::SeqCst) {
                let _ = stream.shutdown(std::net::Shutdown::Read);
            }
            std::thread::spawn(move || {
                let addr = stream.local_addr();
                handle_connection(&conn_shared, stream);
                conn_shared
                    .conn_streams
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&conn_id);
                conn_shared.open_connections.fetch_sub(1, Ordering::AcqRel);
                if conn_shared.draining.load(Ordering::SeqCst) {
                    if let Ok(a) = addr {
                        let _ = TcpStream::connect(a);
                    }
                }
            });
        }
    });

    Ok(RouterHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        health_thread: Some(health_thread),
    })
}

/// One health probe: the shard is healthy iff `/healthz` answers 200
/// and isn't draining. Streak hysteresis keeps one flaky probe from
/// flapping the ring.
fn probe(shared: &Shared, shard: &ShardState) {
    let t = shared.config.connect_timeout;
    let healthy = Conn::connect(&shard.addr(), t, t)
        .and_then(|mut c| c.request("GET", "/healthz", &[]))
        .ok()
        .filter(|resp| resp.status == 200)
        .and_then(|resp| resp.body_json().ok())
        .is_some_and(|body| body.get("draining") != Some(&Json::Bool(true)));
    if healthy {
        shard.fail_streak.store(0, Ordering::SeqCst);
        let streak = shard.ok_streak.fetch_add(1, Ordering::SeqCst) + 1;
        if !shard.live.load(Ordering::SeqCst) && streak >= shared.config.live_after {
            shard.live.store(true, Ordering::SeqCst);
        }
    } else {
        shard.ok_streak.store(0, Ordering::SeqCst);
        let streak = shard.fail_streak.fetch_add(1, Ordering::SeqCst) + 1;
        if shard.live.load(Ordering::SeqCst) && streak >= shared.config.fail_after {
            shard.live.store(false, Ordering::SeqCst);
        }
    }
}

/// Per-connection cache of upstream keep-alive connections, keyed by
/// shard name and pinned to the address they were dialed at (an
/// `/admit` address change invalidates the entry).
type Upstreams = HashMap<String, (String, Conn)>;

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    let mut upstreams: Upstreams = HashMap::new();
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) => {
                match e.kind() {
                    io::ErrorKind::InvalidData => {
                        let resp = error_json(400, &e.to_string());
                        let _ = write_response(&mut writer, &resp, false);
                    }
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => {
                        let resp = error_json(408, "idle timeout: no request received");
                        let _ = write_response(&mut writer, &resp, false);
                    }
                    _ => {}
                }
                return;
            }
        };
        let started = Instant::now();
        let resp = route(shared, &req, &mut upstreams);
        let us = started.elapsed().as_micros() as u64;
        let endpoint = format!("{} {}", req.method, req.path);
        shared.metrics.record(&endpoint, resp.status, us);
        let keep_alive = req.keep_alive() && !shared.draining.load(Ordering::SeqCst);
        if write_response(&mut writer, &resp, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

fn route(shared: &Shared, req: &Request, upstreams: &mut Upstreams) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => metrics(shared),
        ("POST", "/run") => run(shared, req, upstreams),
        ("POST", "/report") => {
            route_by_key(shared, fnv1a(&req.body), "/report", &req.body, upstreams)
        }
        ("POST", "/admit") => admit(shared, req),
        ("POST", "/shutdown") => {
            if shared.begin_drain() {
                shared.drain_shards();
            }
            Response::json(200, &Json::Obj(vec![("draining".into(), Json::Bool(true))]))
        }
        (_, "/healthz" | "/metrics" | "/run" | "/report" | "/admit" | "/shutdown") => error_json(
            405,
            &format!("method {} not allowed on {}", req.method, req.path),
        ),
        (_, path) => error_json(404, &format!("no such endpoint {path}")),
    }
}

fn run(shared: &Shared, req: &Request, upstreams: &mut Upstreams) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return error_json(503, "router draining").with_header("Retry-After", "1");
    }
    let parsed = std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| {
            Json::parse(text.trim()).map_err(|e| format!("body is not valid JSON: {e}"))
        })
        .and_then(|body| RunRequest::from_json(&body));
    let run_req = match parsed {
        Ok(r) => r,
        Err(e) => return error_json(400, &e),
    };
    // The routing key IS the shards' cache key, so a resubmission lands
    // where its artifact and result already live.
    let key = match shared.registry.job_key(&run_req) {
        Ok(k) => k,
        Err(e) => return Response::json(e.status(), &e.to_json()),
    };
    route_by_key(shared, key, "/run", &req.body, upstreams)
}

/// Picks the key's owner among live shards and proxies the body
/// verbatim — the response the client sees is the shard's bytes.
fn route_by_key(
    shared: &Shared,
    key: u64,
    path: &str,
    body: &[u8],
    upstreams: &mut Upstreams,
) -> Response {
    let live = shared.live_names();
    let Some(owner) = ring::pick(key, &live) else {
        shared.no_live_shard.fetch_add(1, Ordering::Relaxed);
        return error_json(503, "no live shards").with_header("Retry-After", "1");
    };
    let shard = shared
        .shard_by_name(owner)
        .expect("ring picked an unknown shard");
    match proxy(shared, shard, path, body, upstreams) {
        Ok(resp) => relay(resp),
        Err(e) => {
            // Fail the shard out of the ring and tell the client to
            // retry; the health loop re-admits it after recovery.
            shard.proxy_failures.fetch_add(1, Ordering::Relaxed);
            shard.mark_dead();
            error_json(503, &format!("shard {} unreachable: {e}", shard.name))
                .with_header("Retry-After", "1")
        }
    }
}

/// One proxied request over the cached upstream connection, retried
/// once on a fresh dial — the shard's own idle timeout may have cut a
/// quiet keep-alive, which must not read as shard death.
fn proxy(
    shared: &Shared,
    shard: &ShardState,
    path: &str,
    body: &[u8],
    upstreams: &mut Upstreams,
) -> io::Result<Response> {
    let addr = shard.addr();
    if let Some((cached_addr, conn)) = upstreams.get_mut(&shard.name) {
        if *cached_addr == addr {
            if let Ok(resp) = conn.request("POST", path, body) {
                shard.proxied.fetch_add(1, Ordering::Relaxed);
                return Ok(resp);
            }
        }
        upstreams.remove(&shard.name);
    }
    let mut conn = Conn::connect(
        &addr,
        shared.config.connect_timeout,
        shared.config.upstream_read_timeout,
    )?;
    let resp = conn.request("POST", path, body)?;
    upstreams.insert(shard.name.clone(), (addr, conn));
    shard.proxied.fetch_add(1, Ordering::Relaxed);
    Ok(resp)
}

/// Rebuilds the upstream response for the client: body bytes verbatim,
/// with only the semantic headers carried over (framing headers are
/// re-added by the writer).
fn relay(upstream: Response) -> Response {
    let mut resp = Response {
        status: upstream.status,
        headers: vec![("Content-Type".into(), "application/json".into())],
        body: upstream.body,
    };
    if let Some(retry) = upstream
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("retry-after"))
    {
        resp.headers.push(("Retry-After".into(), retry.1.clone()));
    }
    resp
}

fn healthz(shared: &Shared) -> Response {
    let shards: Vec<Json> = shared
        .shards
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name.clone())),
                ("addr".into(), Json::Str(s.addr())),
                ("live".into(), Json::Bool(s.live.load(Ordering::SeqCst))),
            ])
        })
        .collect();
    Response::json(
        200,
        &Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("role".into(), Json::Str("router".into())),
            (
                "draining".into(),
                Json::Bool(shared.draining.load(Ordering::SeqCst)),
            ),
            ("live".into(), Json::u64(shared.live_names().len() as u64)),
            ("shards".into(), Json::Arr(shards)),
        ]),
    )
}

fn admit(shared: &Shared, req: &Request) -> Response {
    let body = match std::str::from_utf8(&req.body)
        .ok()
        .and_then(|t| Json::parse(t.trim()).ok())
    {
        Some(b) => b,
        None => return error_json(400, "admit body is not valid JSON"),
    };
    let (name, addr) = match (
        body.get("shard").and_then(Json::as_str),
        body.get("addr").and_then(Json::as_str),
    ) {
        (Some(n), Some(a)) => (n.to_string(), a.to_string()),
        _ => return error_json(400, "admit needs string fields \"shard\" and \"addr\""),
    };
    let Some(shard) = shared.shard_by_name(&name) else {
        return error_json(404, &format!("no such shard {name:?}"));
    };
    *shard.addr.lock().unwrap_or_else(PoisonError::into_inner) = addr.clone();
    // Probation: the health loop promotes after `live_after` clean
    // probes at the new address.
    shard.mark_dead();
    shard.fail_streak.store(0, Ordering::SeqCst);
    shared.admits.fetch_add(1, Ordering::Relaxed);
    Response::json(
        200,
        &Json::Obj(vec![
            ("admitted".into(), Json::Str(name)),
            ("addr".into(), Json::Str(addr)),
            ("live".into(), Json::Bool(false)),
        ]),
    )
}

/// `GET /metrics`: fan out to every shard and merge. The top level is
/// the **fleet aggregate in the shard schema** (so `loadgen
/// --verify-metrics` works unchanged against the router): `requests`
/// and `latency` are the router's own front-door observations, while
/// `syscalls`, `cache`, `pool` and the shed/deadline tallies are exact
/// sums over reachable shards. Per-shard snapshots ride under `shards`,
/// and `fleet` carries the ring state plus the cross-shard latency
/// histogram merged via the exact [`Log2Hist`] wire form.
fn metrics(shared: &Shared) -> Response {
    let t = shared.config.connect_timeout;
    let mut per_shard: Vec<(String, Result<Json, String>)> = Vec::new();
    for shard in &shared.shards {
        let fetched = Conn::connect(&shard.addr(), t, t.max(Duration::from_secs(2)))
            .and_then(|mut c| c.request("GET", "/metrics", &[]))
            .map_err(|e| e.to_string())
            .and_then(|resp| {
                if resp.status == 200 {
                    resp.body_json()
                } else {
                    Err(format!("/metrics returned {}", resp.status))
                }
            });
        per_shard.push((shard.name.clone(), fetched));
    }
    let reachable: Vec<&Json> = per_shard
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok())
        .collect();

    let mut snapshot = shared.metrics.to_json(0, 0, 0, 0, 0);
    set_field(
        &mut snapshot,
        "syscalls",
        sum_section(
            &reachable,
            "syscalls",
            &["runs_executed", "count", "kernel_cycles", "kernel_bytes"],
            &[],
        ),
    );
    set_field(
        &mut snapshot,
        "cache",
        sum_section(
            &reachable,
            "cache",
            &[
                "artifact_builds",
                "artifact_hits",
                "result_hits",
                "result_misses",
                "store_hits",
            ],
            &[],
        ),
    );
    set_field(
        &mut snapshot,
        "pool",
        sum_section(
            &reachable,
            "pool",
            &["queued", "active", "queue_depth", "workers"],
            &["max_depth"],
        ),
    );
    for tally in ["shed", "deadline_sim", "deadline_wall"] {
        let sum = reachable
            .iter()
            .filter_map(|j| j.get(tally).and_then(Json::as_u64))
            .sum();
        set_field(&mut snapshot, tally, Json::u64(sum));
    }

    // The exact cross-shard latency distribution: parse each shard's
    // wire-form histogram, merge, re-render through the same section
    // renderer the shards use.
    let mut merged = Log2Hist::new();
    for j in &reachable {
        if let Some(hist) = j
            .get("latency")
            .and_then(|l| l.get("hist"))
            .and_then(Log2Hist::from_json)
        {
            merged.merge(&hist);
        }
    }

    let shards_json = Json::Obj(
        per_shard
            .into_iter()
            .map(|(name, r)| {
                let v = match r {
                    Ok(j) => j,
                    Err(e) => Json::Obj(vec![("unreachable".into(), Json::Str(e))]),
                };
                (name, v)
            })
            .collect(),
    );
    let fleet = Json::Obj(vec![
        ("role".into(), Json::Str("router".into())),
        ("shards".into(), Json::u64(shared.shards.len() as u64)),
        ("live".into(), Json::u64(shared.live_names().len() as u64)),
        (
            "draining".into(),
            Json::Bool(shared.draining.load(Ordering::SeqCst)),
        ),
        (
            "proxied".into(),
            Json::u64(
                shared
                    .shards
                    .iter()
                    .map(|s| s.proxied.load(Ordering::Relaxed))
                    .sum(),
            ),
        ),
        (
            "proxy_failures".into(),
            Json::u64(
                shared
                    .shards
                    .iter()
                    .map(|s| s.proxy_failures.load(Ordering::Relaxed))
                    .sum(),
            ),
        ),
        (
            "no_live_shard".into(),
            Json::u64(shared.no_live_shard.load(Ordering::Relaxed)),
        ),
        (
            "admits".into(),
            Json::u64(shared.admits.load(Ordering::Relaxed)),
        ),
        ("shard_latency".into(), latency_json(&merged)),
    ]);
    if let Json::Obj(fields) = &mut snapshot {
        fields.push(("fleet".into(), fleet));
        fields.push(("shards".into(), shards_json));
    }
    Response::json(200, &snapshot)
}

/// Replaces (or appends) one field of a JSON object.
fn set_field(obj: &mut Json, name: &str, value: Json) {
    if let Json::Obj(fields) = obj {
        match fields.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v = value,
            None => fields.push((name.to_string(), value)),
        }
    }
}

/// Sums one named section across shard snapshots: `sum_fields` add,
/// `max_fields` take the maximum (depth high-water marks don't add).
fn sum_section(shards: &[&Json], section: &str, sum_fields: &[&str], max_fields: &[&str]) -> Json {
    fn values(shards: &[&Json], section: &str, name: &str) -> Vec<u64> {
        shards
            .iter()
            .filter_map(|j| {
                j.get(section)
                    .and_then(|s| s.get(name))
                    .and_then(Json::as_u64)
            })
            .collect()
    }
    let mut fields: Vec<(String, Json)> = Vec::new();
    for name in sum_fields {
        fields.push((
            name.to_string(),
            Json::u64(values(shards, section, name).iter().sum()),
        ));
    }
    for name in max_fields {
        fields.push((
            name.to_string(),
            Json::u64(values(shards, section, name).into_iter().max().unwrap_or(0)),
        ));
    }
    Json::Obj(fields)
}

fn error_json(status: u16, message: &str) -> Response {
    Response::json(
        status,
        &Json::Obj(vec![("error".into(), Json::Str(message.to_string()))]),
    )
}
