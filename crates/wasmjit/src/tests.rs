//! JIT tests: differential execution against the wasm interpreter and the
//! native backend, plus structural checks on the code-quality mechanisms.

use crate::{compile, EngineProfile, Tier};
use wasmperf_cpu::{Machine, NullHost, PerfCounters};
use wasmperf_isa::Inst;
use wasmperf_wasm::{validate, Instance, NoImports, Value};

fn to_wasm(src: &str) -> wasmperf_wasm::WasmModule {
    let prog = wasmperf_cir::compile(src).expect("clite compiles");
    let m = wasmperf_emcc::compile(&prog);
    validate(&m).expect("validates");
    m
}

fn run_jit(src: &str, profile: &EngineProfile, args: &[u64]) -> (u64, PerfCounters) {
    let wasm = to_wasm(src);
    let out = compile(&wasm, profile).expect("jit compiles");
    let mut m = Machine::new(&out.module, NullHost);
    let r = m
        .run(out.module.entry.expect("main"), args, 500_000_000)
        .expect("runs");
    (r.ret, r.counters)
}

fn run_wasm_interp(src: &str, args: &[u64]) -> u64 {
    let wasm = to_wasm(src);
    let mut inst = Instance::new(&wasm, NoImports).unwrap();
    let vargs: Vec<Value> = args.iter().map(|&a| Value::I32(a as u32 as i32)).collect();
    match inst.invoke_export("main", &vargs).expect("runs") {
        Some(v) => v.raw(),
        None => 0,
    }
}

fn run_native(src: &str, args: &[u64]) -> (u64, PerfCounters) {
    let prog = wasmperf_cir::compile(src).expect("compiles");
    let module = wasmperf_clanglite::compile(&prog, &wasmperf_clanglite::CompileOptions::default());
    let mut m = Machine::new(&module, NullHost);
    let r = m
        .run(module.entry.expect("main"), args, 500_000_000)
        .expect("runs");
    (r.ret, r.counters)
}

fn all_profiles() -> Vec<EngineProfile> {
    vec![
        EngineProfile::chrome(),
        EngineProfile::firefox(),
        EngineProfile::chrome_asmjs(),
        EngineProfile::firefox_asmjs(),
        EngineProfile::chrome().at_tier(Tier::Y2017),
        EngineProfile::chrome().at_tier(Tier::Y2018),
        EngineProfile::firefox().at_tier(Tier::Y2017),
    ]
}

#[test]
fn minimal_program_all_profiles() {
    for p in all_profiles() {
        let (r, _) = run_jit("fn main() -> i32 { return 41 + 1; }", &p, &[]);
        assert_eq!(r as u32, 42, "{}", p.name);
    }
}

#[test]
fn matmul_differential_all_profiles() {
    let src = "
        const NI = 10;
        const NK = 12;
        const NJ = 8;
        array i32 A[NI * NK];
        array i32 B[NK * NJ];
        array i32 C[NI * NJ];
        fn main() -> i32 {
            var i: i32 = 0;
            var j: i32 = 0;
            var k: i32 = 0;
            for (i = 0; i < NI * NK; i += 1) { A[i] = i % 13; }
            for (i = 0; i < NK * NJ; i += 1) { B[i] = i % 7; }
            for (i = 0; i < NI; i += 1) {
                for (k = 0; k < NK; k += 1) {
                    for (j = 0; j < NJ; j += 1) {
                        C[i * NJ + j] += A[i * NK + k] * B[k * NJ + j];
                    }
                }
            }
            var s: i32 = 0;
            for (i = 0; i < NI * NJ; i += 1) { s += C[i]; }
            return s;
        }
    ";
    let oracle = run_wasm_interp(src, &[]) as u32;
    let (native, _) = run_native(src, &[]);
    assert_eq!(native as u32, oracle, "native");
    for p in all_profiles() {
        let (r, _) = run_jit(src, &p, &[]);
        assert_eq!(r as u32, oracle, "{}", p.name);
    }
}

#[test]
fn control_flow_differential() {
    let src = "
        fn collatz(n: i32) -> i32 {
            var steps: i32 = 0;
            while (n != 1) {
                if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                steps += 1;
                if (steps > 1000) { break; }
            }
            return steps;
        }
        fn main() -> i32 {
            var i: i32 = 1;
            var total: i32 = 0;
            do {
                total += collatz(i);
                i += 1;
            } while (i < 40);
            return total;
        }
    ";
    let oracle = run_wasm_interp(src, &[]) as u32;
    for p in all_profiles() {
        let (r, _) = run_jit(src, &p, &[]);
        assert_eq!(r as u32, oracle, "{}", p.name);
    }
}

#[test]
fn recursion_and_calls() {
    let src = "
        fn ack(m: i32, n: i32) -> i32 {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        fn main() -> i32 { return ack(2, 3); }
    ";
    let oracle = run_wasm_interp(src, &[]) as u32;
    assert_eq!(oracle, 9);
    for p in [EngineProfile::chrome(), EngineProfile::firefox()] {
        let (r, _) = run_jit(src, &p, &[]);
        assert_eq!(r as u32, oracle, "{}", p.name);
    }
}

#[test]
fn indirect_calls_checked_and_correct() {
    let src = "
        fn inc(x: i32) -> i32 { return x + 1; }
        fn dbl(x: i32) -> i32 { return x * 2; }
        fn sqr(x: i32) -> i32 { return x * x; }
        table ops = [inc, dbl, sqr];
        fn main(i: i32) -> i32 {
            var acc: i32 = 3;
            var k: i32 = 0;
            for (k = 0; k < 10; k += 1) { acc = ops[(i + k) % 3](acc) % 1000; }
            return acc;
        }
    ";
    for arg in [0u64, 1, 2] {
        let oracle = run_wasm_interp(src, &[arg]) as u32;
        for p in [EngineProfile::chrome(), EngineProfile::firefox()] {
            let (r, _) = run_jit(src, &p, &[arg]);
            assert_eq!(r as u32, oracle, "{} arg={arg}", p.name);
        }
    }
}

#[test]
fn floats_differential() {
    let src = "
        array f64 V[64];
        fn main() -> i32 {
            var i: i32 = 0;
            for (i = 0; i < 64; i += 1) {
                V[i] = sqrt(f64(i) + 0.25) * 1.5 - floor(f64(i) / 3.0);
            }
            var s: f64 = 0.0;
            for (i = 0; i < 64; i += 1) { s += V[i]; }
            var m: f64 = min(s, 1.0e9);
            return i32(m * 256.0);
        }
    ";
    let oracle = run_wasm_interp(src, &[]) as u32;
    for p in all_profiles() {
        let (r, _) = run_jit(src, &p, &[]);
        assert_eq!(r as u32, oracle, "{}", p.name);
    }
}

#[test]
fn i64_and_unsigned_differential() {
    let src = "
        fn mix(x: u32) -> u32 {
            return rotl(x * u32(2654435761), u32(15)) ^ (x >> u32(7));
        }
        fn main() -> i32 {
            var h: u32 = u32(0x9e3779b9);
            var i: i32 = 0;
            var big: i64 = 1;
            for (i = 0; i < 100; i += 1) {
                h = mix(h + u32(i));
                big = (big * i64(31) + i64(h)) % i64(1000000007);
            }
            return i32(h >> u32(16)) + i32(big % i64(10000));
        }
    ";
    let oracle = run_wasm_interp(src, &[]) as u32;
    for p in all_profiles() {
        let (r, _) = run_jit(src, &p, &[]);
        assert_eq!(r as u32, oracle, "{}", p.name);
    }
}

#[test]
fn stack_check_present_and_costs_branches() {
    let src = "fn main() -> i32 { return 1; }";
    let wasm = to_wasm(src);
    let with = compile(&wasm, &EngineProfile::chrome()).unwrap();
    let without = compile(
        &wasm,
        &EngineProfile {
            stack_check: false,
            ..EngineProfile::chrome()
        },
    )
    .unwrap();
    assert!(with.module.inst_count() > without.module.inst_count());
    let main = &with.module.funcs[with.module.entry.unwrap().0 as usize];
    assert!(
        main.insts.iter().any(|i| matches!(
            i,
            Inst::Cmp {
                lhs: wasmperf_isa::Operand::Reg(wasmperf_isa::Reg::Rsp),
                ..
            }
        )),
        "stack check compares rsp"
    );
}

#[test]
fn deep_recursion_triggers_stack_check() {
    let src = "
        fn rec(n: i32) -> i32 {
            if (n <= 0) { return 0; }
            return 1 + rec(n - 1);
        }
        fn main(n: i32) -> i32 { return rec(n); }
    ";
    let wasm = to_wasm(src);
    let out = compile(&wasm, &EngineProfile::chrome()).unwrap();
    let mut m = Machine::new(&out.module, NullHost);
    // Extremely deep recursion must trap via the stack check, not corrupt
    // memory.
    let err = m
        .run(out.module.entry.unwrap(), &[10_000_000], 500_000_000)
        .unwrap_err();
    assert_eq!(err.kind, wasmperf_isa::TrapKind::StackOverflow);
}

#[test]
fn jit_executes_more_instructions_than_native() {
    // The headline gap: on a call-containing loop benchmark the JIT
    // retires more instructions, loads, stores (spills around calls with
    // few callee-saved registers), and branches than native (§6).
    let src = "
        const N = 400;
        array i32 A[N];
        array i32 B[N];
        fn mix(a: i32, b: i32) -> i32 { return (a ^ b) + (a >> 2) * 3; }
        fn main() -> i32 {
            var i: i32 = 0;
            var s: i32 = 0;
            var t: i32 = 7;
            var u: i32 = 11;
            var v: i32 = 13;
            var w: i32 = 17;
            var x: i32 = 19;
            for (i = 0; i < N; i += 1) { A[i] = i * 3 + 1; }
            for (i = 0; i < N; i += 1) { B[i] = A[i] ^ (i << 2); }
            for (i = 0; i < N; i += 1) {
                s += mix(A[i], B[i]) + t * u + (s >> 3) + (v ^ w) - x;
                t = (t + 3) % 101;
                u = (u + 7) % 103;
                v = (v + u) % 107;
                w = (w + v) % 109;
                x = (x + w) % 113;
            }
            return s + t + u + v + w + x;
        }
    ";
    let (rn, cn) = run_native(src, &[]);
    let (rc, cc) = run_jit(src, &EngineProfile::chrome(), &[]);
    let (rf, cf) = run_jit(src, &EngineProfile::firefox(), &[]);
    assert_eq!(rn as u32, rc as u32);
    assert_eq!(rn as u32, rf as u32);
    for (name, c) in [("chrome", &cc), ("firefox", &cf)] {
        assert!(
            c.instructions_retired > cn.instructions_retired,
            "{name}: {} vs native {}",
            c.instructions_retired,
            cn.instructions_retired
        );
        assert!(c.loads_retired > cn.loads_retired, "{name} loads");
        assert!(c.stores_retired > cn.stores_retired, "{name} stores");
        assert!(c.branches_retired > cn.branches_retired, "{name} branches");
        assert!(c.cycles > cn.cycles, "{name} cycles");
    }
    // Chrome's extra loop-entry jumps: more branches than Firefox.
    assert!(cc.branches_retired >= cf.branches_retired);
}

#[test]
fn asmjs_slower_than_wasm() {
    let src = "
        const N = 300;
        array i32 A[N];
        fn main() -> i32 {
            var i: i32 = 0;
            var s: i32 = 0;
            for (i = 0; i < N; i += 1) { A[i] = i * i + (i >> 1); }
            for (i = 0; i < N; i += 1) { s += A[i] ^ (s << 1); }
            return s;
        }
    ";
    let (rw, cw) = run_jit(src, &EngineProfile::chrome(), &[]);
    let (ra, ca) = run_jit(src, &EngineProfile::chrome_asmjs(), &[]);
    assert_eq!(rw as u32, ra as u32);
    assert!(
        ca.instructions_retired > cw.instructions_retired,
        "asm.js {} vs wasm {}",
        ca.instructions_retired,
        cw.instructions_retired
    );
    assert!(ca.cycles > cw.cycles);
}

#[test]
fn tiers_improve_monotonically() {
    let src = "
        const N = 256;
        array i32 A[N];
        fn main() -> i32 {
            var i: i32 = 0;
            var s: i32 = 0;
            for (i = 0; i < N; i += 1) { A[i] = i + 7; }
            for (i = 0; i < N; i += 1) { s += A[i] * 3; }
            return s;
        }
    ";
    let mut cycles = Vec::new();
    for tier in [Tier::Y2017, Tier::Y2018, Tier::Y2019] {
        let p = EngineProfile::chrome().at_tier(tier);
        let (r, c) = run_jit(src, &p, &[]);
        let oracle = run_wasm_interp(src, &[]) as u32;
        assert_eq!(r as u32, oracle, "{tier:?}");
        cycles.push(c.cycles);
    }
    assert!(
        cycles[0] >= cycles[1] && cycles[1] >= cycles[2],
        "tiers should not regress: {cycles:?}"
    );
}

#[test]
fn subword_memory_differential() {
    let src = "
        array u8 bytes[256];
        array i16 shorts[64];
        fn main() -> i32 {
            var i: i32 = 0;
            for (i = 0; i < 256; i += 1) { bytes[i] = (i * 37) & 255; }
            for (i = 0; i < 64; i += 1) { shorts[i] = (i - 32) * 100; }
            var s: i32 = 0;
            for (i = 0; i < 256; i += 1) { s += bytes[i]; }
            for (i = 0; i < 64; i += 1) { s += shorts[i]; }
            return s;
        }
    ";
    let oracle = run_wasm_interp(src, &[]) as u32;
    for p in all_profiles() {
        let (r, _) = run_jit(src, &p, &[]);
        assert_eq!(r as u32, oracle, "{}", p.name);
    }
}

#[test]
fn syscalls_route_to_host() {
    use wasmperf_cpu::{HostEnv, HostOutcome, Memory};
    use wasmperf_isa::TrapKind;
    struct Recorder(Vec<[u64; 6]>);
    impl HostEnv for Recorder {
        fn call(
            &mut self,
            id: u32,
            args: &[u64; 6],
            _mem: &mut Memory,
        ) -> Result<HostOutcome, TrapKind> {
            assert_eq!(id, 0);
            self.0.push(*args);
            Ok(HostOutcome::Ret {
                value: args[0] + 1,
                kernel_cycles: 5,
            })
        }
    }
    let src = "fn main() -> i32 { return syscall(41, 1, 2) + syscall(10); }";
    let wasm = to_wasm(src);
    let out = compile(&wasm, &EngineProfile::firefox()).unwrap();
    let mut m = Machine::new(&out.module, Recorder(Vec::new()));
    let r = m.run(out.module.entry.unwrap(), &[], 1_000_000).unwrap();
    assert_eq!(r.ret, 42 + 11);
    assert_eq!(r.counters.host_calls, 2);
    assert_eq!(m.host().0[0], [41, 1, 2, 0, 0, 0]);
}

#[test]
fn short_circuit_and_breaks_differential() {
    let src = "
        global i32 hits = 0;
        fn probe(v: i32) -> i32 { hits += 1; return v; }
        fn main() -> i32 {
            var i: i32 = 0;
            var s: i32 = 0;
            while (i < 64) {
                i += 1;
                if (i % 2 == 0 && probe(i) > 10) { s += 1; }
                if (i % 8 == 0 || probe(i) < 5) { s += 100; continue; }
                if (i > 50) { break; }
                s += 3;
            }
            return s * 1000 + hits;
        }
    ";
    let oracle = run_wasm_interp(src, &[]) as u32;
    for p in all_profiles() {
        let (r, _) = run_jit(src, &p, &[arg0()]);
        assert_eq!(r as u32, oracle, "{}", p.name);
    }
}

fn arg0() -> u64 {
    0
}
