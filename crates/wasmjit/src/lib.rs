//! wasmjit: the browser WebAssembly JIT analog.
//!
//! Compiles validated WebAssembly modules to simulated x86-64 the way
//! Chrome's and Firefox's engines do, reproducing every code-quality
//! deficit the paper identifies:
//!
//! - **single-pass stack-machine compilation** with **linear-scan**
//!   register allocation over a *reduced* register pool (Chrome reserves
//!   `rbx` for the wasm memory base, `r13` for GC roots, and `r10` as
//!   scratch; Firefox reserves `r15` and `r11` — §6.1.1/§6.1.2);
//! - **no addressing-mode fusion**: address arithmetic stays in explicit
//!   instructions; memory operands use at most `[membase + reg]`
//!   (§6.1.3);
//! - **per-function stack-overflow checks** (§6.2.2) and **indirect-call
//!   bounds + signature checks** (§6.2.3), with out-of-line trap stubs;
//! - **loop code from the wasm structure**: the producer's
//!   `block { loop { cond; br_if; body; br } }` shape costs two branches
//!   per iteration, and the Chrome profile additionally emits the
//!   jump-over-reload entry jumps seen in the paper's Figure 7c (§5.1.3);
//! - engine **tiers** ([`Tier`]) modelling the 2017→2019 maturation of
//!   wasm JITs (Figure 1): immediate-operand use, memarg folding into
//!   displacements, and compare/branch fusion arrive progressively;
//! - an **asm.js mode** adding the `|0`-style coercions, heap masking,
//!   and 64-bit-pair overheads of the pre-wasm pipeline (Figures 5/6).

use wasmperf_isa::module::NO_TAG;
use wasmperf_isa::{AluOp, Cc, FPrec, HeapBase, Module, Reg, RoundMode, Sandbox, TrapKind, Width};
use wasmperf_regalloc::lir::{FLoc, FOpnd, LBlock};
use wasmperf_regalloc::{
    allocate_linear_scan, emit_function, AllocProfile, Arg, BlockId, LFunc, LInst, LMem, Loc, Opnd,
    RetVal, VClass,
};
use wasmperf_wasm::instr::SubWidth;
use wasmperf_wasm::wat;
use wasmperf_wasm::{
    CvtOp, FBinop, FRelop, FUnop, IBinop, IRelop, IUnop, Instr, MemArg, NumWidth, ValType,
    WasmModule,
};

/// JIT maturity tier (the Figure 1 vintages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// 2017-era: every value materialized, no immediate operands, no
    /// memarg folding, no compare/branch fusion.
    Y2017,
    /// 2018-era: immediates and memarg displacement folding.
    Y2018,
    /// 2019-era (the paper's measurement point): + compare/branch fusion.
    Y2019,
}

/// Which heap-protection strategy the engine compiles in. The three
/// ablations are result-identical by construction — an access of width
/// `w` at offset `a` traps iff `a + w > mem_bytes` under all of them —
/// so only their costs differ (docs/SANDBOX.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SandboxModel {
    /// Explicit compare-and-branch bounds check before every heap
    /// load/store; its issue/branch cost flows through the cpu model.
    Bounds,
    /// Guard pages: no check instructions; the simulator faults
    /// out-of-bounds heap accesses for free (the default — what the
    /// paper's engines do for loads/stores on 64-bit).
    Guard,
    /// Guard pages plus MPK/PKU-style protection domains: two modeled
    /// WRPKRU switches (this many cycles each) charged at every host-call
    /// boundary crossing.
    Pku {
        /// Modeled cycles per WRPKRU domain switch.
        switch_cycles: u32,
    },
}

/// Default modeled cost of one WRPKRU domain switch, in cycles. WRPKRU
/// is a serializing register write; published measurements put a
/// round-trip in the 20–60 cycle range, so half of a mid-range
/// round-trip per switch.
pub const PKU_SWITCH_CYCLES: u32 = 28;

/// An engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineProfile {
    /// Engine name (used in reports).
    pub name: String,
    /// Register pool.
    pub alloc: AllocProfile,
    /// Pinned wasm-memory base register (None in asm.js mode).
    pub membase: Option<Reg>,
    /// Codegen maturity.
    pub tier: Tier,
    /// asm.js mode: coercion ops, heap masking, i64 pair overhead.
    pub asmjs: bool,
    /// Emit per-function stack-overflow checks.
    pub stack_check: bool,
    /// Emit indirect-call bounds and signature checks.
    pub indirect_checks: bool,
    /// Chrome's extra loop-entry jumps (jump over the reload block).
    pub loop_entry_jump: bool,
    /// Heap-protection strategy (the sandboxing-cost ablation axis).
    pub sandbox: SandboxModel,
}

impl EngineProfile {
    /// Chrome 74-era configuration.
    pub fn chrome() -> EngineProfile {
        EngineProfile {
            name: "chrome".into(),
            alloc: AllocProfile::chrome(),
            membase: Some(Reg::Rbx),
            tier: Tier::Y2019,
            asmjs: false,
            stack_check: true,
            indirect_checks: true,
            loop_entry_jump: true,
            sandbox: SandboxModel::Guard,
        }
    }

    /// Firefox 66-era configuration.
    pub fn firefox() -> EngineProfile {
        EngineProfile {
            name: "firefox".into(),
            alloc: AllocProfile::firefox(),
            membase: Some(Reg::R15),
            tier: Tier::Y2019,
            asmjs: false,
            stack_check: true,
            indirect_checks: true,
            loop_entry_jump: false,
            sandbox: SandboxModel::Guard,
        }
    }

    /// Chrome running asm.js instead of wasm.
    pub fn chrome_asmjs() -> EngineProfile {
        EngineProfile {
            name: "chrome-asmjs".into(),
            membase: None,
            asmjs: true,
            ..EngineProfile::chrome()
        }
    }

    /// Firefox running asm.js instead of wasm.
    pub fn firefox_asmjs() -> EngineProfile {
        EngineProfile {
            name: "firefox-asmjs".into(),
            membase: None,
            asmjs: true,
            ..EngineProfile::firefox()
        }
    }

    /// This profile at an earlier tier (for the Figure 1 vintages).
    pub fn at_tier(mut self, tier: Tier) -> EngineProfile {
        self.tier = tier;
        self.name = format!("{}-{:?}", self.name, tier).to_lowercase();
        self
    }

    /// This profile under a different heap-protection strategy; the name
    /// gains a `+bounds` / `+pku` suffix ([`SandboxModel::Guard`] is the
    /// unsuffixed baseline every engine already uses).
    ///
    /// # Panics
    ///
    /// Panics on asm.js profiles: their heap masking is part of the
    /// asm.js contract, not an ablatable strategy.
    pub fn with_sandbox(mut self, sandbox: SandboxModel) -> EngineProfile {
        assert!(
            !self.asmjs,
            "sandbox ablations apply to wasm profiles, not asm.js"
        );
        self.sandbox = sandbox;
        match sandbox {
            SandboxModel::Guard => {}
            SandboxModel::Bounds => self.name = format!("{}+bounds", self.name),
            SandboxModel::Pku { .. } => self.name = format!("{}+pku", self.name),
        }
        self
    }
}

/// A compiled JIT module plus its runtime-layout constants.
#[derive(Debug, Clone)]
pub struct JitOutput {
    /// Executable module (entry = exported `main` if present).
    pub module: Module,
    /// Address of the (sig, code) indirect-call table.
    pub table_addr: u64,
    /// Address of the stack-limit word.
    pub stack_limit_addr: u64,
    /// Per-function wasm instruction texts, indexed by the source tags the
    /// backend stamps on emitted machine instructions
    /// (`module.funcs[f].inst_tags[i]` indexes `func_texts[f]`).
    pub func_texts: Vec<Vec<String>>,
}

/// A value on the abstract operand stack.
///
/// `Reg` distinguishes clobberable temporaries from aliases of a local's
/// register (Liftoff-style register reuse): a temp may be consumed in
/// place by a two-address operation, an alias must be copied first, and a
/// `local.set` materializes any live aliases of that local.
#[derive(Debug, Clone, Copy)]
enum SV {
    /// A value in a vreg; `bool` marks a clobberable temporary.
    Reg(u32, ValType, bool),
    /// A compile-time constant.
    Const(ValType, u64),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FrameKind {
    Block,
    Loop,
    If,
}

struct Frame {
    kind: FrameKind,
    /// Branch target for `br` (loop: header; block/if: end).
    br_target: BlockId,
    /// End block (join).
    end_block: BlockId,
    /// Result vreg (block/if with result).
    result: Option<(u32, ValType)>,
    /// Operand-stack height at entry.
    height: usize,
}

fn vclass(t: ValType) -> VClass {
    match t {
        ValType::F32 | ValType::F64 => VClass::Float,
        _ => VClass::Int,
    }
}

fn vw(t: ValType) -> Width {
    match t {
        ValType::I32 | ValType::F32 => Width::W32,
        _ => Width::W64,
    }
}

fn fprec(t: ValType) -> FPrec {
    match t {
        ValType::F32 => FPrec::F32,
        _ => FPrec::F64,
    }
}

fn irel_cc(op: IRelop) -> Cc {
    match op {
        IRelop::Eq => Cc::E,
        IRelop::Ne => Cc::Ne,
        IRelop::LtS => Cc::L,
        IRelop::LtU => Cc::B,
        IRelop::GtS => Cc::G,
        IRelop::GtU => Cc::A,
        IRelop::LeS => Cc::Le,
        IRelop::LeU => Cc::Be,
        IRelop::GeS => Cc::Ge,
        IRelop::GeU => Cc::Ae,
    }
}

/// How to repair a `ucomis`-based equality test for unordered inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParityFix {
    /// `==`: ZF is also set for unordered, so AND with !PF.
    AndNotParity,
    /// `!=`: NaN != NaN must be true, so OR with PF.
    OrParity,
}

/// Condition for a float comparison via `ucomis`: the condition code,
/// whether the operands must be swapped, and an optional parity fixup.
///
/// `ucomis` sets ZF=PF=CF=1 for unordered operands, so the naive
/// below/below-equal codes would come out true when a NaN is involved.
/// Lt/Le therefore compare with swapped operands and test
/// above/above-equal (false on unordered — the wasm semantics), the way
/// real engine backends do, and Eq/Ne carry an explicit parity fixup.
fn frel_cc(op: FRelop) -> (Cc, bool, Option<ParityFix>) {
    match op {
        FRelop::Eq => (Cc::E, false, Some(ParityFix::AndNotParity)),
        FRelop::Ne => (Cc::Ne, false, Some(ParityFix::OrParity)),
        FRelop::Lt => (Cc::A, true, None),
        FRelop::Gt => (Cc::A, false, None),
        FRelop::Le => (Cc::Ae, true, None),
        FRelop::Ge => (Cc::Ae, false, None),
    }
}

struct JitFn<'m, 'p> {
    wasm: &'m WasmModule,
    profile: &'p EngineProfile,
    lf: LFunc,
    cur: usize,
    stack: Vec<SV>,
    ctrl: Vec<Frame>,
    n_imports: u32,
    table_addr: u64,
    table_len: u32,
    heap_mask: i64,
    /// Declared linear-memory size in bytes (the bounds-check limit).
    mem_bytes: u64,
    dead: bool,
    /// Value type of each local (params first).
    local_tys: Vec<ValType>,
    /// The function's result type.
    ret_ty: Option<ValType>,
    /// Source tag stamped on emitted instructions: the pre-order index of
    /// the wasm instruction being compiled (`NO_TAG` in prologue code).
    src: u32,
    /// Text of each tagged wasm instruction, indexed by tag.
    texts: Vec<String>,
}

type JResult<T> = Result<T, String>;

impl<'m, 'p> JitFn<'m, 'p> {
    fn emit(&mut self, inst: LInst) {
        if self.lf.src_tags.len() <= self.cur {
            self.lf.src_tags.resize(self.cur + 1, Vec::new());
        }
        self.lf.src_tags[self.cur].push(self.src);
        self.lf.blocks[self.cur].insts.push(inst);
    }

    fn reserve_block(&mut self) -> BlockId {
        self.lf.blocks.push(LBlock::default());
        BlockId((self.lf.blocks.len() - 1) as u32)
    }

    fn place_block(&mut self, id: BlockId) {
        self.cur = id.0 as usize;
    }

    fn vreg(&mut self, t: ValType) -> u32 {
        self.lf.new_vreg(vclass(t))
    }

    fn push(&mut self, sv: SV) {
        self.stack.push(sv);
    }

    fn pop(&mut self) -> SV {
        self.stack.pop().expect("operand stack (validated)")
    }

    /// Pops an integer value as an operand (immediates allowed at
    /// Y2018+).
    fn pop_int_opnd(&mut self) -> (Opnd, ValType) {
        let sv = self.pop();
        match sv {
            SV::Const(t, bits) if self.profile.tier >= Tier::Y2018 => {
                let v = match t {
                    ValType::I32 => bits as u32 as i32 as i64,
                    _ => bits as i64,
                };
                (Opnd::Imm(v), t)
            }
            _ => {
                let (r, t) = self.materialize(sv);
                (Opnd::Loc(Loc::V(r)), t)
            }
        }
    }

    /// Ensures a stack value lives in a vreg (readable; may alias a local).
    fn materialize(&mut self, sv: SV) -> (u32, ValType) {
        match sv {
            SV::Reg(r, t, _) => (r, t),
            SV::Const(t, bits) => {
                let r = self.vreg(t);
                match t {
                    ValType::F32 | ValType::F64 => self.emit(LInst::MovFImm {
                        dst: FLoc::V(r),
                        bits,
                        prec: fprec(t),
                    }),
                    _ => self.emit(LInst::Mov {
                        dst: Loc::V(r),
                        src: Opnd::Imm(match t {
                            ValType::I32 => bits as u32 as i32 as i64,
                            _ => bits as i64,
                        }),
                        width: vw(t),
                    }),
                }
                (r, t)
            }
        }
    }

    fn pop_reg(&mut self) -> (u32, ValType) {
        let sv = self.pop();
        self.materialize(sv)
    }

    /// Pops a value into a vreg the caller may clobber: temporaries are
    /// returned in place, aliases and constants are copied into a fresh
    /// register first.
    fn pop_temp(&mut self) -> (u32, ValType) {
        let sv = self.pop();
        match sv {
            SV::Reg(r, t, true) => (r, t),
            SV::Reg(r, t, false) => {
                let fresh = self.vreg(t);
                self.move_into(fresh, t, r);
                (fresh, t)
            }
            SV::Const(..) => self.materialize(sv),
        }
    }

    /// Copies any stack aliases of local `i` into temporaries before the
    /// local is overwritten (Liftoff's materialize-on-set rule).
    fn flush_local_aliases(&mut self, i: u32) {
        for k in 0..self.stack.len() {
            if let SV::Reg(r, t, false) = self.stack[k] {
                if r == i {
                    let fresh = self.vreg(t);
                    self.move_into(fresh, t, r);
                    self.stack[k] = SV::Reg(fresh, t, true);
                }
            }
        }
    }

    /// The asm.js `|0` coercion after integer results and the i64-pair
    /// overhead.
    fn asmjs_int_coercion(&mut self, r: u32, t: ValType) {
        if !self.profile.asmjs {
            return;
        }
        self.emit(LInst::Alu {
            op: AluOp::Or,
            dst: Loc::V(r),
            src: Opnd::Imm(0),
            width: vw(t),
        });
        if t == ValType::I64 {
            // asm.js has no i64: model the pair lowering with an extra
            // coercion on the high half.
            self.emit(LInst::Alu {
                op: AluOp::Or,
                dst: Loc::V(r),
                src: Opnd::Imm(0),
                width: Width::W64,
            });
        }
    }

    /// The asm.js `+x` coercion: a move through a fresh register.
    fn asmjs_float_coercion(&mut self, r: u32, t: ValType) -> u32 {
        if !self.profile.asmjs {
            return r;
        }
        let t2 = self.vreg(t);
        self.emit(LInst::MovF {
            dst: FOpnd::Loc(FLoc::V(t2)),
            src: FOpnd::Loc(FLoc::V(r)),
            prec: fprec(t),
        });
        t2
    }

    /// Emits the explicit bounds check of the [`SandboxModel::Bounds`]
    /// ablation: trap iff `checked + width > mem_bytes`, i.e. a compare
    /// against the precomputed constant `mem_bytes - width - extra_disp`
    /// and a branch to an out-of-line trap stub — the same shape real
    /// explicit-check engines emit. `extra_disp` is the displacement the
    /// memory operand folds in on top of `checked` (0 when the full
    /// address is already materialised). A statically-out-of-bounds
    /// access compiles to an unconditional trap.
    fn emit_bounds_check(&mut self, checked: u32, extra_disp: i64, width: Width) {
        let limit = self.mem_bytes as i64 - width.bytes() as i64 - extra_disp;
        if limit < 0 {
            self.emit(LInst::Trap {
                kind: TrapKind::MemoryOutOfBounds,
            });
            return;
        }
        // The checked vreg is a zero-extended u32, so a 64-bit unsigned
        // compare sees the exact wasm index.
        self.emit(LInst::Cmp {
            lhs: Opnd::Loc(Loc::V(checked)),
            rhs: Opnd::Imm(limit),
            width: Width::W64,
        });
        self.emit(LInst::TrapIf {
            cc: Cc::A,
            kind: TrapKind::MemoryOutOfBounds,
        });
    }

    /// Builds the memory operand for a linear-memory access of `width`
    /// bytes whose dynamic address is on the stack.
    fn mem_operand(&mut self, memarg: &MemArg, width: Width) -> LMem {
        let (addr, _) = self.pop_reg();
        if self.profile.asmjs {
            // Masked heap access: and addr, mask; [addr + disp].
            let t = self.vreg(ValType::I32);
            self.emit(LInst::Mov {
                dst: Loc::V(t),
                src: Opnd::Loc(Loc::V(addr)),
                width: Width::W32,
            });
            self.emit(LInst::Alu {
                op: AluOp::And,
                dst: Loc::V(t),
                src: Opnd::Imm(self.heap_mask),
                width: Width::W32,
            });
            return LMem {
                base: Some(Loc::V(t)),
                index: None,
                disp: memarg.offset as i64,
            };
        }
        let membase = self.profile.membase.expect("wasm mode has a membase");
        if self.profile.tier >= Tier::Y2018 {
            if self.profile.sandbox == SandboxModel::Bounds {
                // The folded displacement rides on the checked index, so
                // it is subtracted from the limit instead.
                self.emit_bounds_check(addr, memarg.offset as i64, width);
            }
            // [membase + addr*1 + disp].
            LMem {
                base: Some(Loc::P(membase)),
                index: Some((Loc::V(addr), 1)),
                disp: memarg.offset as i64,
            }
        } else {
            // 2017-era: explicit offset addition first.
            let t = self.vreg(ValType::I32);
            self.emit(LInst::Mov {
                dst: Loc::V(t),
                src: Opnd::Loc(Loc::V(addr)),
                width: Width::W32,
            });
            if memarg.offset != 0 {
                self.emit(LInst::Alu {
                    op: AluOp::Add,
                    dst: Loc::V(t),
                    src: Opnd::Imm(memarg.offset as i64),
                    width: Width::W32,
                });
            }
            if self.profile.sandbox == SandboxModel::Bounds {
                self.emit_bounds_check(t, 0, width);
            }
            LMem {
                base: Some(Loc::P(membase)),
                index: Some((Loc::V(t), 1)),
                disp: 0,
            }
        }
    }

    /// Emits the value moves + jump for a branch to relative depth `d`.
    fn emit_branch(&mut self, d: u32) {
        let fi = self.ctrl.len() - 1 - d as usize;
        // A branch to a loop header carries no values; to a block end it
        // carries the result.
        let (target, result) = {
            let f = &self.ctrl[fi];
            (
                f.br_target,
                if f.kind == FrameKind::Loop {
                    None
                } else {
                    f.result
                },
            )
        };
        if let Some((rv, rt)) = result {
            let (top, _) = self.pop_reg();
            self.push(SV::Reg(top, rt, true)); // Keep stack shape for fallthrough.
            match vclass(rt) {
                VClass::Float => self.emit(LInst::MovF {
                    dst: FOpnd::Loc(FLoc::V(rv)),
                    src: FOpnd::Loc(FLoc::V(top)),
                    prec: fprec(rt),
                }),
                VClass::Int => self.emit(LInst::Mov {
                    dst: Loc::V(rv),
                    src: Opnd::Loc(Loc::V(top)),
                    width: Width::W64,
                }),
            }
        }
        self.emit(LInst::Jmp { target });
    }

    fn compile_body(&mut self, body: &[Instr]) -> JResult<()> {
        let mut i = 0;
        while i < body.len() {
            if self.dead {
                // Skip the unreachable remainder of this structured body.
                break;
            }
            // The next tag is assigned before any emission so that fused
            // windows stamp their instructions with the window's first
            // wasm instruction; texts are pushed once the window size is
            // known.
            self.src = self.texts.len() as u32;
            // Y2019 compare/branch fusion: `relop [eqz] br_if` compiles
            // to one compare and one conditional jump.
            if self.profile.tier >= Tier::Y2019 && i + 1 < body.len() {
                // Optional eqz between the compare and the branch (the
                // producer's canonical while-loop exit shape).
                let (negate, skip) =
                    if i + 2 < body.len() && matches!(body[i + 1], Instr::ITestop(NumWidth::X32)) {
                        (true, 2)
                    } else {
                        (false, 1)
                    };
                let fused = match (&body[i], &body[i + skip]) {
                    (Instr::IRelop(w, op), Instr::BrIf(d)) => {
                        let (rhs, _) = self.pop_int_opnd();
                        let (lhs, _) = self.pop_int_opnd();
                        let lhs = self.force_loc(lhs, int_ty(*w));
                        self.emit(LInst::Cmp {
                            lhs,
                            rhs,
                            width: nw_width(*w),
                        });
                        let cc = if negate {
                            irel_cc(*op).negate()
                        } else {
                            irel_cc(*op)
                        };
                        self.fused_br_if(cc, *d);
                        true
                    }
                    (Instr::FRelop(w, op), Instr::BrIf(d))
                        if !matches!(op, FRelop::Eq | FRelop::Ne) =>
                    {
                        // Only the ordered comparisons fuse; Eq/Ne need
                        // a parity fixup and take the generic path.
                        let (rhs, _) = self.pop_reg();
                        let (lhs, _) = self.pop_reg();
                        let (cc, swap, _) = frel_cc(*op);
                        let (a, b) = if swap { (rhs, lhs) } else { (lhs, rhs) };
                        self.emit(LInst::Ucomis {
                            lhs: FLoc::V(a),
                            rhs: FOpnd::Loc(FLoc::V(b)),
                            prec: nw_prec(*w),
                        });
                        let cc = if negate { cc.negate() } else { cc };
                        self.fused_br_if(cc, *d);
                        true
                    }
                    (Instr::ITestop(w), Instr::BrIf(d)) if !negate => {
                        let (v, _) = self.pop_reg();
                        self.emit(LInst::Cmp {
                            lhs: Opnd::Loc(Loc::V(v)),
                            rhs: Opnd::Imm(0),
                            width: nw_width(*w),
                        });
                        self.fused_br_if(Cc::E, *d);
                        true
                    }
                    _ => false,
                };
                if fused {
                    for instr in &body[i..=i + skip] {
                        self.texts.push(wat::instr_head(instr));
                    }
                    i += skip + 1;
                    continue;
                }
            }
            self.texts.push(wat::instr_head(&body[i]));
            self.compile_instr(&body[i])?;
            i += 1;
        }
        Ok(())
    }

    fn force_loc(&mut self, o: Opnd, t: ValType) -> Opnd {
        match o {
            Opnd::Imm(v) => {
                let r = self.vreg(t);
                self.emit(LInst::Mov {
                    dst: Loc::V(r),
                    src: Opnd::Imm(v),
                    width: vw(t),
                });
                Opnd::Loc(Loc::V(r))
            }
            other => other,
        }
    }

    /// Conditional branch on already-set flags (fused compare).
    fn fused_br_if(&mut self, cc: Cc, d: u32) {
        let fi = self.ctrl.len() - 1 - d as usize;
        let needs_values = self.ctrl[fi].kind != FrameKind::Loop && self.ctrl[fi].result.is_some();
        if needs_values {
            // Can't fuse cleanly when the branch carries a value: fall
            // back to a skip-block.
            let skip = self.reserve_block();
            let taken = self.reserve_block();
            self.emit(LInst::Jcc { cc, target: taken });
            self.emit(LInst::Jmp { target: skip });
            self.place_block(taken);
            self.emit_branch(d);
            self.place_block(skip);
        } else {
            let target = self.ctrl[fi].br_target;
            self.emit(LInst::Jcc { cc, target });
        }
    }

    fn compile_instr(&mut self, instr: &Instr) -> JResult<()> {
        match instr {
            Instr::Unreachable => {
                self.emit(LInst::Trap {
                    kind: TrapKind::Unreachable,
                });
                self.dead = true;
            }
            Instr::Nop => {}
            Instr::Block(bt, inner) => {
                let end = self.reserve_block();
                let result = bt.result().map(|t| (self.vreg(t), t));
                self.ctrl.push(Frame {
                    kind: FrameKind::Block,
                    br_target: end,
                    end_block: end,
                    result,
                    height: self.stack.len(),
                });
                self.compile_body(inner)?;
                self.finish_frame()?;
            }
            Instr::Loop(bt, inner) => {
                let head = self.reserve_block();
                let end = self.reserve_block();
                let br_target = if self.profile.loop_entry_jump {
                    // Chrome's pattern (Figure 7c): the function entry path
                    // takes two jumps through an out-of-line prologue block
                    // before reaching the loop body at `entry2`; back edges
                    // target the body directly.
                    let entry2 = self.reserve_block();
                    self.emit(LInst::Jmp { target: head });
                    self.place_block(head);
                    self.emit(LInst::Jmp { target: entry2 });
                    self.place_block(entry2);
                    entry2
                } else {
                    self.emit(LInst::Jmp { target: head });
                    self.place_block(head);
                    head
                };
                let result = bt.result().map(|t| (self.vreg(t), t));
                self.ctrl.push(Frame {
                    kind: FrameKind::Loop,
                    br_target,
                    end_block: end,
                    result,
                    height: self.stack.len(),
                });
                self.compile_body(inner)?;
                // Loop results stay on the stack at normal exit.
                let f = self.ctrl.pop().expect("frame");
                if !self.dead {
                    self.emit(LInst::Jmp {
                        target: f.end_block,
                    });
                }
                self.dead = false;
                let preserved: Vec<SV> = if f.result.is_some() {
                    self.stack.drain(f.height..).collect()
                } else {
                    self.stack.truncate(f.height);
                    Vec::new()
                };
                self.stack.extend(preserved);
                self.place_block(f.end_block);
            }
            Instr::If(bt, then_b, else_b) => {
                let (c, _) = self.pop_reg();
                let end = self.reserve_block();
                let else_blk = self.reserve_block();
                self.emit(LInst::Test {
                    lhs: Opnd::Loc(Loc::V(c)),
                    rhs: Opnd::Loc(Loc::V(c)),
                    width: Width::W32,
                });
                self.emit(LInst::Jcc {
                    cc: Cc::E,
                    target: else_blk,
                });
                let result = bt.result().map(|t| (self.vreg(t), t));
                let height = self.stack.len();
                self.ctrl.push(Frame {
                    kind: FrameKind::If,
                    br_target: end,
                    end_block: end,
                    result,
                    height,
                });
                self.compile_body(then_b)?;
                // Close the then-arm: move result, jump to end.
                if !self.dead {
                    if let Some((rv, rt)) = result {
                        let (top, _) = self.pop_reg();
                        self.move_into(rv, rt, top);
                    }
                    self.emit(LInst::Jmp { target: end });
                }
                self.dead = false;
                self.stack.truncate(height);
                self.place_block(else_blk);
                self.compile_body(else_b)?;
                let f = self.ctrl.pop().expect("frame");
                if !self.dead {
                    if let Some((rv, rt)) = f.result {
                        let (top, _) = self.pop_reg();
                        self.move_into(rv, rt, top);
                    }
                    self.emit(LInst::Jmp { target: end });
                }
                self.dead = false;
                self.stack.truncate(f.height);
                if let Some((rv, rt)) = f.result {
                    self.push(SV::Reg(rv, rt, true));
                }
                self.place_block(end);
            }
            Instr::Br(d) => {
                self.emit_branch(*d);
                self.dead = true;
            }
            Instr::BrIf(d) => {
                let (c, _) = self.pop_reg();
                self.emit(LInst::Test {
                    lhs: Opnd::Loc(Loc::V(c)),
                    rhs: Opnd::Loc(Loc::V(c)),
                    width: Width::W32,
                });
                self.fused_br_if(Cc::Ne, *d);
            }
            Instr::BrTable(targets, default) => {
                let (idx, _) = self.pop_reg();
                for (k, d) in targets.iter().enumerate() {
                    let next = self.reserve_block();
                    let case_blk = self.reserve_block();
                    self.emit(LInst::Cmp {
                        lhs: Opnd::Loc(Loc::V(idx)),
                        rhs: Opnd::Imm(k as i64),
                        width: Width::W32,
                    });
                    self.emit(LInst::Jcc {
                        cc: Cc::E,
                        target: case_blk,
                    });
                    self.emit(LInst::Jmp { target: next });
                    self.place_block(case_blk);
                    self.emit_branch(*d);
                    self.place_block(next);
                }
                self.emit_branch(*default);
                self.dead = true;
            }
            Instr::Return => {
                let fty = self.current_ret();
                let value = fty.map(|t| {
                    let (r, _) = self.pop_reg();
                    match vclass(t) {
                        VClass::Float => Arg::Float(FOpnd::Loc(FLoc::V(r))),
                        VClass::Int => Arg::Int(Opnd::Loc(Loc::V(r))),
                    }
                });
                self.emit(LInst::Ret { value });
                self.dead = true;
            }
            Instr::Call(f) => {
                let ft = self.wasm.func_type(*f).expect("validated").clone();
                let mut args = Vec::with_capacity(ft.params.len());
                for p in ft.params.iter().rev() {
                    let (r, _) = self.pop_reg();
                    args.push(match vclass(*p) {
                        VClass::Float => Arg::Float(FOpnd::Loc(FLoc::V(r))),
                        VClass::Int => Arg::Int(Opnd::Loc(Loc::V(r))),
                    });
                }
                args.reverse();
                let ret = ft.result().map(|t| {
                    let r = self.vreg(t);
                    self.push(SV::Reg(r, t, true));
                    match vclass(t) {
                        VClass::Float => RetVal::Float(FLoc::V(r)),
                        VClass::Int => RetVal::Int(Loc::V(r)),
                    }
                });
                if *f < self.n_imports {
                    // env.syscall import.
                    let int_args: Vec<Opnd> = args
                        .iter()
                        .map(|a| match a {
                            Arg::Int(o) => *o,
                            Arg::Float(_) => unreachable!("syscall args are i32"),
                        })
                        .collect();
                    let ret_loc = match ret {
                        Some(RetVal::Int(l)) => Some(l),
                        None => None,
                        _ => unreachable!(),
                    };
                    self.emit(LInst::CallHost {
                        id: 0,
                        args: int_args,
                        ret: ret_loc,
                    });
                } else {
                    self.emit(LInst::Call {
                        func: f - self.n_imports,
                        args,
                        ret,
                    });
                }
            }
            Instr::CallIndirect(type_idx) => {
                let (idx, _) = self.pop_reg();
                let ft = self.wasm.types[*type_idx as usize].clone();
                // §6.2.3 checks: bounds, then signature.
                let target = self.vreg(ValType::I64);
                if self.profile.indirect_checks {
                    self.emit(LInst::Cmp {
                        lhs: Opnd::Loc(Loc::V(idx)),
                        rhs: Opnd::Imm(self.table_len as i64),
                        width: Width::W32,
                    });
                    self.emit(LInst::TrapIf {
                        cc: Cc::Ae,
                        kind: TrapKind::IndirectCallOutOfBounds,
                    });
                }
                // t = idx << 4 (16-byte entries).
                let t = self.vreg(ValType::I32);
                self.emit(LInst::Mov {
                    dst: Loc::V(t),
                    src: Opnd::Loc(Loc::V(idx)),
                    width: Width::W32,
                });
                self.emit(LInst::Shift {
                    op: AluOp::Shl,
                    dst: Loc::V(t),
                    count: Opnd::Imm(4),
                    width: Width::W32,
                });
                if self.profile.indirect_checks {
                    let sig = self.vreg(ValType::I64);
                    self.emit(LInst::Mov {
                        dst: Loc::V(sig),
                        src: Opnd::Mem(LMem {
                            base: None,
                            index: Some((Loc::V(t), 1)),
                            disp: self.table_addr as i64,
                        }),
                        width: Width::W64,
                    });
                    self.emit(LInst::Cmp {
                        lhs: Opnd::Loc(Loc::V(sig)),
                        rhs: Opnd::Imm(*type_idx as i64),
                        width: Width::W64,
                    });
                    self.emit(LInst::TrapIf {
                        cc: Cc::Ne,
                        kind: TrapKind::IndirectCallTypeMismatch,
                    });
                }
                self.emit(LInst::Mov {
                    dst: Loc::V(target),
                    src: Opnd::Mem(LMem {
                        base: None,
                        index: Some((Loc::V(t), 1)),
                        disp: self.table_addr as i64 + 8,
                    }),
                    width: Width::W64,
                });
                let mut args = Vec::with_capacity(ft.params.len());
                for p in ft.params.iter().rev() {
                    let (r, _) = self.pop_reg();
                    args.push(match vclass(*p) {
                        VClass::Float => Arg::Float(FOpnd::Loc(FLoc::V(r))),
                        VClass::Int => Arg::Int(Opnd::Loc(Loc::V(r))),
                    });
                }
                args.reverse();
                let ret = ft.result().map(|t2| {
                    let r = self.vreg(t2);
                    self.push(SV::Reg(r, t2, true));
                    match vclass(t2) {
                        VClass::Float => RetVal::Float(FLoc::V(r)),
                        VClass::Int => RetVal::Int(Loc::V(r)),
                    }
                });
                self.emit(LInst::CallIndirect {
                    target: Opnd::Loc(Loc::V(target)),
                    args,
                    ret,
                });
            }
            Instr::Drop => {
                self.pop();
            }
            Instr::Select => {
                let (c, _) = self.pop_reg();
                let (b, tb) = self.pop_reg();
                let (a, ta) = self.pop_reg();
                let r = self.vreg(ta);
                let take_b = self.reserve_block();
                let join = self.reserve_block();
                self.move_into(r, ta, a);
                self.emit(LInst::Test {
                    lhs: Opnd::Loc(Loc::V(c)),
                    rhs: Opnd::Loc(Loc::V(c)),
                    width: Width::W32,
                });
                self.emit(LInst::Jcc {
                    cc: Cc::E,
                    target: take_b,
                });
                self.emit(LInst::Jmp { target: join });
                self.place_block(take_b);
                self.move_into(r, tb, b);
                self.emit(LInst::Jmp { target: join });
                self.place_block(join);
                self.push(SV::Reg(r, ta, true));
            }
            Instr::LocalGet(i) => {
                let t = self.local_ty(*i);
                if self.profile.tier >= Tier::Y2018 {
                    // Liftoff-style aliasing: no copy until a local.set
                    // or a clobbering consumer forces one.
                    self.push(SV::Reg(*i, t, false));
                } else {
                    let r = self.vreg(t);
                    self.move_into(r, t, *i);
                    self.push(SV::Reg(r, t, true));
                }
            }
            Instr::LocalSet(i) => {
                self.flush_local_aliases(*i);
                let (v, _) = self.pop_reg();
                let t = self.local_ty(*i);
                self.move_into(*i, t, v);
            }
            Instr::LocalTee(i) => {
                self.flush_local_aliases(*i);
                let (v, t) = self.pop_reg();
                let lt = self.local_ty(*i);
                self.move_into(*i, lt, v);
                self.push(SV::Reg(v, t, v != *i));
            }
            Instr::GlobalGet(_) | Instr::GlobalSet(_) => {
                return Err("wasm globals are not used by the emcc pipeline".into());
            }
            Instr::Load { ty, sub, memarg } => {
                let width = match (vclass(*ty), sub) {
                    (VClass::Float, _) => fprec_width(fprec(*ty)),
                    (VClass::Int, None) => vw(*ty),
                    (VClass::Int, Some((sw, _))) => sub_width(*sw),
                };
                let mem = self.mem_operand(memarg, width);
                let r = self.vreg(*ty);
                match (vclass(*ty), sub) {
                    (VClass::Float, _) => self.emit(LInst::MovF {
                        dst: FOpnd::Loc(FLoc::V(r)),
                        src: FOpnd::Mem(mem),
                        prec: fprec(*ty),
                    }),
                    (VClass::Int, None) => self.emit(LInst::Mov {
                        dst: Loc::V(r),
                        src: Opnd::Mem(mem),
                        width: vw(*ty),
                    }),
                    (VClass::Int, Some((sw, signed))) => {
                        let from = sub_width(*sw);
                        if *signed {
                            self.emit(LInst::Movsx {
                                dst: Loc::V(r),
                                src: Opnd::Mem(mem),
                                from,
                                to: vw(*ty),
                            });
                        } else {
                            self.emit(LInst::Movzx {
                                dst: Loc::V(r),
                                src: Opnd::Mem(mem),
                                from,
                            });
                        }
                    }
                }
                self.push(SV::Reg(r, *ty, true));
            }
            Instr::Store { ty, sub, memarg } => {
                let (v, _) = self.pop_reg();
                let width = match (vclass(*ty), sub) {
                    (VClass::Float, _) => fprec_width(fprec(*ty)),
                    (VClass::Int, None) => vw(*ty),
                    (VClass::Int, Some(sw)) => sub_width(*sw),
                };
                let mem = self.mem_operand(memarg, width);
                match vclass(*ty) {
                    VClass::Float => self.emit(LInst::MovF {
                        dst: FOpnd::Mem(mem),
                        src: FOpnd::Loc(FLoc::V(v)),
                        prec: fprec(*ty),
                    }),
                    VClass::Int => {
                        let width = match sub {
                            None => vw(*ty),
                            Some(sw) => sub_width(*sw),
                        };
                        self.emit(LInst::Store {
                            mem,
                            src: Opnd::Loc(Loc::V(v)),
                            width,
                        });
                    }
                }
            }
            Instr::MemorySize => {
                let pages = self.wasm.memory.map(|l| l.min).unwrap_or(0);
                let r = self.vreg(ValType::I32);
                self.emit(LInst::Mov {
                    dst: Loc::V(r),
                    src: Opnd::Imm(pages as i64),
                    width: Width::W32,
                });
                self.push(SV::Reg(r, ValType::I32, true));
            }
            Instr::MemoryGrow => {
                // Static memories in this pipeline: growth always fails.
                self.pop();
                let r = self.vreg(ValType::I32);
                self.emit(LInst::Mov {
                    dst: Loc::V(r),
                    src: Opnd::Imm(-1),
                    width: Width::W32,
                });
                self.push(SV::Reg(r, ValType::I32, true));
            }
            Instr::I32Const(v) => self.push_const(ValType::I32, *v as u32 as u64),
            Instr::I64Const(v) => self.push_const(ValType::I64, *v as u64),
            Instr::F32Const(b) => self.push_const(ValType::F32, *b as u64),
            Instr::F64Const(b) => self.push_const(ValType::F64, *b),
            Instr::ITestop(w) => {
                let (v, _) = self.pop_reg();
                let r = self.vreg(ValType::I32);
                self.emit(LInst::Cmp {
                    lhs: Opnd::Loc(Loc::V(v)),
                    rhs: Opnd::Imm(0),
                    width: nw_width(*w),
                });
                self.emit(LInst::Setcc {
                    cc: Cc::E,
                    dst: Loc::V(r),
                });
                self.push(SV::Reg(r, ValType::I32, true));
            }
            Instr::IRelop(w, op) => {
                let (rhs, _) = self.pop_int_opnd();
                let (lhs, _) = self.pop_int_opnd();
                let lhs = self.force_loc(lhs, int_ty(*w));
                let r = self.vreg(ValType::I32);
                self.emit(LInst::Cmp {
                    lhs,
                    rhs,
                    width: nw_width(*w),
                });
                self.emit(LInst::Setcc {
                    cc: irel_cc(*op),
                    dst: Loc::V(r),
                });
                self.push(SV::Reg(r, ValType::I32, true));
            }
            Instr::FRelop(w, op) => {
                let (rhs, _) = self.pop_reg();
                let (lhs, _) = self.pop_reg();
                let r = self.vreg(ValType::I32);
                let (cc, swap, fix) = frel_cc(*op);
                let (a, b) = if swap { (rhs, lhs) } else { (lhs, rhs) };
                self.emit(LInst::Ucomis {
                    lhs: FLoc::V(a),
                    rhs: FOpnd::Loc(FLoc::V(b)),
                    prec: nw_prec(*w),
                });
                self.emit(LInst::Setcc { cc, dst: Loc::V(r) });
                if let Some(fix) = fix {
                    let p = self.vreg(ValType::I32);
                    let (pcc, op) = match fix {
                        ParityFix::AndNotParity => (Cc::Np, AluOp::And),
                        ParityFix::OrParity => (Cc::P, AluOp::Or),
                    };
                    self.emit(LInst::Setcc {
                        cc: pcc,
                        dst: Loc::V(p),
                    });
                    self.emit(LInst::Alu {
                        op,
                        dst: Loc::V(r),
                        src: Opnd::Loc(Loc::V(p)),
                        width: Width::W32,
                    });
                }
                self.push(SV::Reg(r, ValType::I32, true));
            }
            Instr::IUnop(w, op) => {
                let (v, t) = self.pop_reg();
                let r = self.vreg(t);
                let kind = match op {
                    IUnop::Clz => LInst::Lzcnt {
                        dst: Loc::V(r),
                        src: Opnd::Loc(Loc::V(v)),
                        width: nw_width(*w),
                    },
                    IUnop::Ctz => LInst::Tzcnt {
                        dst: Loc::V(r),
                        src: Opnd::Loc(Loc::V(v)),
                        width: nw_width(*w),
                    },
                    IUnop::Popcnt => LInst::Popcnt {
                        dst: Loc::V(r),
                        src: Opnd::Loc(Loc::V(v)),
                        width: nw_width(*w),
                    },
                };
                self.emit(kind);
                self.push(SV::Reg(r, t, true));
            }
            Instr::IBinop(w, op) => {
                let ty = int_ty(*w);
                let width = nw_width(*w);
                let (rhs, _) = self.pop_int_opnd();
                let (r, _) = self.pop_temp();
                match op {
                    IBinop::Add | IBinop::Sub | IBinop::And | IBinop::Or | IBinop::Xor => {
                        let aop = match op {
                            IBinop::Add => AluOp::Add,
                            IBinop::Sub => AluOp::Sub,
                            IBinop::And => AluOp::And,
                            IBinop::Or => AluOp::Or,
                            _ => AluOp::Xor,
                        };
                        let rhs = self.maybe_force(rhs, ty);
                        self.emit(LInst::Alu {
                            op: aop,
                            dst: Loc::V(r),
                            src: rhs,
                            width,
                        });
                    }
                    IBinop::Mul => match rhs {
                        Opnd::Imm(v) if self.profile.tier >= Tier::Y2018 => {
                            self.emit(LInst::Imul3 {
                                dst: Loc::V(r),
                                src: Opnd::Loc(Loc::V(r)),
                                imm: v,
                                width,
                            });
                        }
                        _ => {
                            let rhs = self.force_loc(rhs, ty);
                            self.emit(LInst::Imul {
                                dst: Loc::V(r),
                                src: rhs,
                                width,
                            });
                        }
                    },
                    IBinop::DivS | IBinop::DivU | IBinop::RemS | IBinop::RemU => {
                        let rhs = self.force_loc(rhs, ty);
                        let Opnd::Loc(rl) = rhs else { unreachable!() };
                        // wasm defines rem_s(INT_MIN, -1) = 0 where the bare
                        // idiv faults, so engines guard the divisor with a
                        // branch-free `divisor == -1 ? 1 : divisor`
                        // (x % 1 == 0, wasm's answer) — the same fixup V8
                        // and SpiderMonkey compile. div_s keeps the fault:
                        // wasm wants the overflow trap there.
                        let rl = if matches!(op, IBinop::RemS) {
                            let safe = self.vreg(ty);
                            self.emit(LInst::Mov {
                                dst: Loc::V(safe),
                                src: Opnd::Loc(rl),
                                width,
                            });
                            let one = self.vreg(ty);
                            self.emit(LInst::Mov {
                                dst: Loc::V(one),
                                src: Opnd::Imm(1),
                                width,
                            });
                            self.emit(LInst::Cmp {
                                lhs: Opnd::Loc(Loc::V(safe)),
                                rhs: Opnd::Imm(-1),
                                width,
                            });
                            self.emit(LInst::Cmov {
                                cc: Cc::E,
                                dst: Loc::V(safe),
                                src: Opnd::Loc(Loc::V(one)),
                                width,
                            });
                            Loc::V(safe)
                        } else {
                            rl
                        };
                        self.emit(LInst::Div {
                            signed: matches!(op, IBinop::DivS | IBinop::RemS),
                            rem: matches!(op, IBinop::RemS | IBinop::RemU),
                            dst: Loc::V(r),
                            lhs: Loc::V(r),
                            rhs: rl,
                            width,
                        });
                    }
                    IBinop::Shl | IBinop::ShrS | IBinop::ShrU | IBinop::Rotl | IBinop::Rotr => {
                        let sop = match op {
                            IBinop::Shl => AluOp::Shl,
                            IBinop::ShrS => AluOp::Sar,
                            IBinop::ShrU => AluOp::Shr,
                            IBinop::Rotl => AluOp::Rol,
                            _ => AluOp::Ror,
                        };
                        self.emit(LInst::Shift {
                            op: sop,
                            dst: Loc::V(r),
                            count: rhs,
                            width,
                        });
                    }
                }
                self.asmjs_int_coercion(r, ty);
                self.push(SV::Reg(r, ty, true));
            }
            Instr::FUnop(w, op) => {
                let t = float_ty(*w);
                let (v, _) = self.pop_reg();
                let r = self.vreg(t);
                match op {
                    FUnop::Neg => {
                        let m1 = self.vreg(t);
                        self.emit(LInst::MovFImm {
                            dst: FLoc::V(m1),
                            bits: match t {
                                ValType::F32 => (-1.0f32).to_bits() as u64,
                                _ => (-1.0f64).to_bits(),
                            },
                            prec: fprec(t),
                        });
                        self.emit(LInst::MovF {
                            dst: FOpnd::Loc(FLoc::V(r)),
                            src: FOpnd::Loc(FLoc::V(v)),
                            prec: fprec(t),
                        });
                        self.emit(LInst::AluF {
                            op: wasmperf_isa::FAluOp::Mul,
                            dst: FLoc::V(r),
                            src: FOpnd::Loc(FLoc::V(m1)),
                            prec: fprec(t),
                        });
                    }
                    FUnop::Abs => self.emit(LInst::AbsF {
                        dst: FLoc::V(r),
                        src: FOpnd::Loc(FLoc::V(v)),
                        prec: fprec(t),
                    }),
                    FUnop::Sqrt => self.emit(LInst::SqrtF {
                        dst: FLoc::V(r),
                        src: FOpnd::Loc(FLoc::V(v)),
                        prec: fprec(t),
                    }),
                    FUnop::Ceil | FUnop::Floor | FUnop::Trunc | FUnop::Nearest => {
                        let mode = match op {
                            FUnop::Ceil => RoundMode::Ceil,
                            FUnop::Floor => RoundMode::Floor,
                            FUnop::Trunc => RoundMode::Trunc,
                            _ => RoundMode::Nearest,
                        };
                        self.emit(LInst::RoundF {
                            dst: FLoc::V(r),
                            src: FOpnd::Loc(FLoc::V(v)),
                            prec: fprec(t),
                            mode,
                        });
                    }
                }
                let r = self.asmjs_float_coercion(r, t);
                self.push(SV::Reg(r, t, true));
            }
            Instr::FBinop(w, op) => {
                let t = float_ty(*w);
                let (rhs, _) = self.pop_reg();
                let (r, _) = self.pop_temp();
                let fop = match op {
                    FBinop::Add => wasmperf_isa::FAluOp::Add,
                    FBinop::Sub => wasmperf_isa::FAluOp::Sub,
                    FBinop::Mul => wasmperf_isa::FAluOp::Mul,
                    FBinop::Div => wasmperf_isa::FAluOp::Div,
                    FBinop::Min => wasmperf_isa::FAluOp::Min,
                    FBinop::Max => wasmperf_isa::FAluOp::Max,
                    FBinop::Copysign => {
                        return Err("copysign is not produced by the emcc pipeline".into());
                    }
                };
                self.emit(LInst::AluF {
                    op: fop,
                    dst: FLoc::V(r),
                    src: FOpnd::Loc(FLoc::V(rhs)),
                    prec: fprec(t),
                });
                let r = self.asmjs_float_coercion(r, t);
                self.push(SV::Reg(r, t, true));
            }
            Instr::Cvt(op) => self.compile_cvt(*op)?,
        }
        Ok(())
    }

    fn push_const(&mut self, t: ValType, bits: u64) {
        if self.profile.tier >= Tier::Y2018 && !matches!(t, ValType::F32 | ValType::F64) {
            self.push(SV::Const(t, bits));
        } else {
            let sv = SV::Const(t, bits);
            let (r, _) = self.materialize(sv);
            self.push(SV::Reg(r, t, true));
        }
    }

    /// Move helper working on both classes: `dst_vreg <- src_vreg`.
    fn move_into(&mut self, dst: u32, t: ValType, src: u32) {
        if dst == src {
            return;
        }
        match vclass(t) {
            VClass::Float => self.emit(LInst::MovF {
                dst: FOpnd::Loc(FLoc::V(dst)),
                src: FOpnd::Loc(FLoc::V(src)),
                prec: fprec(t),
            }),
            VClass::Int => self.emit(LInst::Mov {
                dst: Loc::V(dst),
                src: Opnd::Loc(Loc::V(src)),
                width: Width::W64,
            }),
        }
    }

    fn maybe_force(&mut self, o: Opnd, t: ValType) -> Opnd {
        if self.profile.tier >= Tier::Y2018 {
            o
        } else {
            self.force_loc(o, t)
        }
    }

    fn local_ty(&self, i: u32) -> ValType {
        self.local_tys[i as usize]
    }

    fn current_ret(&self) -> Option<ValType> {
        self.ret_ty
    }

    fn compile_cvt(&mut self, op: CvtOp) -> JResult<()> {
        use CvtOp::*;
        let (from, to) = op.signature();
        let (v, _) = self.pop_reg();
        let r = self.vreg(to);
        match op {
            I32WrapI64 => self.emit(LInst::Mov {
                dst: Loc::V(r),
                src: Opnd::Loc(Loc::V(v)),
                width: Width::W32,
            }),
            I64ExtendI32S => self.emit(LInst::Movsx {
                dst: Loc::V(r),
                src: Opnd::Loc(Loc::V(v)),
                from: Width::W32,
                to: Width::W64,
            }),
            I64ExtendI32U => self.emit(LInst::Mov {
                dst: Loc::V(r),
                src: Opnd::Loc(Loc::V(v)),
                width: Width::W32,
            }),
            I32TruncF32S | I32TruncF64S | I64TruncF32S | I64TruncF64S => {
                self.emit(LInst::CvtFToInt {
                    dst: Loc::V(r),
                    src: FOpnd::Loc(FLoc::V(v)),
                    width: vw(to),
                    prec: fprec(from),
                    unsigned: false,
                })
            }
            I32TruncF32U | I32TruncF64U | I64TruncF32U | I64TruncF64U => {
                self.emit(LInst::CvtFToInt {
                    dst: Loc::V(r),
                    src: FOpnd::Loc(FLoc::V(v)),
                    width: vw(to),
                    prec: fprec(from),
                    unsigned: true,
                })
            }
            F32ConvertI32S | F64ConvertI32S | F32ConvertI64S | F64ConvertI64S => {
                self.emit(LInst::CvtIntToF {
                    dst: FLoc::V(r),
                    src: Opnd::Loc(Loc::V(v)),
                    width: vw(from),
                    prec: fprec(to),
                    unsigned: false,
                })
            }
            F32ConvertI32U | F64ConvertI32U | F32ConvertI64U | F64ConvertI64U => {
                self.emit(LInst::CvtIntToF {
                    dst: FLoc::V(r),
                    src: Opnd::Loc(Loc::V(v)),
                    width: vw(from),
                    prec: fprec(to),
                    unsigned: true,
                })
            }
            F32DemoteF64 => self.emit(LInst::CvtFToF {
                dst: FLoc::V(r),
                src: FOpnd::Loc(FLoc::V(v)),
                from: FPrec::F64,
            }),
            F64PromoteF32 => self.emit(LInst::CvtFToF {
                dst: FLoc::V(r),
                src: FOpnd::Loc(FLoc::V(v)),
                from: FPrec::F32,
            }),
            I32ReinterpretF32 | I64ReinterpretF64 | F32ReinterpretI32 | F64ReinterpretI64 => {
                // The emcc-lite producer never emits these; reject them as
                // a compile error instead of crashing so hand-built
                // modules get a diagnostic.
                return Err(format!(
                    "unsupported conversion in `{}`: reinterpret casts are \
                     not produced by the emcc-lite pipeline",
                    self.lf.name
                ));
            }
        }
        self.push(SV::Reg(r, to, true));
        Ok(())
    }

    /// Pops the frame for Block, moving results and rejoining control.
    fn finish_frame(&mut self) -> JResult<()> {
        let f = self.ctrl.pop().expect("frame");
        if !self.dead {
            if let Some((rv, rt)) = f.result {
                let (top, _) = self.pop_reg();
                self.move_into(rv, rt, top);
            }
            self.emit(LInst::Jmp {
                target: f.end_block,
            });
        }
        self.dead = false;
        self.stack.truncate(f.height);
        if let Some((rv, rt)) = f.result {
            self.push(SV::Reg(rv, rt, true));
        }
        self.place_block(f.end_block);
        Ok(())
    }
}

fn int_ty(w: NumWidth) -> ValType {
    match w {
        NumWidth::X32 => ValType::I32,
        NumWidth::X64 => ValType::I64,
    }
}

fn float_ty(w: NumWidth) -> ValType {
    match w {
        NumWidth::X32 => ValType::F32,
        NumWidth::X64 => ValType::F64,
    }
}

fn nw_width(w: NumWidth) -> Width {
    match w {
        NumWidth::X32 => Width::W32,
        NumWidth::X64 => Width::W64,
    }
}

fn nw_prec(w: NumWidth) -> FPrec {
    match w {
        NumWidth::X32 => FPrec::F32,
        NumWidth::X64 => FPrec::F64,
    }
}

fn sub_width(sw: SubWidth) -> Width {
    match sw {
        SubWidth::B8 => Width::W8,
        SubWidth::B16 => Width::W16,
        SubWidth::B32 => Width::W32,
    }
}

fn fprec_width(p: FPrec) -> Width {
    match p {
        FPrec::F32 => Width::W32,
        FPrec::F64 => Width::W64,
    }
}

/// Lowers each function to LIR without allocating (test/debug hook).
pub fn debug_lower(wasm: &WasmModule, profile: &EngineProfile) -> Result<Vec<LFunc>, String> {
    let out = compile_inner(wasm, profile, true)?;
    Ok(out.1)
}

/// Compiles a validated wasm module under `profile`.
pub fn compile(wasm: &WasmModule, profile: &EngineProfile) -> Result<JitOutput, String> {
    Ok(compile_inner(wasm, profile, false)?.0)
}

fn compile_inner(
    wasm: &WasmModule,
    profile: &EngineProfile,
    keep_lir: bool,
) -> Result<(JitOutput, Vec<LFunc>), String> {
    let mem_bytes = wasm.memory.map(|l| l.min as u64 * 65536).unwrap_or(0);
    let table_len = wasm.table.map(|l| l.min).unwrap_or(0);
    let table_addr = (mem_bytes + 15) & !15;
    let table_bytes = table_len as u64 * 16;
    let stack_limit_addr = table_addr + table_bytes;
    let memory_size = (stack_limit_addr + 8 + 0xfff) & !0xfff;
    // Trap when rsp comes within a page of the machine-stack floor.
    let stack_limit_value = memory_size + 4096;

    let heap_mask = (mem_bytes.max(1).next_power_of_two() - 1) as i64;

    let n_imports = wasm.num_imported_funcs();
    let mut lirs: Vec<LFunc> = Vec::new();
    let mut func_texts: Vec<Vec<String>> = Vec::new();
    let mut module = Module {
        funcs: Vec::with_capacity(wasm.funcs.len()),
        table: Vec::new(),
        entry: None,
        memory_size,
        data: wasm
            .data
            .iter()
            .map(|d| (d.offset as u64, d.bytes.clone()))
            .collect(),
        // Both pipelines declare the guard contract so the simulator
        // faults any heap access past mem_bytes. For asm.js this also
        // closes the masking gap: a masked address landing in
        // [mem_bytes, next_power_of_two) would otherwise silently read
        // the table image and stack-limit word.
        sandbox: Some(Sandbox {
            heap_base: match profile.membase {
                Some(r) => HeapBase::Pinned(r),
                None => HeapBase::Masked,
            },
            heap_limit: mem_bytes,
            switch_cycles: match profile.sandbox {
                SandboxModel::Pku { switch_cycles } => switch_cycles,
                SandboxModel::Bounds | SandboxModel::Guard => 0,
            },
        }),
    };

    // Serialize the (sig, code) table; empty slots trap on use.
    if table_len > 0 {
        let mut slots: Vec<(u64, u64)> = vec![(u64::MAX, u64::MAX); table_len as usize];
        for e in &wasm.elems {
            for (i, &f) in e.funcs.iter().enumerate() {
                let sig = wasm
                    .local_func(f)
                    .map(|d| d.type_idx as u64)
                    .ok_or("imported functions cannot enter the table")?;
                slots[e.offset as usize + i] = (sig, (f - n_imports) as u64);
            }
        }
        let mut bytes = Vec::with_capacity(slots.len() * 16);
        for (sig, func) in slots {
            bytes.extend_from_slice(&sig.to_le_bytes());
            bytes.extend_from_slice(&func.to_le_bytes());
        }
        module.data.push((table_addr, bytes));
    }
    module
        .data
        .push((stack_limit_addr, stack_limit_value.to_le_bytes().to_vec()));

    for (fi, def) in wasm.funcs.iter().enumerate() {
        let ft = &wasm.types[def.type_idx as usize];
        let mut lf = LFunc {
            name: if def.name.is_empty() {
                format!("wasm_func_{fi}")
            } else {
                def.name.clone()
            },
            ..LFunc::default()
        };
        let mut local_tys: Vec<ValType> = ft.params.clone();
        local_tys.extend_from_slice(&def.locals);
        for t in &local_tys {
            lf.new_vreg(vclass(*t));
        }
        lf.params = ft.params.iter().map(|t| vclass(*t)).collect();
        lf.blocks.push(LBlock::default());

        let mut cx = JitFn {
            wasm,
            profile,
            lf,
            cur: 0,
            stack: Vec::new(),
            ctrl: Vec::new(),
            n_imports,
            table_addr,
            table_len,
            heap_mask,
            mem_bytes,
            dead: false,
            local_tys,
            ret_ty: ft.result(),
            src: NO_TAG,
            texts: Vec::new(),
        };

        if profile.stack_check {
            cx.emit(LInst::StackCheck {
                limit_addr: stack_limit_addr,
            });
        }
        // Zero non-parameter locals (wasm semantics).
        for i in ft.params.len()..cx.local_tys.len() {
            match vclass(cx.local_tys[i]) {
                VClass::Float => {
                    let prec = fprec(cx.local_tys[i]);
                    cx.emit(LInst::MovFImm {
                        dst: FLoc::V(i as u32),
                        bits: 0,
                        prec,
                    });
                }
                VClass::Int => cx.emit(LInst::Mov {
                    dst: Loc::V(i as u32),
                    src: Opnd::Imm(0),
                    width: Width::W64,
                }),
            }
        }

        cx.compile_body(&def.body)?;
        if !cx.dead {
            let value = ft.result().map(|t| {
                let (r, _) = cx.pop_reg();
                match vclass(t) {
                    VClass::Float => Arg::Float(FOpnd::Loc(FLoc::V(r))),
                    VClass::Int => Arg::Int(Opnd::Loc(Loc::V(r))),
                }
            });
            cx.emit(LInst::Ret { value });
        } else {
            cx.emit(LInst::Ret { value: None });
        }

        let assign = allocate_linear_scan(&cx.lf, &profile.alloc);
        module
            .funcs
            .push(emit_function(&cx.lf, &assign, &profile.alloc));
        func_texts.push(std::mem::take(&mut cx.texts));
        if keep_lir {
            lirs.push(cx.lf);
        }
    }

    // Entry: exported main.
    if let Some(main) = wasm.exported_func("main") {
        if main >= n_imports {
            module.entry = Some(wasmperf_isa::FuncId(main - n_imports));
        }
    }

    module.assign_addresses();
    Ok((
        JitOutput {
            module,
            table_addr,
            stack_limit_addr,
            func_texts,
        },
        lirs,
    ))
}

#[cfg(test)]
mod tests;
