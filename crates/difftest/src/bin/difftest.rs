//! Differential fuzzing driver.
//!
//! ```text
//! difftest [--seed N] [--iters N] [--jobs N] [--shrink] [--corpus DIR]
//! ```
//!
//! Replays the corpus (if `--corpus` is given), then fuzzes `--iters`
//! seeded programs starting at `--seed` on the farm worker pool. Each
//! divergence is reported with its per-engine outcomes; with `--shrink`
//! it is first reduced to a minimal reproducer, which is written into
//! the corpus directory (when one was given) ready to be checked in.
//! Exits non-zero if anything diverged or failed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use wasmperf_difftest::exec::{run_source, Outcome};
use wasmperf_difftest::{check_case, corpus, generate, load_dir, shrink, Expect};

struct Args {
    seed: u64,
    iters: u64,
    jobs: usize,
    shrink: bool,
    corpus: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        iters: 100,
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        shrink: false,
        corpus: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--iters" => {
                args.iters = val("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--jobs" => args.jobs = val("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--shrink" => args.shrink = true,
            "--corpus" => args.corpus = Some(PathBuf::from(val("--corpus")?)),
            "--help" | "-h" => {
                println!(
                    "usage: difftest [--seed N] [--iters N] [--jobs N] [--shrink] [--corpus DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn replay_corpus(dir: &Path) -> Result<usize, usize> {
    let cases = match load_dir(dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corpus: {e}");
            return Err(1);
        }
    };
    let mut failures = 0usize;
    for (path, case) in &cases {
        match check_case(case) {
            Ok(_) => println!("corpus ok   {}", path.display()),
            Err(e) => {
                failures += 1;
                eprintln!("corpus FAIL {}\n{e}", path.display());
            }
        }
    }
    if failures == 0 {
        Ok(cases.len())
    } else {
        Err(failures)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("difftest: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;

    if let Some(dir) = &args.corpus {
        if dir.is_dir() {
            match replay_corpus(dir) {
                Ok(n) => println!("corpus: {n} case(s) clean"),
                Err(n) => {
                    eprintln!("corpus: {n} case(s) failed");
                    failed = true;
                }
            }
        } else {
            println!(
                "corpus: {} does not exist yet, skipping replay",
                dir.display()
            );
        }
    }

    if args.iters > 0 {
        let seeds: Vec<u64> = (0..args.iters).map(|i| args.seed.wrapping_add(i)).collect();
        // One farm job per seed: generate, run everywhere, report the
        // divergence signature (if any). Shrinking happens afterwards in
        // the main thread — regeneration from the seed is free.
        let (outcomes, stats) = wasmperf_farm::run_jobs(
            &seeds,
            args.jobs,
            |s| format!("seed {s}"),
            |&s| {
                let src = generate(s).render();
                let report = run_source(&src)
                    .map_err(|e| format!("seed {s}: generated program rejected: {e}\n{src}"))?;
                Ok(report.signature().map(|sig| (sig, report.describe())))
            },
            None,
        );

        let mut divergent: Vec<u64> = Vec::new();
        for (seed, outcome) in seeds.iter().zip(&outcomes) {
            match outcome {
                Ok(None) => {}
                Ok(Some((sig, describe))) => {
                    divergent.push(*seed);
                    eprintln!("divergence at seed {seed} (disagreeing: {sig}):\n{describe}");
                }
                Err(f) => {
                    failed = true;
                    eprintln!("job failure: {f}");
                }
            }
        }
        println!(
            "fuzz: {} program(s), {} divergence(s), {} job failure(s), {} worker(s)",
            seeds.len(),
            divergent.len(),
            stats.failures,
            stats.per_worker.len()
        );

        for seed in &divergent {
            failed = true;
            if !args.shrink {
                continue;
            }
            let orig = generate(*seed);
            let sig = run_source(&orig.render())
                .ok()
                .and_then(|r| r.signature())
                .expect("divergence reproduces");
            let keep = |p: &wasmperf_difftest::Prog| match run_source(&p.render()) {
                Ok(r) => r.signature().as_ref() == Some(&sig),
                Err(_) => false,
            };
            let small = shrink(&orig, keep, 4000);
            let report = run_source(&small.render()).expect("shrunk program compiles");
            let expect = match report.oracle() {
                Outcome::Value(v) => Some(Expect::Value(*v)),
                Outcome::Trap(t) => Some(Expect::Trap(*t)),
                _ => None,
            };
            let text = corpus::render_case(
                &format!("shrunk-seed{seed} (disagreeing: {sig})"),
                expect,
                &small.render(),
            );
            println!("\nminimal reproducer for seed {seed}:\n{text}");
            if let Some(dir) = &args.corpus {
                let path = dir.join(format!("shrunk-seed{seed}.clite"));
                match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &text)) {
                    Ok(()) => println!("wrote {}", path.display()),
                    Err(e) => eprintln!("could not write {}: {e}", path.display()),
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
