//! Seeded random CLite program generator.
//!
//! Programs are generated *valid by construction* (every expression is
//! built for a known target type, following the typechecker's exact-match
//! operand rules) and *terminating by construction*:
//!
//! - loops are counter-bounded with literal bounds and bodies that never
//!   touch the counter,
//! - calls form a DAG — a function only calls functions generated before
//!   it — so there is no recursion,
//! - array indices are masked to the (power-of-two) array length, because
//!   the native pipeline has no bounds checks and a stray store would be
//!   memory corruption, not a semantics divergence.
//!
//! Traps, on the other hand, are a deliberate part of the surface: a
//! small fraction of divisions, float→int casts, and indirect-call
//! indices are left unguarded so that trap *parity* across engines is
//! fuzzed too. Likewise a small fraction of array indices are
//! near-memory-limit probes (straddling `mem_bytes` and the
//! power-of-two heap-mask boundary) so the sandbox trap boundary and
//! the modeled native/asm.js out-of-bounds asymmetries are fuzzed —
//! see `outcome_compatible`.
//!
//! The generator leans on the divergence-prone corners the paper's
//! toolchains disagree on: signed/unsigned div/rem/shift at every width,
//! rotates (including count zero), float `min`/`max` with NaN and signed
//! zeros, sub-word array element widening, indirect calls through
//! function tables, and compile-time constant folding (`const` + global
//! initializers).

use crate::prog::{ArrayDef, Elem, Expr, FuncDef, Prog, Stmt, Ty};
use crate::rng::Rng;

/// Generates the program for `seed`. Same seed, same program, forever.
pub fn generate(seed: u64) -> Prog {
    Gen {
        rng: Rng::new(seed),
        globals: Vec::new(),
        arrays: Vec::new(),
        table: None,
        callees: Vec::new(),
    }
    .build()
}

/// Signature of a callable function: name, param types, return type.
type Sig = (String, Vec<Ty>, Ty);

struct Gen {
    rng: Rng,
    globals: Vec<(String, Ty)>,
    arrays: Vec<(String, Elem, u32)>,
    /// Function table: name and (power-of-two) length. Members take
    /// `(i32, i32)` and return `i32`.
    table: Option<(String, u32)>,
    /// Functions generated so far, callable from later bodies (DAG).
    callees: Vec<Sig>,
}

/// Per-function-body generation state.
struct Scope {
    /// Assignable locals and parameters.
    vars: Vec<(String, Ty)>,
    /// Live loop counters: readable as `i32`, never assigned.
    counters: Vec<String>,
    next_var: u32,
    next_loop: u32,
    loop_depth: u32,
}

impl Scope {
    fn new(params: &[(String, Ty)]) -> Scope {
        Scope {
            vars: params.to_vec(),
            counters: Vec::new(),
            next_var: 0,
            next_loop: 0,
            loop_depth: 0,
        }
    }

    fn fresh_var(&mut self) -> String {
        let n = format!("v{}", self.next_var);
        self.next_var += 1;
        n
    }

    fn fresh_counter(&mut self) -> String {
        let n = format!("li{}", self.next_loop);
        self.next_loop += 1;
        n
    }
}

fn b(e: Expr) -> Box<Expr> {
    Box::new(e)
}

/// True when the expression is built purely from literals and operators.
/// Such a tree carries no type anchor of its own: the typechecker's
/// "literals adapt to the non-literal side" rule has nothing to adapt to
/// in an expected-type-free position (comparison operand, intrinsic
/// argument, cast operand), so the whole tree defaults to i32 / f64 and
/// can then mismatch a wider sibling.
fn is_lit_tree(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Float(_) => true,
        Expr::Bin(_, l, r) => is_lit_tree(l) && is_lit_tree(r),
        Expr::Un(_, x) => is_lit_tree(x),
        _ => false,
    }
}

/// True when the literal renders as a single source token. Negative
/// ints render as `(0 - n)`, and NaN / infinities / negative or
/// negative-zero floats render as compound arithmetic, so the parser
/// sees a Binary node — not a literal — and the "literals adapt" rule
/// no longer applies to them.
fn renders_atomic(e: &Expr) -> bool {
    match e {
        Expr::Int(n) => *n >= 0,
        Expr::Float(v) => v.is_finite() && *v == v.abs() && !(*v == 0.0 && v.is_sign_negative()),
        _ => false,
    }
}

/// Give a literal-only expression a type anchor. Int literals anchor by
/// adding a typed zero — the literal then adapts to the anchored side
/// with its exact value, where a cast would truncate wide values
/// through the i32 default. Everything else (floats, compound trees)
/// anchors with a cast, which preserves NaN, infinities and -0.0.
fn anchor(ty: Ty, e: Expr) -> Expr {
    match e {
        Expr::Int(_) => Expr::Bin("+", b(Expr::Cast(ty, b(Expr::Int(0)))), b(e)),
        _ => Expr::Cast(ty, b(e)),
    }
}

/// Pin a compound literal-only tree to `ty` so it types
/// deterministically in any context. Plain-token literals are left
/// alone: they adapt wherever the generator places them as a sibling
/// operand. i32 and f64 trees already default to the right type.
fn pin(ty: Ty, e: Expr) -> Expr {
    if ty != Ty::I32 && ty != Ty::F64 && !renders_atomic(&e) && is_lit_tree(&e) {
        anchor(ty, e)
    } else {
        e
    }
}

/// Like `pin`, but also pins plain-token literals. Used for argument
/// positions whose type is inferred from that argument alone (rotl/rotr
/// first argument, bit intrinsics, min/max first argument), where no
/// sibling adapts a lone literal.
fn pin_arg(ty: Ty, e: Expr) -> Expr {
    if ty != Ty::I32 && ty != Ty::F64 && is_lit_tree(&e) {
        anchor(ty, e)
    } else {
        e
    }
}

impl Gen {
    fn build(mut self) -> Prog {
        let mut prog = Prog::default();
        self.gen_consts(&mut prog);
        self.gen_globals(&mut prog);
        self.gen_arrays(&mut prog);
        self.gen_table(&mut prog);
        self.gen_helpers(&mut prog);
        self.gen_main(&mut prog);
        prog
    }

    // ----- top-level items ------------------------------------------------

    /// A constant expression: folded at compile time by the frontend, so
    /// this is the part of the program that exercises `const_eval`.
    /// Division is guarded (a fold-time div-by-zero is a compile error).
    fn const_expr(&mut self, depth: u32, prior: &[(String, Expr)]) -> Expr {
        if depth == 0 || self.rng.chance(30) {
            return if !prior.is_empty() && self.rng.chance(35) {
                Expr::Var(self.rng.pick(prior).0.clone())
            } else {
                Expr::Int(self.rng.below(256) as i64)
            };
        }
        let l = self.const_expr(depth - 1, prior);
        let r = self.const_expr(depth - 1, prior);
        match self.rng.below(9) {
            0 => Expr::Bin("+", b(l), b(r)),
            1 => Expr::Bin("-", b(l), b(r)),
            2 => Expr::Bin("*", b(l), b(r)),
            3 => Expr::Bin("&", b(l), b(r)),
            4 => Expr::Bin("|", b(l), b(r)),
            5 => Expr::Bin("^", b(l), b(r)),
            6 => Expr::Bin("<<", b(l), b(Expr::Int(self.rng.below(40) as i64))),
            7 => Expr::Bin(">>", b(l), b(Expr::Int(self.rng.below(40) as i64))),
            _ => {
                let guard = Expr::Bin(
                    "|",
                    b(Expr::Bin("&", b(r), b(Expr::Int(7)))),
                    b(Expr::Int(1)),
                );
                let op = if self.rng.chance(50) { "/" } else { "%" };
                Expr::Bin(op, b(l), b(guard))
            }
        }
    }

    fn gen_consts(&mut self, prog: &mut Prog) {
        let n = self.rng.below(3);
        for i in 0..n {
            let e = self.const_expr(2, &prog.consts);
            prog.consts.push((format!("K{i}"), e));
        }
    }

    fn gen_globals(&mut self, prog: &mut Prog) {
        let n = 1 + self.rng.below(3);
        for i in 0..n {
            let ty = *self.rng.pick(&Ty::ALL);
            let name = format!("g{i}");
            let init = if ty.is_float() {
                // Float global initializers must be plain literals; the
                // frontend folds anything else as an integer expression.
                Expr::Float(*self.rng.pick(&[0.0, 0.5, 1.0, 1.5, 2.0, 100.0]))
            } else if self.rng.chance(55) {
                // Constant-expression initializer: folded by const_eval
                // with this global's type semantics.
                self.const_expr(2, &prog.consts)
            } else {
                Expr::Int(self.rng.below(1000) as i64)
            };
            self.globals.push((name.clone(), ty));
            prog.globals.push((name, ty, init));
        }
    }

    fn gen_arrays(&mut self, prog: &mut Prog) {
        let n = 1 + self.rng.below(3);
        for i in 0..n {
            let elem = *self.rng.pick(&Elem::ALL);
            let len = *self.rng.pick(&[4u32, 8, 16]);
            let name = format!("a{i}");
            let init = if self.rng.chance(30) {
                Some(
                    (0..len)
                        .map(|_| {
                            if elem.load_ty().is_float() {
                                Expr::Float(*self.rng.pick(&[0.0, 0.5, 1.0, 2.0, 3.5]))
                            } else {
                                Expr::Int(self.rng.below(200) as i64)
                            }
                        })
                        .collect(),
                )
            } else {
                None
            };
            self.arrays.push((name.clone(), elem, len));
            prog.arrays.push(ArrayDef {
                name,
                elem,
                len,
                init,
            });
        }
    }

    fn gen_table(&mut self, prog: &mut Prog) {
        if !self.rng.chance(85) {
            return;
        }
        let len = if self.rng.chance(50) { 2u32 } else { 4 };
        let mut members = Vec::new();
        for i in 0..len {
            let name = format!("tf{i}");
            let params = vec![("p0".to_string(), Ty::I32), ("p1".to_string(), Ty::I32)];
            let body = self.gen_body(&params, Ty::I32, 1);
            prog.funcs.push(FuncDef {
                name: name.clone(),
                params: params.clone(),
                ret: Ty::I32,
                body,
            });
            self.callees
                .push((name.clone(), vec![Ty::I32, Ty::I32], Ty::I32));
            members.push(name);
        }
        self.table = Some(("tab0".to_string(), len));
        prog.tables.push(("tab0".to_string(), members));
    }

    fn gen_helpers(&mut self, prog: &mut Prog) {
        let n = self.rng.below(3);
        for i in 0..n {
            let name = format!("f{i}");
            let nparams = self.rng.below(3) as usize;
            let params: Vec<(String, Ty)> = (0..nparams)
                .map(|j| (format!("p{j}"), *self.rng.pick(&Ty::ALL)))
                .collect();
            let ret = *self.rng.pick(&Ty::ALL);
            let body = self.gen_body(&params, ret, 2);
            let sig = (name.clone(), params.iter().map(|(_, t)| *t).collect(), ret);
            prog.funcs.push(FuncDef {
                name,
                params,
                ret,
                body,
            });
            self.callees.push(sig);
        }
    }

    fn gen_main(&mut self, prog: &mut Prog) {
        let mut sc = Scope::new(&[]);
        let mut body = Vec::new();
        body.push(Stmt::Decl("acc".to_string(), Ty::I32, self.lit(Ty::I32)));
        sc.vars.push(("acc".to_string(), Ty::I32));
        let n = 4 + self.rng.below(5);
        for _ in 0..n {
            let s = self.stmt(2, &mut sc);
            body.push(s);
        }
        // Fold the observable state — arrays and globals — into the
        // checksum so stores and global writes are not dead code.
        for (name, elem, len) in self.arrays.clone() {
            let idx = Expr::Int(self.rng.below(len as u64) as i64);
            let load = Expr::Load(name, b(idx));
            let merged = match elem.load_ty() {
                Ty::I32 => load,
                t if t.is_float() => {
                    // Comparisons observe floats without trap-prone casts.
                    Expr::Bin("<", b(load), b(Expr::Float(0.5)))
                }
                _ => Expr::Cast(Ty::I32, b(load)),
            };
            body.push(Stmt::Assign(
                "acc".to_string(),
                Expr::Bin("^", b(Expr::Var("acc".to_string())), b(merged)),
            ));
        }
        for (name, ty) in self.globals.clone() {
            let read = Expr::Var(name);
            let merged = match ty {
                Ty::I32 => read,
                t if t.is_float() => Expr::Bin("<", b(read), b(Expr::Float(1.0))),
                _ => Expr::Cast(Ty::I32, b(read)),
            };
            body.push(Stmt::Assign(
                "acc".to_string(),
                Expr::Bin("+", b(Expr::Var("acc".to_string())), b(merged)),
            ));
        }
        body.push(Stmt::Return(Expr::Var("acc".to_string())));
        prog.funcs.push(FuncDef {
            name: "main".to_string(),
            params: vec![],
            ret: Ty::I32,
            body,
        });
    }

    fn gen_body(&mut self, params: &[(String, Ty)], ret: Ty, max_stmts: u64) -> Vec<Stmt> {
        let mut sc = Scope::new(params);
        let mut body = Vec::new();
        let n = 1 + self.rng.below(max_stmts);
        for _ in 0..n {
            let s = self.stmt(1, &mut sc);
            body.push(s);
        }
        if self.rng.chance(20) {
            let cond = self.expr(Ty::I32, 1, &mut sc);
            let val = self.expr(ret, 1, &mut sc);
            body.push(Stmt::If(cond, vec![Stmt::Return(val)], vec![]));
        }
        let val = self.expr(ret, 2, &mut sc);
        body.push(Stmt::Return(val));
        body
    }

    // ----- statements -----------------------------------------------------

    fn stmt(&mut self, depth: u32, sc: &mut Scope) -> Stmt {
        let roll = self.rng.below(100);
        if roll < 30 && !sc.vars.is_empty() {
            // Assign to an existing local (or occasionally a global).
            if self.rng.chance(20) && !self.globals.is_empty() {
                let (name, ty) = self.rng.pick(&self.globals).clone();
                let e = self.expr(ty, 2, sc);
                return Stmt::Assign(name, e);
            }
            let (name, ty) = self.rng.pick(&sc.vars).clone();
            let e = self.expr(ty, 2, sc);
            return Stmt::Assign(name, e);
        }
        if roll < 50 {
            let ty = *self.rng.pick(&Ty::ALL);
            let name = sc.fresh_var();
            let e = self.expr(ty, 2, sc);
            sc.vars.push((name.clone(), ty));
            return Stmt::Decl(name, ty, e);
        }
        if roll < 65 && !self.arrays.is_empty() {
            let (name, elem, len) = self.rng.pick(&self.arrays).clone();
            let idx = self.array_index(elem, len, sc);
            let val = self.expr(elem.load_ty(), 2, sc);
            return Stmt::Store(name, idx, val);
        }
        if roll < 80 && depth > 0 {
            let cond = self.expr(Ty::I32, 2, sc);
            let then = self.block(depth - 1, sc, 2);
            let els = if self.rng.chance(40) {
                self.block(depth - 1, sc, 2)
            } else {
                vec![]
            };
            return Stmt::If(cond, then, els);
        }
        if depth > 0 && sc.loop_depth < 2 {
            let var = sc.fresh_counter();
            let bound = 1 + self.rng.below(5) as i64;
            let do_while = self.rng.chance(30);
            sc.counters.push(var.clone());
            sc.loop_depth += 1;
            let mut body = self.block(depth - 1, sc, 2);
            if self.rng.chance(20) {
                let cond = self.expr(Ty::I32, 1, sc);
                body.push(Stmt::If(cond, vec![Stmt::Break], vec![]));
            }
            sc.loop_depth -= 1;
            sc.counters.pop();
            return Stmt::Loop {
                var,
                bound,
                do_while,
                body,
            };
        }
        // Fallback: a fresh declaration.
        let ty = *self.rng.pick(&Ty::ALL);
        let name = sc.fresh_var();
        let e = self.expr(ty, 1, sc);
        sc.vars.push((name.clone(), ty));
        Stmt::Decl(name, ty, e)
    }

    fn block(&mut self, depth: u32, sc: &mut Scope, max_stmts: u64) -> Vec<Stmt> {
        // Locals declared inside a block scope the block; keep the outer
        // variable list unchanged afterwards so later statements don't
        // reference block-scoped names.
        let outer_vars = sc.vars.len();
        let n = 1 + self.rng.below(max_stmts);
        let mut out = Vec::new();
        for _ in 0..n {
            let s = self.stmt(depth, sc);
            out.push(s);
        }
        sc.vars.truncate(outer_vars);
        out
    }

    // ----- expressions ----------------------------------------------------

    /// An in-bounds array index: `(e & (len - 1))` with `len` a power of
    /// two, so the native pipeline (no bounds checks) can't corrupt
    /// memory.
    fn masked_index(&mut self, len: u32, sc: &mut Scope) -> Expr {
        let e = self.expr(Ty::I32, 1, sc);
        Expr::Bin("&", b(e), b(Expr::Int((len - 1) as i64)))
    }

    /// A near-memory-limit index literal. The frontend lays memory out
    /// as data end + 128 KiB heap slack rounded to 64 KiB pages, so
    /// every generated program (tiny data) gets `mem_bytes = 0x30000` —
    /// the boundary all checked pipelines trap at — and a power-of-two
    /// asm.js heap mask of `0x40000 - 1`. The probe lands within a few
    /// elements of either boundary: straddling `mem_bytes` exercises
    /// zero-filled slack vs the trap edge (and the gap where asm.js
    /// masking stays in range but the sandbox limit still traps);
    /// straddling the power of two exercises the asm.js wraparound.
    /// Divergence from these accesses is governed by
    /// `outcome_compatible`: native (C undefined behaviour) and asm.js
    /// (masked wrap) are excused only when the reference traps
    /// OutOfBounds.
    fn near_limit_index(&mut self, elem: Elem) -> Expr {
        let esz = elem.bytes() as i64;
        let boundary = if self.rng.chance(70) {
            0x30000
        } else {
            0x40000
        };
        let delta = self.rng.below(8) as i64 - 4; // -4..=3 elements
        Expr::Int(boundary / esz + delta)
    }

    /// An array index for a load or store: usually masked in-bounds,
    /// occasionally a near-memory-limit probe.
    fn array_index(&mut self, elem: Elem, len: u32, sc: &mut Scope) -> Expr {
        if self.rng.chance(4) {
            self.near_limit_index(elem)
        } else {
            self.masked_index(len, sc)
        }
    }

    fn lit(&mut self, ty: Ty) -> Expr {
        match ty {
            Ty::I32 => {
                let pool: &[i64] = &[
                    0,
                    1,
                    2,
                    3,
                    5,
                    7,
                    8,
                    15,
                    16,
                    31,
                    32,
                    63,
                    100,
                    255,
                    4096,
                    65535,
                    1000000,
                    2147483647,
                    -1,
                    -2,
                    -7,
                    -100,
                    -65536,
                    -2147483647,
                ];
                Expr::Int(*self.rng.pick(pool))
            }
            Ty::U32 => {
                let pool: &[i64] = &[
                    0, 1, 2, 3, 7, 8, 15, 31, 100, 255, 65535, 2147483647, 4294967295,
                ];
                Expr::Int(*self.rng.pick(pool))
            }
            Ty::I64 => {
                let pool: &[i64] = &[
                    0,
                    1,
                    2,
                    7,
                    63,
                    255,
                    4294967295,
                    1 << 33,
                    1 << 40,
                    i64::MAX,
                    -1,
                    -2,
                    -100,
                    -(1 << 35),
                    i64::MIN + 1,
                ];
                Expr::Int(*self.rng.pick(pool))
            }
            Ty::U64 => {
                let pool: &[i64] = &[0, 1, 2, 7, 63, 255, 65536, 4294967295, 1 << 40, i64::MAX];
                Expr::Int(*self.rng.pick(pool))
            }
            Ty::F32 | Ty::F64 => {
                let roll = self.rng.below(100);
                if roll < 6 {
                    Expr::Float(f64::NAN)
                } else if roll < 10 {
                    Expr::Float(f64::INFINITY)
                } else if roll < 15 {
                    Expr::Float(-0.0)
                } else {
                    let pool: &[f64] = &[
                        0.0, 1.0, 0.5, 1.5, 2.0, 3.25, 100.0, 0.1, 1000000.0, -1.0, -0.5, -2.5,
                    ];
                    Expr::Float(*self.rng.pick(pool))
                }
            }
        }
    }

    fn leaf(&mut self, ty: Ty, sc: &Scope) -> Expr {
        let roll = self.rng.below(100);
        if roll < 45 {
            let mut names: Vec<String> = sc
                .vars
                .iter()
                .filter(|(_, t)| *t == ty)
                .map(|(n, _)| n.clone())
                .collect();
            if ty == Ty::I32 {
                names.extend(sc.counters.iter().cloned());
            }
            if !names.is_empty() {
                return Expr::Var(self.rng.pick(&names).clone());
            }
        }
        if roll < 60 {
            let gs: Vec<&String> = self
                .globals
                .iter()
                .filter(|(_, t)| *t == ty)
                .map(|(n, _)| n)
                .collect();
            if !gs.is_empty() {
                return Expr::Var((*self.rng.pick(&gs)).clone());
            }
        }
        if roll < 75 {
            let arrs: Vec<(String, Elem, u32)> = self
                .arrays
                .iter()
                .filter(|(_, e, _)| e.load_ty() == ty)
                .cloned()
                .collect();
            if !arrs.is_empty() {
                let (name, elem, len) = self.rng.pick(&arrs).clone();
                let idx = if self.rng.chance(4) {
                    self.near_limit_index(elem)
                } else {
                    Expr::Int(self.rng.below(len as u64) as i64)
                };
                return Expr::Load(name, b(idx));
            }
        }
        self.lit(ty)
    }

    fn expr(&mut self, ty: Ty, depth: u32, sc: &mut Scope) -> Expr {
        if depth == 0 {
            return self.leaf(ty, sc);
        }
        if ty.is_float() {
            self.float_expr(ty, depth, sc)
        } else {
            self.int_expr(ty, depth, sc)
        }
    }

    fn int_expr(&mut self, ty: Ty, depth: u32, sc: &mut Scope) -> Expr {
        // Re-roll a few times when an option isn't available in this
        // program (no table, no matching callee, ...).
        for _ in 0..8 {
            let roll = self.rng.below(100);
            if roll < 24 {
                let op = *self.rng.pick(&["+", "-", "*", "&", "|", "^"]);
                let l = pin(ty, self.expr(ty, depth - 1, sc));
                let r = pin(ty, self.expr(ty, depth - 1, sc));
                return Expr::Bin(op, b(l), b(r));
            }
            if roll < 32 {
                // Shift counts are masked to the width at runtime (wasm
                // semantics), so unguarded counts are fine.
                let op = *self.rng.pick(&["<<", ">>"]);
                let l = pin(ty, self.expr(ty, depth - 1, sc));
                let r = pin(ty, self.expr(ty, depth - 1, sc));
                return Expr::Bin(op, b(l), b(r));
            }
            if roll < 41 {
                let op = *self.rng.pick(&["/", "%"]);
                let l = pin(ty, self.expr(ty, depth - 1, sc));
                let r = pin(ty, self.expr(ty, depth - 1, sc));
                // Mostly guarded; sometimes raw, to fuzz trap parity
                // (div-by-zero and INT_MIN / -1 across all engines).
                let r = if self.rng.chance(85) {
                    Expr::Bin(
                        "|",
                        b(Expr::Bin("&", b(r), b(Expr::Int(255)))),
                        b(Expr::Int(1)),
                    )
                } else {
                    r
                };
                return Expr::Bin(op, b(l), b(r));
            }
            if roll < 48 {
                let op = *self.rng.pick(&["rotl", "rotr"]);
                // rotl/rotr infer their type from the first argument, so
                // it must carry a type anchor of its own.
                let l = pin_arg(ty, self.expr(ty, depth - 1, sc));
                let r = pin(ty, self.expr(ty, depth - 1, sc));
                return Expr::Call(op.to_string(), vec![l, r]);
            }
            if roll < 54 {
                if self.rng.chance(50) {
                    let x = pin_arg(ty, self.expr(ty, depth - 1, sc));
                    return Expr::Un("~", b(x));
                }
                let op = *self.rng.pick(&["clz", "ctz", "popcnt"]);
                let x = pin_arg(ty, self.expr(ty, depth - 1, sc));
                return Expr::Call(op.to_string(), vec![x]);
            }
            if roll < 64 && ty == Ty::I32 {
                // Comparison: operands of one common type, result i32.
                // Float comparisons are how NaN and signed-zero behaviour
                // becomes observable in the i32 checksum.
                let s = *self.rng.pick(&Ty::ALL);
                let op = *self.rng.pick(&["==", "!=", "<", "<=", ">", ">="]);
                let l = pin(s, self.expr(s, depth - 1, sc));
                let r = pin(s, self.expr(s, depth - 1, sc));
                return Expr::Bin(op, b(l), b(r));
            }
            if roll < 69 && ty == Ty::I32 {
                if self.rng.chance(40) {
                    let x = self.expr(Ty::I32, depth - 1, sc);
                    return Expr::Un("!", b(x));
                }
                let op = *self.rng.pick(&["&&", "||"]);
                let l = self.expr(Ty::I32, depth - 1, sc);
                let r = self.expr(Ty::I32, depth - 1, sc);
                return Expr::Bin(op, b(l), b(r));
            }
            if roll < 78 {
                // Casts. int→int is always safe; float→int traps on NaN
                // or out-of-range values, which is exactly the kind of
                // edge worth diffing — keep it rare so most programs run
                // to completion.
                let src = if self.rng.chance(12) {
                    *self.rng.pick(&[Ty::F32, Ty::F64])
                } else {
                    *self.rng.pick(&Ty::INTS)
                };
                let x = self.expr(src, depth - 1, sc);
                return Expr::Cast(ty, b(x));
            }
            if roll < 85 && ty == Ty::I32 {
                if let Some((tname, len)) = self.table.clone() {
                    let idx = if self.rng.chance(88) {
                        self.masked_index(len, sc)
                    } else {
                        // Unmasked: the index may be out of range, which
                        // must trap as BadIndirectCall everywhere.
                        self.expr(Ty::I32, 1, sc)
                    };
                    let a0 = self.expr(Ty::I32, depth - 1, sc);
                    let a1 = self.expr(Ty::I32, depth - 1, sc);
                    return Expr::CallIndirect(tname, b(idx), vec![a0, a1]);
                }
                continue;
            }
            if roll < 92 {
                let matching: Vec<Sig> = self
                    .callees
                    .iter()
                    .filter(|(_, _, r)| *r == ty)
                    .cloned()
                    .collect();
                if let Some((name, params, _)) = matching
                    .get(self.rng.below(matching.len().max(1) as u64) as usize)
                    .cloned()
                {
                    let args = params
                        .iter()
                        .map(|t| self.expr(*t, depth - 1, sc))
                        .collect();
                    return Expr::Call(name, args);
                }
                continue;
            }
            return self.leaf(ty, sc);
        }
        self.leaf(ty, sc)
    }

    fn float_expr(&mut self, ty: Ty, depth: u32, sc: &mut Scope) -> Expr {
        for _ in 0..6 {
            let roll = self.rng.below(100);
            if roll < 35 {
                let op = *self.rng.pick(&["+", "-", "*", "/"]);
                let l = pin(ty, self.expr(ty, depth - 1, sc));
                let r = pin(ty, self.expr(ty, depth - 1, sc));
                return Expr::Bin(op, b(l), b(r));
            }
            if roll < 52 {
                // min/max: the NaN-propagation and -0.0 < +0.0 rules are
                // a known divergence hotspot between SSE-style selection
                // and wasm semantics. The first argument fixes the type.
                let op = *self.rng.pick(&["min", "max"]);
                let l = pin_arg(ty, self.expr(ty, depth - 1, sc));
                let r = pin(ty, self.expr(ty, depth - 1, sc));
                return Expr::Call(op.to_string(), vec![l, r]);
            }
            if roll < 67 {
                let op = *self
                    .rng
                    .pick(&["sqrt", "abs", "floor", "ceil", "trunc", "nearest"]);
                let x = pin_arg(ty, self.expr(ty, depth - 1, sc));
                return Expr::Call(op.to_string(), vec![x]);
            }
            if roll < 80 {
                let src = if self.rng.chance(55) {
                    *self.rng.pick(&Ty::INTS)
                } else if ty == Ty::F32 {
                    Ty::F64
                } else {
                    Ty::F32
                };
                let x = self.expr(src, depth - 1, sc);
                return Expr::Cast(ty, b(x));
            }
            if roll < 88 {
                let matching: Vec<Sig> = self
                    .callees
                    .iter()
                    .filter(|(_, _, r)| *r == ty)
                    .cloned()
                    .collect();
                if matching.is_empty() {
                    continue;
                }
                let (name, params, _) = self.rng.pick(&matching).clone();
                let args = params
                    .iter()
                    .map(|t| self.expr(*t, depth - 1, sc))
                    .collect();
                return Expr::Call(name, args);
            }
            return self.leaf(ty, sc);
        }
        self.leaf(ty, sc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 7, 123456789] {
            assert_eq!(generate(seed).render(), generate(seed).render());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(generate(1).render(), generate(2).render());
    }

    #[test]
    fn generated_programs_compile() {
        for seed in 0..200u64 {
            let src = generate(seed).render();
            wasmperf_cir::compile(&src)
                .unwrap_or_else(|e| panic!("seed {seed} does not compile: {e}\n{src}"));
        }
    }
}
