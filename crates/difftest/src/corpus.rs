//! The checked-in regression corpus.
//!
//! Each `corpus/*.clite` file is a minimal reproducer with a small
//! comment header:
//!
//! ```text
//! // difftest: rotate64-by-zero
//! // expect: value 1
//! <CLite source>
//! ```
//!
//! `expect:` is either `value <i32>` or `trap <TrapClass>`. Replaying a
//! case runs it through every engine and fails if any two engines
//! diverge *or* if the agreed outcome differs from `expect:` — the
//! latter catches bugs that hit every pipeline identically (e.g. a bad
//! constant fold in the shared frontend, which no cross-engine
//! comparison can see).

use std::fs;
use std::path::{Path, PathBuf};

use crate::exec::{run_source, Outcome, Report, TrapClass};

/// The expected agreed outcome of a corpus case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expect {
    /// `main` returns this value.
    Value(i32),
    /// Execution traps with this class.
    Trap(TrapClass),
}

impl Expect {
    /// True if `o` matches this expectation.
    pub fn matches(self, o: &Outcome) -> bool {
        match (self, o) {
            (Expect::Value(v), Outcome::Value(got)) => v == *got,
            (Expect::Trap(t), Outcome::Trap(got)) => t == *got,
            _ => false,
        }
    }
}

impl core::fmt::Display for Expect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Expect::Value(v) => write!(f, "value {v}"),
            Expect::Trap(t) => write!(f, "trap {t}"),
        }
    }
}

/// A parsed corpus case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Case name from the `// difftest:` header.
    pub name: String,
    /// Expected outcome, if the header declares one.
    pub expect: Option<Expect>,
    /// The CLite source (header comments included; they lex as
    /// comments).
    pub source: String,
}

/// Parses a corpus file's text.
pub fn parse_case(text: &str) -> Result<Case, String> {
    let mut name = None;
    let mut expect = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("// difftest:") {
            name = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("// expect:") {
            let rest = rest.trim();
            expect = Some(parse_expect(rest)?);
        } else if !line.starts_with("//") && !line.is_empty() {
            break;
        }
    }
    Ok(Case {
        name: name.ok_or("missing `// difftest: <name>` header")?,
        expect,
        source: text.to_string(),
    })
}

fn parse_expect(s: &str) -> Result<Expect, String> {
    if let Some(v) = s.strip_prefix("value ") {
        let v: i32 = v
            .trim()
            .parse()
            .map_err(|e| format!("bad expect value `{v}`: {e}"))?;
        return Ok(Expect::Value(v));
    }
    if let Some(t) = s.strip_prefix("trap ") {
        return TrapClass::parse(t.trim())
            .map(Expect::Trap)
            .ok_or_else(|| format!("unknown trap class `{t}`"));
    }
    Err(format!("bad expect `{s}` (want `value N` or `trap Class`)"))
}

/// Loads every `*.clite` case in `dir`, sorted by file name.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Case)>, String> {
    let mut cases = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "clite"))
        .collect();
    paths.sort();
    for path in paths {
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let case = parse_case(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        cases.push((path, case));
    }
    Ok(cases)
}

/// Replays one case through every engine. Fails on a frontend error, a
/// cross-engine divergence, or an `expect:` mismatch.
pub fn check_case(case: &Case) -> Result<Report, String> {
    let report = run_source(&case.source).map_err(|e| format!("[{}] frontend: {e}", case.name))?;
    if report.divergent() {
        return Err(format!(
            "[{}] engines diverge:\n{}",
            case.name,
            report.describe()
        ));
    }
    if let Some(expect) = case.expect {
        let oracle = report.oracle();
        if !expect.matches(oracle) {
            return Err(format!(
                "[{}] expected {expect}, all engines agree on: {oracle}",
                case.name
            ));
        }
    }
    Ok(report)
}

/// Renders a corpus file for a shrunk reproducer.
pub fn render_case(name: &str, expect: Option<Expect>, source: &str) -> String {
    let mut out = format!("// difftest: {name}\n");
    if let Some(e) = expect {
        out.push_str(&format!("// expect: {e}\n"));
    }
    out.push_str(source);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_headers_and_roundtrips() {
        let text = render_case(
            "demo",
            Some(Expect::Value(42)),
            "fn main() -> i32 { return 42; }\n",
        );
        let case = parse_case(&text).unwrap();
        assert_eq!(case.name, "demo");
        assert_eq!(case.expect, Some(Expect::Value(42)));
        check_case(&case).unwrap();
    }

    #[test]
    fn trap_expectations_parse_and_check() {
        let text = render_case(
            "trap-demo",
            Some(Expect::Trap(TrapClass::DivByZero)),
            "fn main() -> i32 { var z: i32 = 0; return 1 / z; }\n",
        );
        let case = parse_case(&text).unwrap();
        check_case(&case).unwrap();
    }

    #[test]
    fn expectation_mismatch_is_an_error() {
        let text = render_case(
            "bad",
            Some(Expect::Value(5)),
            "fn main() -> i32 { return 6; }\n",
        );
        let case = parse_case(&text).unwrap();
        let err = check_case(&case).unwrap_err();
        assert!(err.contains("expected value 5"), "{err}");
    }
}
