//! wasmperf-difftest: differential semantics fuzzing across the whole
//! stack.
//!
//! The paper's comparison between native and WebAssembly performance is
//! only meaningful if all the pipelines *compute the same thing*. This
//! crate checks exactly that, continuously:
//!
//! 1. [`gen`] produces seeded random CLite programs that concentrate on
//!    the corners where C toolchains, wasm engines, and asm.js
//!    historically disagree: signed/unsigned division and shifts at
//!    every width, rotates, float `min`/`max` with NaN and signed
//!    zeros, sub-word memory widths, indirect calls, constant folding.
//! 2. [`exec`] runs each program through seven engines — the CLite
//!    reference interpreter, the wasm reference interpreter, the native
//!    backend, both wasm JIT profiles, and both asm.js profiles — and
//!    compares results and traps bit-exactly.
//! 3. [`shrink`] greedily reduces any divergent program to a minimal
//!    reproducer, and [`corpus`] replays the checked-in `corpus/`
//!    directory as a regression suite (`cargo test` runs it).
//!
//! The `difftest` binary drives the loop in parallel on the farm's
//! worker pool: `difftest --seed 1 --iters 1000 --shrink --corpus
//! corpus`.

pub mod corpus;
pub mod exec;
pub mod gen;
pub mod prog;
pub mod rng;
pub mod shrink;

pub use corpus::{check_case, load_dir, parse_case, Case, Expect};
pub use exec::{run_all, run_source, Engine, Outcome, Report, Signature, TrapClass};
pub use gen::generate;
pub use prog::Prog;
pub use shrink::shrink;
