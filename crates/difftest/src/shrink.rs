//! Greedy structural shrinker.
//!
//! Given a program and a predicate (`keep`) that holds for it — "still
//! compiles and still shows the same divergence signature" in the
//! difftest binary — repeatedly tries smaller candidates and commits any
//! that preserve the predicate. Every mutation moves down a well-founded
//! order (fewer items, fewer statements, fewer/simpler expression nodes,
//! smaller literals, smaller loop bounds), so shrinking terminates even
//! without the explicit check budget.
//!
//! Candidates that render to invalid CLite are fine: the predicate sees
//! them fail to compile and rejects them.

use crate::prog::{Expr, Prog, Stmt, Ty};

/// Shrinks `orig` while `keep` holds, spending at most `max_checks`
/// predicate evaluations. Returns the smallest committed program.
pub fn shrink(orig: &Prog, keep: impl Fn(&Prog) -> bool, max_checks: usize) -> Prog {
    let mut cur = orig.clone();
    let mut checks = 0usize;
    loop {
        let mut accepted = false;
        for cand in candidates(&cur) {
            if checks >= max_checks {
                return cur;
            }
            if cand == cur {
                continue;
            }
            checks += 1;
            if keep(&cand) {
                cur = cand;
                accepted = true;
                break;
            }
        }
        if !accepted {
            return cur;
        }
    }
}

/// All one-step reductions of `p`, biggest wins first.
fn candidates(p: &Prog) -> Vec<Prog> {
    let mut out = Vec::new();

    // Whole-item removal. Referenced items make the candidate fail to
    // compile, which the predicate rejects — no reference tracking
    // needed.
    for i in 0..p.funcs.len().saturating_sub(1) {
        // main is last and never removed.
        let mut c = p.clone();
        c.funcs.remove(i);
        out.push(c);
    }
    for i in 0..p.tables.len() {
        let mut c = p.clone();
        c.tables.remove(i);
        out.push(c);
    }
    for i in 0..p.arrays.len() {
        let mut c = p.clone();
        c.arrays.remove(i);
        out.push(c);
        if p.arrays[i].init.is_some() {
            let mut c = p.clone();
            c.arrays[i].init = None;
            out.push(c);
        }
    }
    for i in 0..p.globals.len() {
        let mut c = p.clone();
        c.globals.remove(i);
        out.push(c);
    }
    for i in 0..p.consts.len() {
        let mut c = p.clone();
        c.consts.remove(i);
        out.push(c);
    }

    // Statement-level reductions.
    let nstmts = count_stmts(p);
    for op in [StmtOp::Remove, StmtOp::Flatten, StmtOp::BoundOne] {
        for k in 0..nstmts {
            let mut c = p.clone();
            if edit_stmt(&mut c, k, op) {
                out.push(c);
            }
        }
    }

    // Expression-level reductions.
    let nexprs = count_exprs(p);
    for k in 0..nexprs {
        for cand in expr_reductions(p, k) {
            out.push(cand);
        }
    }

    out
}

// ----- statement editing --------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum StmtOp {
    /// Delete the statement.
    Remove,
    /// Replace an `if` with its then-branch, or a loop with its body
    /// (keeping the counter declaration so body references still bind).
    Flatten,
    /// Set a loop bound to 1.
    BoundOne,
}

fn count_in_vec(stmts: &[Stmt]) -> usize {
    let mut n = 0;
    for s in stmts {
        n += 1;
        match s {
            Stmt::If(_, t, e) => n += count_in_vec(t) + count_in_vec(e),
            Stmt::Loop { body, .. } => n += count_in_vec(body),
            _ => {}
        }
    }
    n
}

fn count_stmts(p: &Prog) -> usize {
    p.funcs.iter().map(|f| count_in_vec(&f.body)).sum()
}

/// Applies `op` to the pre-order `target`-th statement. Returns false if
/// the target was not found or the op does not apply there.
fn edit_stmt(p: &mut Prog, target: usize, op: StmtOp) -> bool {
    let mut counter = 0usize;
    for f in &mut p.funcs {
        if edit_stmt_in_vec(&mut f.body, &mut counter, target, op) {
            return true;
        }
    }
    false
}

fn edit_stmt_in_vec(stmts: &mut Vec<Stmt>, counter: &mut usize, target: usize, op: StmtOp) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        if *counter == target {
            match op {
                StmtOp::Remove => {
                    stmts.remove(i);
                    return true;
                }
                StmtOp::Flatten => match stmts[i].clone() {
                    Stmt::If(_, then, _) => {
                        stmts.splice(i..=i, then);
                        return true;
                    }
                    Stmt::Loop { var, body, .. } => {
                        let mut repl = vec![Stmt::Decl(var, Ty::I32, Expr::Int(0))];
                        repl.extend(body);
                        stmts.splice(i..=i, repl);
                        return true;
                    }
                    _ => return false,
                },
                StmtOp::BoundOne => {
                    if let Stmt::Loop { bound, .. } = &mut stmts[i] {
                        if *bound != 1 {
                            *bound = 1;
                            return true;
                        }
                    }
                    return false;
                }
            }
        }
        *counter += 1;
        let found = match &mut stmts[i] {
            Stmt::If(_, t, e) => {
                edit_stmt_in_vec(t, counter, target, op) || edit_stmt_in_vec(e, counter, target, op)
            }
            Stmt::Loop { body, .. } => edit_stmt_in_vec(body, counter, target, op),
            _ => false,
        };
        if found {
            return true;
        }
        i += 1;
    }
    false
}

// ----- expression editing -------------------------------------------------

fn expr_children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => vec![],
        Expr::Load(_, i) => vec![i],
        Expr::Bin(_, l, r) => vec![l, r],
        Expr::Un(_, x) | Expr::Cast(_, x) => vec![x],
        Expr::Call(_, args) => args.iter().collect(),
        Expr::CallIndirect(_, i, args) => {
            let mut v: Vec<&Expr> = vec![i];
            v.extend(args.iter());
            v
        }
    }
}

fn count_expr_nodes(e: &Expr) -> usize {
    1 + expr_children(e)
        .iter()
        .map(|c| count_expr_nodes(c))
        .sum::<usize>()
}

fn for_each_expr_root<'p, F: FnMut(&'p Expr)>(p: &'p Prog, f: &mut F) {
    for (_, e) in &p.consts {
        f(e);
    }
    for (_, _, e) in &p.globals {
        f(e);
    }
    for a in &p.arrays {
        if let Some(items) = &a.init {
            for e in items {
                f(e);
            }
        }
    }
    for func in &p.funcs {
        for_each_root_in_stmts(&func.body, f);
    }
}

fn for_each_root_in_stmts<'p, F: FnMut(&'p Expr)>(stmts: &'p [Stmt], f: &mut F) {
    for s in stmts {
        match s {
            Stmt::Decl(_, _, e) | Stmt::Assign(_, e) | Stmt::Return(e) => f(e),
            Stmt::Store(_, i, v) => {
                f(i);
                f(v);
            }
            Stmt::If(c, t, e) => {
                f(c);
                for_each_root_in_stmts(t, f);
                for_each_root_in_stmts(e, f);
            }
            Stmt::Loop { body, .. } => for_each_root_in_stmts(body, f),
            Stmt::Break => {}
        }
    }
}

fn count_exprs(p: &Prog) -> usize {
    let mut n = 0;
    for_each_expr_root(p, &mut |e| n += count_expr_nodes(e));
    n
}

/// The reduction candidates for the pre-order `target`-th expression
/// node: replace it with a simple literal, promote one of its children,
/// or halve its literal value.
fn expr_reductions(p: &Prog, target: usize) -> Vec<Prog> {
    let mut replacements: Vec<Expr> = Vec::new();
    {
        let mut counter = 0usize;
        let mut found: Option<&Expr> = None;
        for_each_expr_root(p, &mut |root| {
            if found.is_none() {
                if let Some(e) = nth_node(root, &mut counter, target) {
                    found = Some(e);
                }
            }
        });
        let Some(node) = found else { return vec![] };
        match node {
            Expr::Int(v) => {
                if *v != 0 {
                    replacements.push(Expr::Int(v / 2));
                }
            }
            Expr::Float(v) => {
                if v.to_bits() != 0.0f64.to_bits() {
                    replacements.push(Expr::Float(0.0));
                }
                if !v.is_nan() && *v != 1.0 {
                    replacements.push(Expr::Float(1.0));
                }
            }
            Expr::Var(_) => {
                replacements.push(Expr::Int(0));
            }
            other => {
                replacements.push(Expr::Int(0));
                replacements.push(Expr::Int(1));
                replacements.push(Expr::Float(0.0));
                for child in expr_children(other) {
                    replacements.push(child.clone());
                }
            }
        }
    }
    replacements
        .into_iter()
        .map(|r| {
            let mut c = p.clone();
            let mut counter = 0usize;
            replace_nth(&mut c, &mut counter, target, &r);
            c
        })
        .collect()
}

fn nth_node<'e>(e: &'e Expr, counter: &mut usize, target: usize) -> Option<&'e Expr> {
    if *counter == target {
        return Some(e);
    }
    *counter += 1;
    for c in expr_children(e) {
        if let Some(found) = nth_node(c, counter, target) {
            return Some(found);
        }
    }
    None
}

fn replace_nth(p: &mut Prog, counter: &mut usize, target: usize, replacement: &Expr) {
    let mut edit = |root: &mut Expr| replace_in_expr(root, counter, target, replacement);
    for (_, e) in &mut p.consts {
        edit(e);
    }
    for (_, _, e) in &mut p.globals {
        edit(e);
    }
    for a in &mut p.arrays {
        if let Some(items) = &mut a.init {
            for e in items {
                edit(e);
            }
        }
    }
    for func in &mut p.funcs {
        replace_in_stmts(&mut func.body, counter, target, replacement);
    }
}

fn replace_in_stmts(stmts: &mut [Stmt], counter: &mut usize, target: usize, r: &Expr) {
    for s in stmts {
        match s {
            Stmt::Decl(_, _, e) | Stmt::Assign(_, e) | Stmt::Return(e) => {
                replace_in_expr(e, counter, target, r)
            }
            Stmt::Store(_, i, v) => {
                replace_in_expr(i, counter, target, r);
                replace_in_expr(v, counter, target, r);
            }
            Stmt::If(c, t, e) => {
                replace_in_expr(c, counter, target, r);
                replace_in_stmts(t, counter, target, r);
                replace_in_stmts(e, counter, target, r);
            }
            Stmt::Loop { body, .. } => replace_in_stmts(body, counter, target, r),
            Stmt::Break => {}
        }
    }
}

fn replace_in_expr(e: &mut Expr, counter: &mut usize, target: usize, r: &Expr) {
    if *counter == target {
        *e = r.clone();
        *counter += 1;
        return;
    }
    *counter += 1;
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
        Expr::Load(_, i) => replace_in_expr(i, counter, target, r),
        Expr::Bin(_, l, x) => {
            replace_in_expr(l, counter, target, r);
            replace_in_expr(x, counter, target, r);
        }
        Expr::Un(_, x) | Expr::Cast(_, x) => replace_in_expr(x, counter, target, r),
        Expr::Call(_, args) => {
            for a in args {
                replace_in_expr(a, counter, target, r);
            }
        }
        Expr::CallIndirect(_, i, args) => {
            replace_in_expr(i, counter, target, r);
            for a in args {
                replace_in_expr(a, counter, target, r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    /// Shrinking with a value-preserving predicate yields a smaller (or
    /// equal) program with the same oracle outcome.
    #[test]
    fn shrink_preserves_the_oracle_outcome() {
        let orig = generate(11);
        let src = orig.render();
        let want = crate::exec::run_source(&src).unwrap().oracle().clone();
        let keep = |p: &Prog| match crate::exec::run_source(&p.render()) {
            Ok(r) => r.oracle() == &want,
            Err(_) => false,
        };
        assert!(keep(&orig), "predicate must hold for the original");
        let small = shrink(&orig, keep, 400);
        assert!(small.render().len() <= src.len());
        assert!(keep(&small));
    }

    #[test]
    fn shrink_removes_unreferenced_items() {
        // A program whose main ignores everything shrinks to (nearly)
        // nothing under a "still returns 7" predicate.
        let orig = generate(3);
        let mut with_main = orig.clone();
        let main = with_main.funcs.last_mut().unwrap();
        main.body = vec![crate::prog::Stmt::Return(Expr::Int(7))];
        let keep = |p: &Prog| match crate::exec::run_source(&p.render()) {
            Ok(r) => r.oracle() == &crate::exec::Outcome::Value(7),
            Err(_) => false,
        };
        assert!(keep(&with_main));
        let small = shrink(&with_main, keep, 2000);
        assert!(small.consts.is_empty(), "{}", small.render());
        assert!(small.tables.is_empty(), "{}", small.render());
        assert_eq!(small.funcs.len(), 1, "{}", small.render());
    }
}
