//! The differential executor: one CLite program, every pipeline.
//!
//! A program is compiled once through the shared frontend
//! (`wasmperf_cir::compile`) and then executed by nine engines spanning
//! the paper's toolchains:
//!
//! - the CLite reference interpreter (the oracle),
//! - the wasm reference interpreter (Emscripten output, no codegen),
//! - the clanglite native backend on the CPU simulator,
//! - the Chrome and Firefox wasm JITs,
//! - the Chrome and Firefox asm.js profiles,
//! - the Chrome JIT under the `bounds` and `pku` sandbox ablations,
//!   which must be result-identical to the guard-page baseline.
//!
//! Outcomes are compared bit-exactly; traps are canonicalised to a
//! shared [`TrapClass`] so "signed division overflow" from the machine
//! and from the interpreter count as the same behaviour. Resource
//! exhaustion (fuel, stack depth) is engine-specific by design and never
//! counts as a divergence.

use core::fmt;

use wasmperf_cir::{HProgram, InterpError};
use wasmperf_cpu::{Machine, NullHost};
use wasmperf_isa::inst::TrapKind;
use wasmperf_wasm::{Instance, NoImports, Value, WasmTrap};
use wasmperf_wasmjit::{EngineProfile, SandboxModel, PKU_SWITCH_CYCLES};

/// Instruction budget per engine run. Generated programs are tiny; a run
/// that exhausts this is classified as a resource outcome, not compared.
pub const FUEL: u64 = 50_000_000;

/// The engines a program runs through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// CLite reference interpreter (the oracle).
    CliteInterp,
    /// WebAssembly reference interpreter.
    WasmInterp,
    /// clanglite native backend on the CPU simulator.
    Native,
    /// Chrome-profile wasm JIT.
    ChromeJit,
    /// Firefox-profile wasm JIT.
    FirefoxJit,
    /// Chrome-profile asm.js.
    ChromeAsmjs,
    /// Firefox-profile asm.js.
    FirefoxAsmjs,
    /// Chrome-profile wasm JIT with explicit bounds checks instead of
    /// guard pages. Must behave identically to [`Engine::ChromeJit`].
    ChromeBounds,
    /// Chrome-profile wasm JIT with guard pages plus modeled PKU
    /// domain-switch costs. Must behave identically to
    /// [`Engine::ChromeJit`].
    ChromePku,
}

impl Engine {
    /// Every engine, oracle first.
    pub const ALL: [Engine; 9] = [
        Engine::CliteInterp,
        Engine::WasmInterp,
        Engine::Native,
        Engine::ChromeJit,
        Engine::FirefoxJit,
        Engine::ChromeAsmjs,
        Engine::FirefoxAsmjs,
        Engine::ChromeBounds,
        Engine::ChromePku,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::CliteInterp => "clite-interp",
            Engine::WasmInterp => "wasm-interp",
            Engine::Native => "native",
            Engine::ChromeJit => "chrome-jit",
            Engine::FirefoxJit => "firefox-jit",
            Engine::ChromeAsmjs => "chrome-asmjs",
            Engine::FirefoxAsmjs => "firefox-asmjs",
            Engine::ChromeBounds => "chrome-bounds",
            Engine::ChromePku => "chrome-pku",
        }
    }
}

/// Canonical trap classification shared by all engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapClass {
    /// Integer division by zero.
    DivByZero,
    /// Signed division overflow or float→int range error.
    IntegerOverflow,
    /// Out-of-bounds linear-memory access.
    OutOfBounds,
    /// Indirect call to an out-of-range or null table slot.
    BadIndirectCall,
    /// Indirect call signature mismatch.
    SigMismatch,
    /// `unreachable` executed.
    Unreachable,
    /// Explicit abort.
    Abort,
    /// The syscall/import host reported an error.
    Host,
}

impl TrapClass {
    /// Canonical name (stable; used in corpus `expect:` headers).
    pub fn name(self) -> &'static str {
        match self {
            TrapClass::DivByZero => "DivByZero",
            TrapClass::IntegerOverflow => "IntegerOverflow",
            TrapClass::OutOfBounds => "OutOfBounds",
            TrapClass::BadIndirectCall => "BadIndirectCall",
            TrapClass::SigMismatch => "SigMismatch",
            TrapClass::Unreachable => "Unreachable",
            TrapClass::Abort => "Abort",
            TrapClass::Host => "Host",
        }
    }

    /// Parses a canonical name.
    pub fn parse(s: &str) -> Option<TrapClass> {
        Some(match s {
            "DivByZero" => TrapClass::DivByZero,
            "IntegerOverflow" => TrapClass::IntegerOverflow,
            "OutOfBounds" => TrapClass::OutOfBounds,
            "BadIndirectCall" => TrapClass::BadIndirectCall,
            "SigMismatch" => TrapClass::SigMismatch,
            "Unreachable" => TrapClass::Unreachable,
            "Abort" => TrapClass::Abort,
            "Host" => TrapClass::Host,
            _ => return None,
        })
    }
}

impl fmt::Display for TrapClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What one engine did with the program.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// `main` returned this i32.
    Value(i32),
    /// Execution trapped.
    Trap(TrapClass),
    /// Fuel or stack exhaustion — engine-specific, excluded from
    /// divergence comparison.
    Resource(String),
    /// The pipeline itself failed (backend compile error, bad module,
    /// missing entry). Compared by presence, not message.
    Error(String),
}

/// The comparable projection of an [`Outcome`]; `None` for resource
/// exhaustion. All `Error` outcomes compare equal: two backends failing
/// with different messages is one behaviour, not two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeKey {
    /// A returned value.
    Value(i32),
    /// A canonical trap.
    Trap(TrapClass),
    /// A pipeline failure.
    Error,
}

impl Outcome {
    /// The comparison key, or `None` if this outcome is excluded.
    pub fn key(&self) -> Option<OutcomeKey> {
        match self {
            Outcome::Value(v) => Some(OutcomeKey::Value(*v)),
            Outcome::Trap(t) => Some(OutcomeKey::Trap(*t)),
            Outcome::Error(_) => Some(OutcomeKey::Error),
            Outcome::Resource(_) => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Value(v) => write!(f, "value {v}"),
            Outcome::Trap(t) => write!(f, "trap {t}"),
            Outcome::Resource(r) => write!(f, "resource ({r})"),
            Outcome::Error(e) => write!(f, "pipeline error ({e})"),
        }
    }
}

/// The engines that disagreed with the reference outcome, by name,
/// sorted. Two divergent programs with the same signature are treated as
/// the same underlying bug by the shrinker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub Vec<&'static str>);

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.join("+"))
    }
}

/// Whether `key` from `engine` is an acceptable outcome given the
/// reference outcome. Beyond exact equality there are two modeled
/// asymmetries:
///
/// - Native stands in for C, and C has no indirect-call or memory
///   bounds checks — the table holds bare function pointers and the
///   heap is raw machine memory. An out-of-range table index or an
///   out-of-bounds access is undefined behaviour there: it may trap,
///   read the native-layout table/stack image, or even keep running on
///   corrupted state. So when the checked pipelines trap
///   BadIndirectCall or OutOfBounds, any native outcome is accepted.
/// - asm.js heap accesses are masked with
///   `next_power_of_two(mem_bytes) - 1` rather than bounds-checked
///   (the asm.js-faithful divergence documented in docs/SANDBOX.md):
///   an address past the power-of-two boundary wraps around into live
///   heap instead of trapping. Accesses in the gap between `mem_bytes`
///   and the power of two *do* trap (they stay inside the sandboxed
///   heap limit), so asm.js is only excused when the reference traps
///   OutOfBounds.
fn outcome_compatible(engine: Engine, key: OutcomeKey, reference: OutcomeKey) -> bool {
    if key == reference {
        return true;
    }
    match reference {
        OutcomeKey::Trap(TrapClass::BadIndirectCall) => engine == Engine::Native,
        OutcomeKey::Trap(TrapClass::OutOfBounds) => matches!(
            engine,
            Engine::Native | Engine::ChromeAsmjs | Engine::FirefoxAsmjs
        ),
        _ => false,
    }
}

/// Per-engine outcomes for one program.
#[derive(Debug, Clone)]
pub struct Report {
    /// `(engine, outcome)` in [`Engine::ALL`] order.
    pub outcomes: Vec<(Engine, Outcome)>,
    /// The oracle exercised behavior CLite defines but C does not
    /// (signed-remainder overflow, a bad indirect-call index or
    /// signature, or an order-sensitive operand pair — see
    /// `Interp::c_ub`), so the native pipeline is excused from
    /// comparison for this program.
    pub c_ub: bool,
}

impl Report {
    /// The oracle (CLite interpreter) outcome.
    pub fn oracle(&self) -> &Outcome {
        &self
            .outcomes
            .iter()
            .find(|(e, _)| *e == Engine::CliteInterp)
            .expect("oracle always runs")
            .1
    }

    /// True if at least two engines produced different comparable
    /// outcomes (modulo the modeled native indirect-call asymmetry).
    pub fn divergent(&self) -> bool {
        let Some(reference) = self.reference_key() else {
            return false;
        };
        self.outcomes.iter().any(|(e, o)| {
            if self.c_ub && *e == Engine::Native {
                return false;
            }
            o.key()
                .is_some_and(|k| !outcome_compatible(*e, k, reference))
        })
    }

    /// The outcome every engine is compared against: the oracle's, or
    /// the first comparable one if the oracle ran out of resources.
    fn reference_key(&self) -> Option<OutcomeKey> {
        self.oracle()
            .key()
            .or_else(|| self.outcomes.iter().find_map(|(_, o)| o.key()))
    }

    /// The divergence signature: engines that disagree with the
    /// reference (the oracle, or the first comparable engine if the
    /// oracle ran out of resources). `None` when not divergent.
    pub fn signature(&self) -> Option<Signature> {
        if !self.divergent() {
            return None;
        }
        let reference = self.reference_key()?;
        let mut names: Vec<&'static str> = self
            .outcomes
            .iter()
            .filter(|(e, o)| {
                if self.c_ub && *e == Engine::Native {
                    return false;
                }
                o.key()
                    .is_some_and(|k| !outcome_compatible(*e, k, reference))
            })
            .map(|(e, _)| e.name())
            .collect();
        names.sort_unstable();
        Some(Signature(names))
    }

    /// A one-line-per-engine description.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for (e, o) in &self.outcomes {
            s.push_str(&format!("  {:<14} {o}\n", e.name()));
        }
        s
    }
}

fn map_interp_err(e: InterpError) -> Outcome {
    match e {
        InterpError::DivByZero => Outcome::Trap(TrapClass::DivByZero),
        InterpError::IntegerOverflow => Outcome::Trap(TrapClass::IntegerOverflow),
        InterpError::OutOfBounds => Outcome::Trap(TrapClass::OutOfBounds),
        InterpError::BadIndirectCall => Outcome::Trap(TrapClass::BadIndirectCall),
        InterpError::SigMismatch => Outcome::Trap(TrapClass::SigMismatch),
        InterpError::OutOfFuel => Outcome::Resource("clite interpreter fuel".into()),
        InterpError::StackExhausted => Outcome::Resource("clite interpreter stack".into()),
        InterpError::Host(_) => Outcome::Trap(TrapClass::Host),
    }
}

fn map_wasm_trap(t: WasmTrap) -> Outcome {
    match t {
        WasmTrap::Unreachable => Outcome::Trap(TrapClass::Unreachable),
        WasmTrap::DivByZero => Outcome::Trap(TrapClass::DivByZero),
        WasmTrap::IntegerOverflow => Outcome::Trap(TrapClass::IntegerOverflow),
        WasmTrap::OutOfBoundsMemory => Outcome::Trap(TrapClass::OutOfBounds),
        WasmTrap::UndefinedElement => Outcome::Trap(TrapClass::BadIndirectCall),
        WasmTrap::IndirectCallTypeMismatch => Outcome::Trap(TrapClass::SigMismatch),
        WasmTrap::StackExhausted => Outcome::Resource("wasm interpreter stack".into()),
        WasmTrap::OutOfFuel => Outcome::Resource("wasm interpreter fuel".into()),
        WasmTrap::Host(_) => Outcome::Trap(TrapClass::Host),
    }
}

fn map_trap_kind(k: TrapKind) -> Outcome {
    match k {
        TrapKind::Unreachable => Outcome::Trap(TrapClass::Unreachable),
        TrapKind::StackOverflow => Outcome::Resource("machine stack".into()),
        TrapKind::IndirectCallOutOfBounds => Outcome::Trap(TrapClass::BadIndirectCall),
        TrapKind::IndirectCallTypeMismatch => Outcome::Trap(TrapClass::SigMismatch),
        TrapKind::DivByZero => Outcome::Trap(TrapClass::DivByZero),
        TrapKind::IntegerOverflow => Outcome::Trap(TrapClass::IntegerOverflow),
        TrapKind::MemoryOutOfBounds => Outcome::Trap(TrapClass::OutOfBounds),
        TrapKind::Abort => Outcome::Trap(TrapClass::Abort),
        TrapKind::OutOfFuel => Outcome::Resource("machine fuel".into()),
    }
}

/// Runs the oracle; the boolean reports whether the execution exercised
/// behavior CLite defines but C does not (see `Interp::c_ub`), in which
/// case native is excused from comparison.
fn run_clite(prog: &HProgram) -> (Outcome, bool) {
    let mut interp = wasmperf_cir::Interp::new(prog, wasmperf_cir::NoSyscalls);
    let outcome = match interp.run("main", &[]) {
        Ok(Some(v)) => Outcome::Value(v as u32 as i32),
        Ok(None) => Outcome::Error("main returned no value".into()),
        Err(e) => map_interp_err(e),
    };
    (outcome, interp.c_ub)
}

fn run_wasm_interp(wasm: &wasmperf_wasm::WasmModule) -> Outcome {
    let mut inst = match Instance::new(wasm, NoImports) {
        Ok(i) => i,
        Err(e) => return Outcome::Error(format!("instantiation: {e:?}")),
    };
    match inst.invoke_export("main", &[]) {
        Ok(Some(Value::I32(v))) => Outcome::Value(v),
        Ok(other) => Outcome::Error(format!("main returned {other:?}, expected i32")),
        Err(t) => map_wasm_trap(t),
    }
}

fn run_machine(module: &wasmperf_isa::Module, entry: wasmperf_isa::FuncId) -> Outcome {
    let mut m = Machine::new(module, NullHost);
    match m.run(entry, &[], FUEL) {
        Ok(out) => Outcome::Value(out.ret as u32 as i32),
        Err(e) => map_trap_kind(e.kind),
    }
}

fn run_native(prog: &HProgram) -> Outcome {
    let module = wasmperf_clanglite::compile(prog, &Default::default());
    match module.entry {
        Some(entry) => run_machine(&module, entry),
        None => Outcome::Error("native module has no entry".into()),
    }
}

fn run_jit(wasm: &wasmperf_wasm::WasmModule, profile: &EngineProfile) -> Outcome {
    let jit = match wasmperf_wasmjit::compile(wasm, profile) {
        Ok(j) => j,
        Err(e) => return Outcome::Error(format!("jit compile: {e:?}")),
    };
    match jit.module.func_by_name("main") {
        Some(id) => run_machine(&jit.module, id),
        None => Outcome::Error("jit module has no main".into()),
    }
}

/// Runs an already-lowered program through every engine.
pub fn run_all(prog: &HProgram) -> Report {
    let (oracle, c_ub) = run_clite(prog);
    let mut outcomes = vec![
        (Engine::CliteInterp, oracle),
        (Engine::Native, run_native(prog)),
    ];
    let wasm = wasmperf_emcc::compile(prog);
    if let Err(e) = wasmperf_wasm::validate(&wasm) {
        let msg = format!("wasm validation: {e:?}");
        for eng in [
            Engine::WasmInterp,
            Engine::ChromeJit,
            Engine::FirefoxJit,
            Engine::ChromeAsmjs,
            Engine::FirefoxAsmjs,
            Engine::ChromeBounds,
            Engine::ChromePku,
        ] {
            outcomes.push((eng, Outcome::Error(msg.clone())));
        }
    } else {
        outcomes.push((Engine::WasmInterp, run_wasm_interp(&wasm)));
        let jits = [
            (Engine::ChromeJit, EngineProfile::chrome()),
            (Engine::FirefoxJit, EngineProfile::firefox()),
            (Engine::ChromeAsmjs, EngineProfile::chrome_asmjs()),
            (Engine::FirefoxAsmjs, EngineProfile::firefox_asmjs()),
            (
                Engine::ChromeBounds,
                EngineProfile::chrome().with_sandbox(SandboxModel::Bounds),
            ),
            (
                Engine::ChromePku,
                EngineProfile::chrome().with_sandbox(SandboxModel::Pku {
                    switch_cycles: PKU_SWITCH_CYCLES,
                }),
            ),
        ];
        for (eng, profile) in jits {
            outcomes.push((eng, run_jit(&wasm, &profile)));
        }
    }
    Report { outcomes, c_ub }
}

/// Compiles CLite source and runs it through every engine. `Err` means
/// the shared frontend rejected the program (a generator bug, or an
/// intentionally invalid shrink candidate).
pub fn run_source(src: &str) -> Result<Report, String> {
    let prog = wasmperf_cir::compile(src)?;
    Ok(run_all(&prog))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_engines_agree_on_a_plain_program() {
        let r = run_source("fn main() -> i32 { return 5 * 8 + 2; }").unwrap();
        assert!(!r.divergent(), "{}", r.describe());
        assert_eq!(r.oracle(), &Outcome::Value(42));
        assert_eq!(r.outcomes.len(), Engine::ALL.len());
    }

    #[test]
    fn traps_are_canonical_across_engines() {
        let r = run_source("fn main() -> i32 { var z: i32 = 0; return 1 / z; }").unwrap();
        assert!(!r.divergent(), "{}", r.describe());
        assert_eq!(r.oracle(), &Outcome::Trap(TrapClass::DivByZero));
    }

    /// The outcome one engine produced.
    fn outcome_of(r: &Report, eng: Engine) -> &Outcome {
        &r.outcomes.iter().find(|(e, _)| *e == eng).unwrap().1
    }

    #[test]
    fn out_of_bounds_trap_is_compatible_across_engines() {
        // Tiny data + 128 KiB heap slack rounds to mem_bytes = 0x30000;
        // address = base + 49250*4 > 0x30000, so the oracle and every
        // checked pipeline trap. This also sits in the asm.js gap
        // [0x30000, 0x40000): the pow2 mask leaves the address in range
        // but the sandbox heap limit still traps — the heap-masking gap
        // bugfix. Native (C UB) is excused by the modeled asymmetry.
        let r = run_source(
            "array i32 A[4];\n\
             fn main() -> i32 { return A[49250]; }",
        )
        .unwrap();
        assert!(!r.divergent(), "{}", r.describe());
        assert_eq!(r.oracle(), &Outcome::Trap(TrapClass::OutOfBounds));
        for eng in [
            Engine::WasmInterp,
            Engine::ChromeBounds,
            Engine::ChromePku,
            Engine::ChromeAsmjs,
            Engine::FirefoxAsmjs,
        ] {
            assert_eq!(
                outcome_of(&r, eng),
                &Outcome::Trap(TrapClass::OutOfBounds),
                "{eng:?}"
            );
        }
    }

    #[test]
    fn page_slack_reads_zero_on_every_engine() {
        // Address well past the data segment but below mem_bytes:
        // zero-filled heap slack in every pipeline (native places its
        // table at the same page-rounded offset the wasm pipelines use).
        let r = run_source(
            "array i32 A[4];\n\
             fn main() -> i32 { return A[48000]; }",
        )
        .unwrap();
        assert!(!r.divergent(), "{}", r.describe());
        assert_eq!(r.oracle(), &Outcome::Value(0));
    }

    #[test]
    fn asmjs_pow2_wrap_is_a_documented_divergence() {
        // Address = base + 65537*4 is past the 0x40000 pow2 boundary:
        // the checked pipelines trap, but asm.js masking wraps the
        // address back into live heap — a Value outcome that
        // outcome_compatible treats as the documented asm.js asymmetry.
        let r = run_source(
            "array i32 A[4];\n\
             fn main() -> i32 { A[1] = 7; return A[65537]; }",
        )
        .unwrap();
        assert!(!r.divergent(), "{}", r.describe());
        assert_eq!(r.oracle(), &Outcome::Trap(TrapClass::OutOfBounds));
        // The wrap is not just excused — it really wraps to A[1].
        assert_eq!(outcome_of(&r, Engine::ChromeAsmjs), &Outcome::Value(7));
    }

    #[test]
    fn sandbox_ablations_match_the_guard_baseline_exactly() {
        for src in [
            "fn main() -> i32 { return 5 * 8 + 2; }",
            "array u8 B[8];\n\
             fn main() -> i32 { B[3] = 7; return B[3] + B[262144]; }",
        ] {
            let r = run_source(src).unwrap();
            let guard = outcome_of(&r, Engine::ChromeJit).clone();
            for eng in [Engine::ChromeBounds, Engine::ChromePku] {
                assert_eq!(
                    outcome_of(&r, eng),
                    &guard,
                    "{eng:?} diverged from guard on {src}"
                );
            }
        }
    }

    #[test]
    fn signature_names_the_disagreeing_engines() {
        let report = Report {
            outcomes: vec![
                (Engine::CliteInterp, Outcome::Value(1)),
                (Engine::WasmInterp, Outcome::Value(1)),
                (Engine::Native, Outcome::Value(2)),
                (Engine::ChromeJit, Outcome::Resource("fuel".into())),
            ],
            c_ub: false,
        };
        assert!(report.divergent());
        assert_eq!(report.signature().unwrap(), Signature(vec!["native"]));
    }

    #[test]
    fn resource_outcomes_never_diverge() {
        let report = Report {
            outcomes: vec![
                (Engine::CliteInterp, Outcome::Value(1)),
                (Engine::Native, Outcome::Resource("machine fuel".into())),
            ],
            c_ub: false,
        };
        assert!(!report.divergent());
        assert!(report.signature().is_none());
    }
}
