//! A structured CLite program: the unit the generator produces and the
//! shrinker mutates.
//!
//! This is deliberately *not* `wasmperf_cir::ast` — the difftest AST only
//! contains shapes the generator knows how to keep valid and terminating
//! (counter-bounded loops, masked array indices, DAG-ordered calls), and
//! it renders back to CLite source text so every candidate goes through
//! the real lexer/parser/typechecker like a hand-written program would.

use std::fmt::Write as _;

/// Scalar CLite types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// `i32`
    I32,
    /// `u32`
    U32,
    /// `i64`
    I64,
    /// `u64`
    U64,
    /// `f32`
    F32,
    /// `f64`
    F64,
}

impl Ty {
    /// All scalar types.
    pub const ALL: [Ty; 6] = [Ty::I32, Ty::U32, Ty::I64, Ty::U64, Ty::F32, Ty::F64];
    /// The integer types.
    pub const INTS: [Ty; 4] = [Ty::I32, Ty::U32, Ty::I64, Ty::U64];

    /// Source-level name.
    pub fn name(self) -> &'static str {
        match self {
            Ty::I32 => "i32",
            Ty::U32 => "u32",
            Ty::I64 => "i64",
            Ty::U64 => "u64",
            Ty::F32 => "f32",
            Ty::F64 => "f64",
        }
    }

    /// True for `f32`/`f64`.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// True for `u32`/`u64`.
    pub fn is_unsigned(self) -> bool {
        matches!(self, Ty::U32 | Ty::U64)
    }

    /// True for 64-bit types.
    pub fn is_wide(self) -> bool {
        matches!(self, Ty::I64 | Ty::U64 | Ty::F64)
    }
}

/// Array element types (scalars plus the sub-word integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Elem {
    /// `i8`
    I8,
    /// `u8`
    U8,
    /// `i16`
    I16,
    /// `u16`
    U16,
    /// A full scalar type.
    Full(Ty),
}

impl Elem {
    /// The element types the generator draws from.
    pub const ALL: [Elem; 10] = [
        Elem::I8,
        Elem::U8,
        Elem::I16,
        Elem::U16,
        Elem::Full(Ty::I32),
        Elem::Full(Ty::U32),
        Elem::Full(Ty::I64),
        Elem::Full(Ty::U64),
        Elem::Full(Ty::F32),
        Elem::Full(Ty::F64),
    ];

    /// Source-level name.
    pub fn name(self) -> &'static str {
        match self {
            Elem::I8 => "i8",
            Elem::U8 => "u8",
            Elem::I16 => "i16",
            Elem::U16 => "u16",
            Elem::Full(t) => t.name(),
        }
    }

    /// The type a load of this element produces (sub-word loads widen to
    /// `i32`, mirroring `wasmperf_cir::ast::ElemTy::load_ty`).
    pub fn load_ty(self) -> Ty {
        match self {
            Elem::I8 | Elem::U8 | Elem::I16 | Elem::U16 => Ty::I32,
            Elem::Full(t) => t,
        }
    }

    /// Storage size in bytes of one element.
    pub fn bytes(self) -> u32 {
        match self {
            Elem::I8 | Elem::U8 => 1,
            Elem::I16 | Elem::U16 => 2,
            Elem::Full(Ty::I32) | Elem::Full(Ty::U32) | Elem::Full(Ty::F32) => 4,
            Elem::Full(Ty::I64) | Elem::Full(Ty::U64) | Elem::Full(Ty::F64) => 8,
        }
    }
}

/// Expressions. Binary/unary operators are stored as their source token
/// so rendering is trivial and new operators need no enum churn.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal (any type context; negatives render as `(0 - n)`).
    Int(i64),
    /// Float literal (NaN/inf/-0.0 render as arithmetic that produces them).
    Float(f64),
    /// Local, parameter, global, or `const` reference.
    Var(String),
    /// `arr[idx]`
    Load(String, Box<Expr>),
    /// `(a OP b)`
    Bin(&'static str, Box<Expr>, Box<Expr>),
    /// `(OP a)` — `!` or `~`.
    Un(&'static str, Box<Expr>),
    /// `ty(e)`
    Cast(Ty, Box<Expr>),
    /// Direct call or intrinsic: `name(args...)`.
    Call(String, Vec<Expr>),
    /// Indirect call through a table: `tbl[idx](args...)`.
    CallIndirect(String, Box<Expr>, Vec<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name: ty = init;`
    Decl(String, Ty, Expr),
    /// `name = e;`
    Assign(String, Expr),
    /// `arr[idx] = e;`
    Store(String, Expr, Expr),
    /// `if (cond) { then } else { els }` (else omitted when empty).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// A counter-bounded loop, guaranteed to terminate:
    /// `var v = 0; while (v < bound) { body; v = v + 1; }` (or the
    /// `do..while` form). The body never assigns `var`.
    Loop {
        /// Counter variable name.
        var: String,
        /// Literal iteration bound.
        bound: i64,
        /// Render as `do { .. } while (..)` instead of `while`.
        do_while: bool,
        /// Loop body (counter increment appended by the renderer).
        body: Vec<Stmt>,
    },
    /// `break;`
    Break,
    /// `return e;`
    Return(Expr),
}

/// An array definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDef {
    /// Array name.
    pub name: String,
    /// Element type.
    pub elem: Elem,
    /// Length (a power of two, so indices can be masked in-bounds).
    pub len: u32,
    /// Optional initializer list (length must equal `len`).
    pub init: Option<Vec<Expr>>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, Ty)>,
    /// Return type.
    pub ret: Ty,
    /// Body statements (the generator guarantees every path returns).
    pub body: Vec<Stmt>,
}

/// A whole program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Prog {
    /// `const NAME = expr;` definitions (folded at compile time).
    pub consts: Vec<(String, Expr)>,
    /// `global ty name = expr;` definitions.
    pub globals: Vec<(String, Ty, Expr)>,
    /// Linear-memory arrays.
    pub arrays: Vec<ArrayDef>,
    /// Function tables: `(name, member function names)`.
    pub tables: Vec<(String, Vec<String>)>,
    /// Functions; `main` is last.
    pub funcs: Vec<FuncDef>,
}

fn render_int(v: i64) -> String {
    if v >= 0 {
        v.to_string()
    } else if v == i64::MIN {
        // `-MIN` overflows; build it as (0 - MAX) - 1.
        "(0 - 9223372036854775807 - 1)".to_string()
    } else {
        format!("(0 - {})", -v)
    }
}

fn render_float_pos(v: f64) -> String {
    let s = format!("{v:?}");
    if s.contains(['e', 'E']) {
        // The lexer only takes plain decimal forms reliably; expand.
        let mut s = format!("{v:.340}");
        while s.ends_with('0') && !s.ends_with(".0") {
            s.pop();
        }
        s
    } else {
        s
    }
}

fn render_float(v: f64) -> String {
    if v.is_nan() {
        "(0.0 / 0.0)".to_string()
    } else if v == f64::INFINITY {
        "(1.0 / 0.0)".to_string()
    } else if v == f64::NEG_INFINITY {
        "(0.0 - (1.0 / 0.0))".to_string()
    } else if v == 0.0 && v.is_sign_negative() {
        // 0.0 - 0.0 is +0.0 under round-to-nearest; multiply instead.
        "(0.0 * (0.0 - 1.0))".to_string()
    } else if v < 0.0 {
        format!("(0.0 - {})", render_float_pos(-v))
    } else {
        render_float_pos(v)
    }
}

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(v) => out.push_str(&render_int(*v)),
        Expr::Float(v) => out.push_str(&render_float(*v)),
        Expr::Var(n) => out.push_str(n),
        Expr::Load(a, i) => {
            out.push_str(a);
            out.push('[');
            render_expr(i, out);
            out.push(']');
        }
        Expr::Bin(op, l, r) => {
            out.push('(');
            render_expr(l, out);
            let _ = write!(out, " {op} ");
            render_expr(r, out);
            out.push(')');
        }
        Expr::Un(op, x) => {
            out.push('(');
            out.push_str(op);
            render_expr(x, out);
            out.push(')');
        }
        Expr::Cast(ty, x) => {
            out.push_str(ty.name());
            out.push('(');
            render_expr(x, out);
            out.push(')');
        }
        Expr::Call(f, args) => {
            out.push_str(f);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(a, out);
            }
            out.push(')');
        }
        Expr::CallIndirect(t, idx, args) => {
            out.push_str(t);
            out.push('[');
            render_expr(idx, out);
            out.push_str("](");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(a, out);
            }
            out.push(')');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn render_stmt(s: &Stmt, depth: usize, out: &mut String) {
    match s {
        Stmt::Decl(n, ty, init) => {
            indent(out, depth);
            let _ = write!(out, "var {n}: {} = ", ty.name());
            render_expr(init, out);
            out.push_str(";\n");
        }
        Stmt::Assign(n, e) => {
            indent(out, depth);
            let _ = write!(out, "{n} = ");
            render_expr(e, out);
            out.push_str(";\n");
        }
        Stmt::Store(a, i, v) => {
            indent(out, depth);
            out.push_str(a);
            out.push('[');
            render_expr(i, out);
            out.push_str("] = ");
            render_expr(v, out);
            out.push_str(";\n");
        }
        Stmt::If(c, t, e) => {
            indent(out, depth);
            out.push_str("if (");
            render_expr(c, out);
            out.push_str(") {\n");
            for s in t {
                render_stmt(s, depth + 1, out);
            }
            indent(out, depth);
            if e.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in e {
                    render_stmt(s, depth + 1, out);
                }
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::Loop {
            var,
            bound,
            do_while,
            body,
        } => {
            indent(out, depth);
            let _ = writeln!(out, "var {var}: i32 = 0;");
            indent(out, depth);
            if *do_while {
                out.push_str("do {\n");
            } else {
                let _ = writeln!(out, "while ({var} < {bound}) {{");
            }
            for s in body {
                render_stmt(s, depth + 1, out);
            }
            indent(out, depth + 1);
            let _ = writeln!(out, "{var} = {var} + 1;");
            indent(out, depth);
            if *do_while {
                let _ = writeln!(out, "}} while ({var} < {bound});");
            } else {
                out.push_str("}\n");
            }
        }
        Stmt::Break => {
            indent(out, depth);
            out.push_str("break;\n");
        }
        Stmt::Return(e) => {
            indent(out, depth);
            out.push_str("return ");
            render_expr(e, out);
            out.push_str(";\n");
        }
    }
}

impl Prog {
    /// Renders the program back to CLite source text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, e) in &self.consts {
            let _ = write!(out, "const {name} = ");
            render_expr(e, &mut out);
            out.push_str(";\n");
        }
        for (name, ty, init) in &self.globals {
            let _ = write!(out, "global {} {name} = ", ty.name());
            render_expr(init, &mut out);
            out.push_str(";\n");
        }
        for a in &self.arrays {
            match &a.init {
                None => {
                    let _ = writeln!(out, "array {} {}[{}];", a.elem.name(), a.name, a.len);
                }
                Some(items) => {
                    let _ = write!(out, "array {} {} = [", a.elem.name(), a.name);
                    for (i, e) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        render_expr(e, &mut out);
                    }
                    out.push_str("];\n");
                }
            }
        }
        for (name, members) in &self.tables {
            let _ = writeln!(out, "table {name} = [{}];", members.join(", "));
        }
        for f in &self.funcs {
            let _ = write!(out, "\nfn {}(", f.name);
            for (i, (p, ty)) in f.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{p}: {}", ty.name());
            }
            let _ = writeln!(out, ") -> {} {{", f.ret.name());
            for s in &f.body {
                render_stmt(s, 1, &mut out);
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_and_special_literals_render_as_expressions() {
        assert_eq!(render_int(-5), "(0 - 5)");
        assert_eq!(render_int(7), "7");
        assert_eq!(render_float(f64::NAN), "(0.0 / 0.0)");
        assert_eq!(render_float(-0.0), "(0.0 * (0.0 - 1.0))");
        assert_eq!(render_float(1.5), "1.5");
        assert_eq!(render_float(-2.5), "(0.0 - 2.5)");
    }

    #[test]
    fn exponent_floats_expand_to_plain_decimals() {
        let s = render_float(1e-7);
        assert!(!s.contains('e'), "{s}");
        assert_eq!(s.parse::<f64>().unwrap(), 1e-7);
    }

    #[test]
    fn renders_a_small_program() {
        let p = Prog {
            consts: vec![("K0".into(), Expr::Int(3))],
            globals: vec![("g0".into(), Ty::I32, Expr::Int(7))],
            arrays: vec![ArrayDef {
                name: "a0".into(),
                elem: Elem::I16,
                len: 8,
                init: None,
            }],
            tables: vec![],
            funcs: vec![FuncDef {
                name: "main".into(),
                params: vec![],
                ret: Ty::I32,
                body: vec![Stmt::Return(Expr::Bin(
                    "+",
                    Box::new(Expr::Var("g0".into())),
                    Box::new(Expr::Int(1)),
                ))],
            }],
        };
        let src = p.render();
        assert!(src.contains("const K0 = 3;"));
        assert!(src.contains("array i16 a0[8];"));
        assert!(src.contains("return (g0 + 1);"));
    }
}
