//! Deterministic SplitMix64 generator.
//!
//! The whole point of difftest is replayable seeds, so the RNG is a
//! fixed, dependency-free algorithm: the same seed produces the same
//! program on every platform and every build forever.

/// A SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (modulo bias is irrelevant for fuzzing).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// A uniformly chosen element of `xs`.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }
}
