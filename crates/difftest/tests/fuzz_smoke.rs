//! Fixed-seed fuzzing smoke test: a deterministic slice of the fuzz
//! loop runs on every `cargo test`, so a semantics regression in any
//! pipeline surfaces without anyone invoking the binary.

use wasmperf_difftest::{generate, run_source};

#[test]
fn fixed_seed_fuzzing_finds_no_divergence() {
    for seed in 1..=120u64 {
        let src = generate(seed).render();
        let report = run_source(&src)
            .unwrap_or_else(|e| panic!("seed {seed}: generated program rejected: {e}\n{src}"));
        assert!(
            !report.divergent(),
            "seed {seed} diverges:\n{}\n{src}",
            report.describe()
        );
    }
}

#[test]
fn traps_when_generated_are_trap_parity() {
    // Some seeds intentionally produce trapping programs; make sure a
    // healthy fraction of the smoke window runs to a value, so the test
    // above is actually comparing arithmetic and not just trap classes.
    let mut values = 0;
    for seed in 1..=120u64 {
        let src = generate(seed).render();
        if let Ok(report) = run_source(&src) {
            if matches!(report.oracle(), wasmperf_difftest::Outcome::Value(_)) {
                values += 1;
            }
        }
    }
    assert!(
        values >= 60,
        "only {values}/120 seeds produced values; generator traps too much"
    );
}
