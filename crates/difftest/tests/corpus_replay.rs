//! Replays the checked-in `corpus/` through every engine.
//!
//! Each case must (a) agree across all nine engines (modulo the
//! documented native/asm.js asymmetries) and (b) match its `expect:`
//! header. This is the regression net for the divergence bugs difftest
//! has already found — reverting one of those fixes makes the
//! corresponding case fail here.

use std::path::Path;

use wasmperf_difftest::{check_case, load_dir};

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

#[test]
fn corpus_replays_clean_on_every_engine() {
    let cases = load_dir(&corpus_dir()).expect("corpus directory loads");
    assert!(
        !cases.is_empty(),
        "corpus/ must contain at least the seeded reproducers"
    );
    for (path, case) in &cases {
        if let Err(e) = check_case(case) {
            panic!("{}: {e}", path.display());
        }
    }
}

#[test]
fn corpus_covers_the_known_divergence_bugs() {
    let cases = load_dir(&corpus_dir()).expect("corpus directory loads");
    let names: Vec<&str> = cases.iter().map(|(_, c)| c.name.as_str()).collect();
    for required in [
        "rotate64-by-zero",
        "fmin-fmax-nan-propagation",
        "fmin-fmax-signed-zero",
        "constfold-unsigned-rem",
        "constfold-shift-width",
        "indirect-call-index-evaluates-first",
        "indirect-call-args-trap-before-bad-index",
        "store-address-evaluates-before-value",
        "shift-count-survives-spilled-dest",
        "rem-signed-overflow-is-zero",
        "unsequenced-operand-native-excuse",
        "asmjs-gap-access-traps",
    ] {
        assert!(
            names.contains(&required),
            "corpus is missing required case `{required}` (have: {names:?})"
        );
    }
}
