//! The load generator: closed- and open-loop traffic against a
//! wasmperf-serve instance, latency percentiles, and the `--check`
//! cross-validation that gates the service's byte-identity contract.
//!
//! - **Closed loop** (`conns` persistent connections): each connection
//!   issues its next request as soon as the previous response lands —
//!   measures the service at its own pace.
//! - **Open loop** (fixed arrival rate, one fresh connection per
//!   request): arrivals don't wait for departures, so an over-capacity
//!   rate drives the admission queue into shedding — the way to observe
//!   backpressure (429s) rather than queueing delay.
//!
//! `--check` replays every distinct named (bench, engine, size) key
//! locally on the in-process pipeline and compares the re-rendered
//! `result` payload of a 200 response **byte for byte** — counters,
//! checksums, output files, everything.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use wasmperf_benchsuite::Size;
use wasmperf_browsix::AppendPolicy;
use wasmperf_farm::Json;
use wasmperf_harness::farm::encode_result;
use wasmperf_harness::{execute, prepare, Engine};

use crate::client::Client;

/// Traffic shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// `conns` keep-alive connections, each back-to-back.
    Closed {
        /// Concurrent persistent connections.
        conns: usize,
    },
    /// Fixed arrival rate; every request on a fresh connection.
    Open {
        /// Arrivals per second.
        rps: f64,
    },
}

/// Load-generator options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Server address (`host:port`).
    pub addr: String,
    /// Traffic shape.
    pub mode: Mode,
    /// Total requests to issue.
    pub requests: usize,
    /// Benchmark names to cycle through (empty → adhoc spin source).
    pub benches: Vec<String>,
    /// Engine wire names to cycle through.
    pub engines: Vec<String>,
    /// Workload size.
    pub size: Size,
    /// Per-request simulated deadline, if any.
    pub deadline_ms: Option<f64>,
    /// Cross-validate responses against direct in-process runs.
    pub check: bool,
    /// Compare /metrics deltas against this run's own observations.
    pub verify_metrics: bool,
    /// Require at least one 429 and nothing outside {200, 429}.
    pub expect_shed: bool,
    /// Tolerate 503s alongside 200/429 — for driving a fleet router
    /// while a shard is down. Every 429 and 503 must still carry a
    /// usable `Retry-After`, and 200s stay subject to the byte-identity
    /// checks: degraded means shed-or-retry, never wrong.
    pub tolerate_unavailable: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: String::new(),
            mode: Mode::Closed { conns: 2 },
            requests: 40,
            benches: vec!["gemm".into(), "2mm".into()],
            engines: vec!["native".into(), "chrome".into()],
            size: Size::Test,
            deadline_ms: None,
            check: false,
            verify_metrics: false,
            expect_shed: false,
            tolerate_unavailable: false,
        }
    }
}

/// One request's observation.
#[derive(Debug, Clone)]
struct Sample {
    key: (String, String),
    status: u16,
    latency_us: u64,
    /// Rendered `result` subtree of a 200 response.
    result_wire: Option<String>,
    /// The `cached` flag of a 200 response.
    cached: Option<bool>,
    /// The `syscalls` section of a 200 response:
    /// `(count, kernel_cycles, kernel_bytes)`.
    sys: Option<(u64, u64, u64)>,
    /// Transport-level failure, if the request never completed.
    error: Option<String>,
    /// Raw `Retry-After` header of a 429/503 response (None if absent).
    retry_after: Option<String>,
}

/// The aggregated outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Traffic shape used.
    pub mode: Mode,
    /// Requests issued.
    pub requests: usize,
    /// status → count.
    pub status_counts: BTreeMap<u16, u64>,
    /// Transport errors (connect/read failures).
    pub transport_errors: u64,
    /// Latency percentiles over completed requests, microseconds.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Distinct keys byte-checked against local runs.
    pub checked: usize,
    /// Byte-identity failures.
    pub mismatches: Vec<String>,
    /// Problems that should fail the run (set by the gates below).
    pub failures: Vec<String>,
}

impl Report {
    /// True when every gate passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.mismatches.is_empty()
    }

    /// The JSON document written by `--out` (schema
    /// `wasmperf-loadgen/1`).
    pub fn to_json(&self) -> Json {
        let statuses = Json::Obj(
            self.status_counts
                .iter()
                .map(|(s, n)| (s.to_string(), Json::u64(*n)))
                .collect(),
        );
        let mode = match self.mode {
            Mode::Closed { conns } => Json::Obj(vec![
                ("kind".into(), Json::Str("closed".into())),
                ("conns".into(), Json::u64(conns as u64)),
            ]),
            Mode::Open { rps } => Json::Obj(vec![
                ("kind".into(), Json::Str("open".into())),
                ("rps".into(), Json::Num(rps)),
            ]),
        };
        Json::Obj(vec![
            ("schema".into(), Json::Str("wasmperf-loadgen/1".into())),
            ("mode".into(), mode),
            ("requests".into(), Json::u64(self.requests as u64)),
            ("statuses".into(), statuses),
            ("transport_errors".into(), Json::u64(self.transport_errors)),
            (
                "latency_us".into(),
                Json::Obj(vec![
                    ("p50".into(), Json::u64(self.p50_us)),
                    ("p95".into(), Json::u64(self.p95_us)),
                    ("p99".into(), Json::u64(self.p99_us)),
                    ("max".into(), Json::u64(self.max_us)),
                ]),
            ),
            ("throughput_rps".into(), Json::Num(self.throughput_rps)),
            ("checked".into(), Json::u64(self.checked as u64)),
            (
                "mismatches".into(),
                Json::Arr(
                    self.mismatches
                        .iter()
                        .map(|m| Json::Str(m.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let statuses: Vec<String> = self
            .status_counts
            .iter()
            .map(|(code, n)| format!("{n}x {code}"))
            .collect();
        s.push_str(&format!(
            "{} requests ({}), {} transport error(s)\n",
            self.requests,
            statuses.join(", "),
            self.transport_errors,
        ));
        s.push_str(&format!(
            "latency p50 {} us, p95 {} us, p99 {} us, max {} us\n",
            self.p50_us, self.p95_us, self.p99_us, self.max_us
        ));
        s.push_str(&format!("throughput {:.1} req/s\n", self.throughput_rps));
        if self.checked > 0 {
            s.push_str(&format!(
                "checked {} key(s) against direct runs: {}\n",
                self.checked,
                if self.mismatches.is_empty() {
                    "byte-identical".to_string()
                } else {
                    format!("{} MISMATCH(ES)", self.mismatches.len())
                }
            ));
        }
        for m in self.mismatches.iter().chain(self.failures.iter()) {
            s.push_str(&format!("FAIL: {m}\n"));
        }
        s
    }
}

/// An ad-hoc CLite program used when no benchmark names are given; the
/// loop length scales the request's simulated cost.
pub fn spin_source(iters: u64) -> String {
    format!(
        "fn main() -> i32 {{\n\
         \x20   var i: i32 = 0; var s: i32 = 0;\n\
         \x20   for (i = 0; i < {iters}; i += 1) {{ s = s + i; }}\n\
         \x20   return s;\n\
         }}\n"
    )
}

fn request_body(opts: &Options, index: usize) -> (Json, (String, String)) {
    let engine = opts.engines[index % opts.engines.len()].clone();
    let mut fields = Vec::new();
    let key;
    if opts.benches.is_empty() {
        key = ("adhoc".to_string(), engine.clone());
        fields.push(("source".to_string(), Json::Str(spin_source(200_000))));
    } else {
        let bench = opts.benches[(index / opts.engines.len()) % opts.benches.len()].clone();
        key = (bench.clone(), engine.clone());
        fields.push(("bench".to_string(), Json::Str(bench)));
    }
    fields.push(("engine".to_string(), Json::Str(engine)));
    fields.push(("size".to_string(), Json::Str(opts.size.as_str().into())));
    if let Some(ms) = opts.deadline_ms {
        fields.push(("deadline_ms".to_string(), Json::Num(ms)));
    }
    (Json::Obj(fields), key)
}

fn observe(body: &Json, key: (String, String), status: u16, latency_us: u64) -> Sample {
    let (result_wire, cached, sys) = if status == 200 {
        let sys = body.get("syscalls").and_then(|s| {
            Some((
                s.get("count").and_then(Json::as_u64)?,
                s.get("kernel_cycles").and_then(Json::as_u64)?,
                s.get("kernel_bytes").and_then(Json::as_u64)?,
            ))
        });
        (
            body.get("result").map(Json::render),
            body.get("cached").and_then(|v| match v {
                Json::Bool(b) => Some(*b),
                _ => None,
            }),
            sys,
        )
    } else {
        (None, None, None)
    };
    Sample {
        key,
        status,
        latency_us,
        result_wire,
        cached,
        sys,
        error: None,
        retry_after: None,
    }
}

fn issue(client: &mut Client, opts: &Options, index: usize) -> Sample {
    let (body, key) = request_body(opts, index);
    let started = Instant::now();
    match client.post_json("/run", &body) {
        Ok(resp) => {
            let latency_us = started.elapsed().as_micros() as u64;
            let retry_after = if matches!(resp.status, 429 | 503) {
                resp.header("retry-after").map(str::to_string)
            } else {
                None
            };
            match resp.body_json() {
                Ok(json) => Sample {
                    retry_after,
                    ..observe(&json, key, resp.status, latency_us)
                },
                Err(e) => Sample {
                    key,
                    status: resp.status,
                    latency_us,
                    result_wire: None,
                    cached: None,
                    sys: None,
                    error: Some(format!("unparseable response body: {e}")),
                    retry_after,
                },
            }
        }
        Err(e) => Sample {
            key,
            status: 0,
            latency_us: started.elapsed().as_micros() as u64,
            result_wire: None,
            cached: None,
            sys: None,
            error: Some(e.to_string()),
            retry_after: None,
        },
    }
}

fn run_closed(opts: &Options, conns: usize) -> Vec<Sample> {
    let next = AtomicUsize::new(0);
    let samples = Mutex::new(Vec::with_capacity(opts.requests));
    std::thread::scope(|scope| {
        for _ in 0..conns.max(1) {
            scope.spawn(|| {
                let mut client = match Client::connect(&opts.addr) {
                    Ok(c) => c,
                    Err(e) => {
                        samples
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(Sample {
                                key: (String::new(), String::new()),
                                status: 0,
                                latency_us: 0,
                                result_wire: None,
                                cached: None,
                                sys: None,
                                error: Some(format!("connect: {e}")),
                                retry_after: None,
                            });
                        return;
                    }
                };
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= opts.requests {
                        return;
                    }
                    let sample = issue(&mut client, opts, index);
                    let transport_failed = sample.error.is_some() && sample.status == 0;
                    samples
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(sample);
                    // The server closes the connection on error/drain;
                    // reconnect for the next request.
                    if transport_failed {
                        match Client::connect(&opts.addr) {
                            Ok(c) => client = c,
                            Err(_) => return,
                        }
                    }
                }
            });
        }
    });
    samples.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// Absolute offset from the load start at which open-loop arrival
/// `index` is due: `index / rate`, computed fresh per arrival. Scheduling
/// against a pre-rounded per-arrival interval (`interval * index`) would
/// multiply the interval's nanosecond rounding error by the arrival
/// count — a cumulative drift that skews the offered rate over long
/// runs — and truncating the index to fit a `Duration * u32` multiply
/// caps how far the schedule can even reach.
fn open_loop_due(index: usize, rps: f64) -> Duration {
    Duration::from_secs_f64(index as f64 / rps.max(0.1))
}

fn run_open(opts: &Options, rps: f64) -> Vec<Sample> {
    let samples = Arc::new(Mutex::new(Vec::with_capacity(opts.requests)));
    std::thread::scope(|scope| {
        let t0 = Instant::now();
        for index in 0..opts.requests {
            let due = open_loop_due(index, rps);
            if let Some(wait) = due.checked_sub(t0.elapsed()) {
                std::thread::sleep(wait);
            }
            let samples = Arc::clone(&samples);
            scope.spawn(move || {
                let sample = match Client::connect(&opts.addr) {
                    Ok(mut client) => issue(&mut client, opts, index),
                    Err(e) => Sample {
                        key: (String::new(), String::new()),
                        status: 0,
                        latency_us: 0,
                        result_wire: None,
                        cached: None,
                        sys: None,
                        error: Some(format!("connect: {e}")),
                        retry_after: None,
                    },
                };
                samples
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(sample);
            });
        }
    });
    Arc::try_unwrap(samples)
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .unwrap_or_default()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs the whole local replay for one key: compile + execute on the
/// in-process pipeline, rendered exactly like the server renders it.
fn local_result_wire(key: &(String, String), size: Size) -> Result<String, String> {
    let (bench_name, engine_name) = key;
    let bench = wasmperf_benchsuite::all(size)
        .into_iter()
        .find(|b| &b.name == bench_name)
        .ok_or_else(|| format!("no local benchmark {bench_name:?}"))?;
    let engine =
        Engine::parse(engine_name).ok_or_else(|| format!("no local engine {engine_name:?}"))?;
    let artifact = prepare(&bench, &engine).map_err(|e| e.to_string())?;
    let result =
        execute(&bench, &engine, &artifact, AppendPolicy::Chunked4K).map_err(|e| e.to_string())?;
    Ok(encode_result(&result).render())
}

/// Fetches `/metrics` as JSON, for the `--verify-metrics` delta.
fn fetch_metrics(addr: &str) -> Result<Json, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let resp = client.get("/metrics").map_err(|e| e.to_string())?;
    if resp.status != 200 {
        return Err(format!("/metrics returned {}", resp.status));
    }
    resp.body_json()
}

/// The syscall-aggregate counters of a `/metrics` snapshot:
/// `(runs_executed, count, kernel_cycles, kernel_bytes)`.
fn metrics_syscalls(metrics: &Json) -> (u64, u64, u64, u64) {
    let field = |name: &str| {
        metrics
            .get("syscalls")
            .and_then(|s| s.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    (
        field("runs_executed"),
        field("count"),
        field("kernel_cycles"),
        field("kernel_bytes"),
    )
}

fn metrics_run_count(metrics: &Json) -> u64 {
    metrics
        .get("requests")
        .and_then(|reqs| match reqs {
            Json::Obj(fields) => Some(
                fields
                    .iter()
                    .filter(|(k, _)| k.starts_with("POST /run"))
                    .filter_map(|(_, v)| v.as_u64())
                    .sum(),
            ),
            _ => None,
        })
        .unwrap_or(0)
}

/// Runs the load generator and applies every requested gate.
pub fn run(opts: &Options) -> Report {
    let before = if opts.verify_metrics {
        fetch_metrics(&opts.addr).ok()
    } else {
        None
    };

    let t0 = Instant::now();
    let samples = match opts.mode {
        Mode::Closed { conns } => run_closed(opts, conns),
        Mode::Open { rps } => run_open(opts, rps),
    };
    let wall = t0.elapsed().as_secs_f64().max(1e-9);

    let mut status_counts: BTreeMap<u16, u64> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut transport_errors = 0u64;
    let mut failures: Vec<String> = Vec::new();
    // First 200-response wire payload per key.
    let mut wire_by_key: BTreeMap<(String, String), String> = BTreeMap::new();
    for s in &samples {
        if s.status == 0 {
            transport_errors += 1;
            if let Some(e) = &s.error {
                failures.push(format!("transport: {e}"));
            }
            continue;
        }
        *status_counts.entry(s.status).or_insert(0) += 1;
        latencies.push(s.latency_us);
        if let Some(e) = &s.error {
            failures.push(format!("{}/{}: {e}", s.key.0, s.key.1));
        }
        if let Some(wire) = &s.result_wire {
            if let Some(prev) = wire_by_key.get(&s.key) {
                if prev != wire {
                    failures.push(format!(
                        "{}/{}: two 200 responses disagreed byte-for-byte",
                        s.key.0, s.key.1
                    ));
                }
            } else {
                wire_by_key.insert(s.key.clone(), wire.clone());
            }
        }
    }
    latencies.sort_unstable();

    let mut mismatches = Vec::new();
    let mut checked = 0;
    if opts.check {
        for (key, wire) in &wire_by_key {
            if key.0 == "adhoc" {
                continue;
            }
            checked += 1;
            match local_result_wire(key, opts.size) {
                Ok(local) if &local == wire => {}
                Ok(local) => mismatches.push(format!(
                    "{}/{}: served {} bytes != local {} bytes",
                    key.0,
                    key.1,
                    wire.len(),
                    local.len()
                )),
                Err(e) => mismatches.push(format!("{}/{}: local replay failed: {e}", key.0, key.1)),
            }
        }
        if checked == 0 && !opts.benches.is_empty() {
            failures.push("--check requested but no named key got a 200 response".into());
        }
    }

    if opts.expect_shed || opts.tolerate_unavailable {
        // Every shed or unavailable response must carry a usable
        // backpressure hint: a `Retry-After` that parses as a whole
        // number of seconds >= 1.
        for s in samples.iter().filter(|s| matches!(s.status, 429 | 503)) {
            let code = s.status;
            match s.retry_after.as_deref().map(str::parse::<u64>) {
                Some(Ok(secs)) if secs >= 1 => {}
                Some(Ok(secs)) => {
                    failures.push(format!("{code} carried Retry-After {secs}, must be >= 1"))
                }
                Some(Err(_)) => failures.push(format!(
                    "{code} carried unparseable Retry-After {:?}",
                    s.retry_after.as_deref().unwrap_or_default()
                )),
                None => failures.push(format!("{code} without a Retry-After header")),
            }
        }
    }
    if opts.expect_shed {
        if status_counts.get(&429).copied().unwrap_or(0) == 0 {
            failures.push("--expect-shed: no request was shed (429)".into());
        }
        if let Some((&code, _)) = status_counts
            .iter()
            .find(|(c, _)| !(matches!(**c, 200 | 429) || opts.tolerate_unavailable && **c == 503))
        {
            failures.push(format!("--expect-shed: unexpected status {code}"));
        }
    } else if opts.tolerate_unavailable {
        if let Some((&code, &n)) = status_counts
            .iter()
            .find(|(c, _)| !matches!(**c, 200 | 429 | 503))
        {
            failures.push(format!(
                "{n} request(s) got status {code}; only 200/429/503 are tolerable while degraded"
            ));
        }
    } else if let Some((&code, &n)) = status_counts.iter().find(|(c, _)| **c != 200) {
        failures.push(format!("{n} request(s) got unexpected status {code}"));
    }

    if let Some(before) = before {
        match fetch_metrics(&opts.addr) {
            Ok(after) => {
                let delta = metrics_run_count(&after).saturating_sub(metrics_run_count(&before));
                let issued = (samples.len() as u64) - transport_errors;
                if delta != issued {
                    failures.push(format!(
                        "metrics drift: server counted {delta} /run requests, loadgen completed {issued}"
                    ));
                }
                // The syscall aggregates must grow by exactly the sum the
                // loadgen saw in its own non-cached 200 responses (cache
                // hits re-serve already-counted work and add nothing).
                let (mut runs, mut count, mut cycles, mut bytes) = (0u64, 0u64, 0u64, 0u64);
                for s in &samples {
                    if s.status != 200 || s.cached != Some(false) {
                        continue;
                    }
                    match s.sys {
                        Some((c, kc, kb)) => {
                            runs += 1;
                            count += c;
                            cycles += kc;
                            bytes += kb;
                        }
                        None => failures.push(format!(
                            "{}/{}: 200 response has no syscalls section",
                            s.key.0, s.key.1
                        )),
                    }
                }
                let b = metrics_syscalls(&before);
                let a = metrics_syscalls(&after);
                let got = (
                    a.0.saturating_sub(b.0),
                    a.1.saturating_sub(b.1),
                    a.2.saturating_sub(b.2),
                    a.3.saturating_sub(b.3),
                );
                if got != (runs, count, cycles, bytes) {
                    failures.push(format!(
                        "syscall-metrics drift: server delta (runs {}, syscalls {}, \
                         kernel_cycles {}, kernel_bytes {}) != loadgen sum (runs {runs}, \
                         syscalls {count}, kernel_cycles {cycles}, kernel_bytes {bytes})",
                        got.0, got.1, got.2, got.3
                    ));
                }
            }
            Err(e) => failures.push(format!("verify-metrics: {e}")),
        }
    }

    Report {
        mode: opts.mode,
        requests: samples.len(),
        status_counts,
        transport_errors,
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
        max_us: latencies.last().copied().unwrap_or(0),
        throughput_rps: latencies.len() as f64 / wall,
        checked,
        mismatches,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_data() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 51);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 95.0), 7);
    }

    #[test]
    fn request_bodies_cycle_the_matrix() {
        let opts = Options {
            benches: vec!["a".into(), "b".into()],
            engines: vec!["native".into(), "chrome".into()],
            ..Options::default()
        };
        let keys: Vec<(String, String)> = (0..4).map(|i| request_body(&opts, i).1).collect();
        assert_eq!(
            keys,
            vec![
                ("a".into(), "native".into()),
                ("a".into(), "chrome".into()),
                ("b".into(), "native".into()),
                ("b".into(), "chrome".into()),
            ]
        );
        let (body, _) = request_body(&opts, 0);
        assert_eq!(body.get("bench").and_then(Json::as_str), Some("a"));
        assert_eq!(body.get("size").and_then(Json::as_str), Some("test"));
    }

    #[test]
    fn spin_source_compiles_and_runs() {
        let bench = wasmperf_benchsuite::Benchmark {
            name: "adhoc".into(),
            suite: wasmperf_benchsuite::Suite::PolyBench,
            source: spin_source(10),
            inputs: vec![],
            outputs: vec![],
            replay: None,
        };
        let engine = Engine::Native;
        let artifact = prepare(&bench, &engine).unwrap();
        let out = execute(&bench, &engine, &artifact, AppendPolicy::Chunked4K).unwrap();
        assert_eq!(out.checksum, 45);
    }

    #[test]
    fn report_json_has_the_schema_and_gates() {
        let report = Report {
            mode: Mode::Open { rps: 50.0 },
            requests: 10,
            status_counts: [(200u16, 7u64), (429u16, 3u64)].into_iter().collect(),
            transport_errors: 0,
            p50_us: 100,
            p95_us: 200,
            p99_us: 300,
            max_us: 400,
            throughput_rps: 42.0,
            checked: 2,
            mismatches: vec![],
            failures: vec![],
        };
        assert!(report.ok());
        let j = report.to_json();
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("wasmperf-loadgen/1")
        );
        assert_eq!(
            j.get("statuses").unwrap().get("429").and_then(Json::as_u64),
            Some(3)
        );
        let text = report.render();
        assert!(text.contains("p95 200 us"), "{text}");
        assert!(text.contains("byte-identical"), "{text}");
    }

    #[test]
    fn open_loop_schedule_is_exact_and_drift_free() {
        // Exactly representable rate: every deadline is exact.
        for i in 0..1000 {
            assert_eq!(open_loop_due(i, 4.0), Duration::from_millis(250 * i as u64));
        }
        // Non-representable rate: the millionth arrival must still sit
        // within a microsecond of the ideal 10^6/3 s. The old
        // `interval * index` schedule multiplied the interval's
        // nanosecond rounding error by the index.
        let due = open_loop_due(1_000_000, 3.0).as_secs_f64();
        let ideal = 1_000_000.0 / 3.0;
        assert!((due - ideal).abs() < 1e-6, "due {due} vs ideal {ideal}");
        // Monotone: later arrivals are never due earlier.
        let mut last = Duration::ZERO;
        for i in 0..10_000 {
            let d = open_loop_due(i, 8_700.0);
            assert!(d >= last);
            last = d;
        }
        // The rate floor keeps a degenerate rps finite.
        assert_eq!(open_loop_due(1, 0.0), Duration::from_secs(10));
    }
}
