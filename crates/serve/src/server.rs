//! The HTTP server: accept loop, connection handling, routing, access
//! log, trace spans, and graceful drain.
//!
//! One thread accepts; each connection gets its own thread (requests are
//! simulator-bound, so connection concurrency is bounded in practice by
//! the pool, not the thread count). Backpressure lives in the exec
//! layer's bounded admission queue — a full queue turns into an immediate
//! `429 Too Many Requests` with `Retry-After`, never a hung or dropped
//! connection.
//!
//! Shutdown (`POST /shutdown` or [`ServerHandle::shutdown`]) is a drain:
//! admission closes (new runs get 503), the accept loop exits, in-flight
//! requests finish and their connections close, queued pool jobs run to
//! completion, and only then do the trace/access-log files get their
//! final flush.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use wasmperf_farm::hash::hex64;
use wasmperf_farm::Json;
use wasmperf_trace::{Span, SpanLog, TraceSession};

use crate::exec::{
    engines_fingerprint, run_response_json, ExecService, RunRequest, ServeError, SCHEMA_VERSION,
    WIRE_ENGINES,
};
use crate::http::{read_request, write_response, Request, Response};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Pool worker threads.
    pub workers: usize,
    /// Admission-queue capacity (waiting jobs) before 429s begin.
    pub queue_capacity: usize,
    /// JSONL access-log path, if any.
    pub log_path: Option<PathBuf>,
    /// Directory for Chrome-trace/JSONL span exports at shutdown, if any.
    pub trace_dir: Option<PathBuf>,
    /// Per-connection idle read timeout: a silent keep-alive client is
    /// cut (with a best-effort 408) instead of pinning a connection
    /// thread until drain.
    pub idle_timeout: Duration,
    /// Directory for the persistent result store; when set, completed
    /// default-budget runs survive restarts and are re-served as cached.
    pub results_dir: Option<PathBuf>,
    /// Shard name reported in the `/healthz` and `/metrics` identity
    /// block (a fleet router tells shards apart by it).
    pub shard: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 32,
            log_path: None,
            trace_dir: None,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            results_dir: None,
            shard: None,
        }
    }
}

/// Default idle keep-alive limit per connection: a quiet client is
/// disconnected rather than pinning a thread forever.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

struct Shared {
    exec: ExecService,
    idle_timeout: Duration,
    shard: String,
    draining: AtomicBool,
    next_id: AtomicU64,
    open_connections: AtomicUsize,
    /// Read-halves of live connections, so drain can unblock idle
    /// keep-alive reads (`shutdown(Read)` turns them into clean EOFs
    /// while responses in flight still write out).
    conn_streams: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    access_log: Option<Mutex<BufWriter<std::fs::File>>>,
    spans: Option<Mutex<SpanLog>>,
    trace_dir: Option<PathBuf>,
}

impl Shared {
    /// Flips the draining flag and closes admission + idle reads.
    /// Idempotent; returns whether this call started the drain.
    fn begin_drain(&self) -> bool {
        if self.draining.swap(true, Ordering::SeqCst) {
            return false;
        }
        self.exec.close();
        let streams = self
            .conn_streams
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for stream in streams.values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        true
    }

    fn request_id(&self) -> String {
        format!("r{}", self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    fn log_access(&self, id: &str, method: &str, path: &str, status: u16, us: u64) {
        let Some(log) = &self.access_log else { return };
        let line = Json::Obj(vec![
            ("id".into(), Json::Str(id.to_string())),
            ("method".into(), Json::Str(method.to_string())),
            ("path".into(), Json::Str(path.to_string())),
            ("status".into(), Json::u64(u64::from(status))),
            ("us".into(), Json::u64(us)),
            ("depth".into(), Json::u64(self.exec.depth() as u64)),
        ])
        .render();
        let mut w = log.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }

    fn log_span(&self, id: &str, name: &str, start_us: u64, dur_us: u64) {
        let Some(spans) = &self.spans else { return };
        let mut log = spans.lock().unwrap_or_else(PoisonError::into_inner);
        log.push(Span {
            name: format!("{id}/{name}"),
            cat: "serve".into(),
            start_us,
            dur_us,
        });
    }

    fn span_now(&self) -> u64 {
        match &self.spans {
            Some(spans) => spans
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .now_us(),
            None => 0,
        }
    }

    /// The shard identity block shared by `/healthz` and `/metrics`:
    /// enough for a router (or `loadgen --verify-metrics`) to tell
    /// shards apart and to see whether a restart came up warm.
    fn identity_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.shard.clone())),
            ("schema_version".into(), Json::u64(SCHEMA_VERSION)),
            ("engines".into(), Json::Str(hex64(engines_fingerprint()))),
            ("engine_count".into(), Json::u64(WIRE_ENGINES.len() as u64)),
            (
                "result_store".into(),
                match self.exec.store_path() {
                    Some(path) => Json::Str(path.display().to_string()),
                    None => Json::Null,
                },
            ),
            (
                "store_loaded".into(),
                Json::u64(self.exec.store_loaded() as u64),
            ),
            (
                "runs_since_start".into(),
                Json::u64(self.exec.metrics.runs_executed()),
            ),
        ])
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`ServerHandle::shutdown`] + [`ServerHandle::join`] (or let a client
/// `POST /shutdown`).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts the drain: closes admission and wakes the accept loop.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared, self.addr);
    }

    /// Waits until the drain completes: accept loop exited, every
    /// connection closed, queued jobs finished, exports written.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        while self.shared.open_connections.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Connection threads are gone, so no new submissions: wait out
        // the queued jobs, then export.
        while self.shared.exec.depth() > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        export_traces(&self.shared);
    }
}

fn begin_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.begin_drain() {
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(addr);
    }
}

fn export_traces(shared: &Shared) {
    let (Some(spans), Some(dir)) = (&shared.spans, &shared.trace_dir) else {
        return;
    };
    let log = spans.lock().unwrap_or_else(PoisonError::into_inner);
    let mut session = TraceSession::new("serve", "http");
    session.spans = log.spans.clone();
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join("serve.trace.json"), session.chrome_trace());
    let _ = std::fs::write(dir.join("serve.spans.jsonl"), session.jsonl());
}

/// Binds and starts the server; returns once the socket is listening.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let access_log = match &config.log_path {
        None => None,
        Some(path) => {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            Some(Mutex::new(BufWriter::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )))
        }
    };
    let mut exec = ExecService::new(config.workers, config.queue_capacity);
    if let Some(dir) = &config.results_dir {
        exec = exec.with_store(dir)?;
    }
    let shared = Arc::new(Shared {
        exec,
        idle_timeout: config.idle_timeout,
        shard: config.shard.clone().unwrap_or_else(|| "serve".into()),
        draining: AtomicBool::new(false),
        next_id: AtomicU64::new(0),
        open_connections: AtomicUsize::new(0),
        conn_streams: Mutex::new(std::collections::HashMap::new()),
        next_conn: AtomicU64::new(0),
        access_log,
        spans: config
            .trace_dir
            .as_ref()
            .map(|_| Mutex::new(SpanLog::new())),
        trace_dir: config.trace_dir.clone(),
    });

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Responses are written in a few small chunks; without
            // nodelay, Nagle + the client's delayed ACK turn every
            // request into a ~40 ms stall.
            let _ = stream.set_nodelay(true);
            let conn_shared = Arc::clone(&accept_shared);
            conn_shared.open_connections.fetch_add(1, Ordering::AcqRel);
            let conn_id = conn_shared.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                conn_shared
                    .conn_streams
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(conn_id, clone);
            }
            // A drain that started between the accept and the registry
            // insert must still cut this connection's idle reads.
            if conn_shared.draining.load(Ordering::SeqCst) {
                let _ = stream.shutdown(std::net::Shutdown::Read);
            }
            std::thread::spawn(move || {
                let addr = stream.local_addr();
                handle_connection(&conn_shared, stream);
                conn_shared
                    .conn_streams
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&conn_id);
                conn_shared.open_connections.fetch_sub(1, Ordering::AcqRel);
                // A /shutdown handled on this connection must still wake
                // the accept loop even if the wake connect raced.
                if conn_shared.draining.load(Ordering::SeqCst) {
                    if let Ok(a) = addr {
                        let _ = TcpStream::connect(a);
                    }
                }
            });
        }
    });

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.idle_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            // Clean close between requests.
            Ok(None) => return,
            Err(e) => {
                match e.kind() {
                    // Parse errors get a 400 on a best-effort basis.
                    std::io::ErrorKind::InvalidData => {
                        let resp = Response::json(
                            400,
                            &Json::Obj(vec![("error".into(), Json::Str(e.to_string()))]),
                        );
                        let _ = write_response(&mut writer, &resp, false);
                    }
                    // The idle read timeout fired (reported as either
                    // kind, platform-dependent): tell the silent client
                    // why it's being cut, then free the slot.
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                        let resp = Response::json(
                            408,
                            &Json::Obj(vec![(
                                "error".into(),
                                Json::Str("idle timeout: no request received".into()),
                            )]),
                        );
                        let _ = write_response(&mut writer, &resp, false);
                    }
                    // Resets and the like just close.
                    _ => {}
                }
                return;
            }
        };
        let started = Instant::now();
        let span_start = shared.span_now();
        let id = shared.request_id();
        let resp = route(shared, &id, &req);
        let us = started.elapsed().as_micros() as u64;
        let endpoint = format!("{} {}", req.method, req.path);
        shared.exec.metrics.record(&endpoint, resp.status, us);
        shared.log_access(&id, &req.method, &req.path, resp.status, us);
        shared.log_span(&id, &format!("{} {}", req.method, req.path), span_start, us);
        // Draining closes keep-alive so clients re-resolve promptly.
        let keep_alive = req.keep_alive() && !shared.draining.load(Ordering::SeqCst);
        if write_response(&mut writer, &resp, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

fn route(shared: &Shared, id: &str, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            &Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                (
                    "draining".into(),
                    Json::Bool(shared.draining.load(Ordering::SeqCst)),
                ),
                ("shard".into(), shared.identity_json()),
            ]),
        ),
        ("GET", "/metrics") => {
            let (builds, hits) = shared.exec.artifact_stats();
            let mut snapshot = shared.exec.metrics.to_json(
                shared.exec.queued(),
                shared.exec.active(),
                shared.exec.workers(),
                builds,
                hits,
            );
            if let Json::Obj(fields) = &mut snapshot {
                fields.push(("shard".into(), shared.identity_json()));
            }
            Response::json(200, &snapshot)
        }
        ("POST", "/run") => match parse_body(req)
            .and_then(|body| RunRequest::from_json(&body).map_err(ServeError::BadRequest))
        {
            Err(e) => error_response(&e),
            Ok(run_req) => match shared.exec.run(&run_req) {
                Ok(out) => Response::json(200, &run_response_json(id, &out)),
                Err(e) => error_response(&e),
            },
        },
        ("POST", "/report") => match parse_body(req).and_then(|body| shared.exec.report(&body)) {
            Ok(report) => Response::json(200, &report),
            Err(e) => error_response(&e),
        },
        ("POST", "/shutdown") => {
            // Start the drain; the post-response hook in the connection
            // thread wakes the accept loop.
            shared.begin_drain();
            Response::json(200, &Json::Obj(vec![("draining".into(), Json::Bool(true))]))
        }
        (_, "/healthz" | "/metrics" | "/run" | "/report" | "/shutdown") => error_response_status(
            405,
            &format!("method {} not allowed on {}", req.method, req.path),
        ),
        (_, path) => error_response_status(404, &format!("no such endpoint {path}")),
    }
}

fn parse_body(req: &Request) -> Result<Json, ServeError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::BadRequest("body is not UTF-8".into()))?;
    Json::parse(text.trim())
        .map_err(|e| ServeError::BadRequest(format!("body is not valid JSON: {e}")))
}

fn error_response(e: &ServeError) -> Response {
    let resp = Response::json(e.status(), &e.to_json());
    match e {
        ServeError::Rejected { retry_after_s, .. } => {
            resp.with_header("Retry-After", &retry_after_s.to_string())
        }
        // A draining shard is a transient condition from the fleet's
        // point of view: tell clients (and the router) when to retry.
        ServeError::Closed => resp.with_header("Retry-After", "1"),
        _ => resp,
    }
}

fn error_response_status(status: u16, message: &str) -> Response {
    Response::json(
        status,
        &Json::Obj(vec![("error".into(), Json::Str(message.to_string()))]),
    )
}
