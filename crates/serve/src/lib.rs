//! wasmperf-serve: the networked benchmark-execution service.
//!
//! The paper's harness runs every (benchmark × engine) job in one
//! process. This crate puts that pipeline behind a wire protocol, turning
//! the simulator into a shared *measurement service* — multiple clients
//! submit runs, the service multiplexes them over the farm worker pool
//! and content-addressed caches, and overload becomes explicit
//! backpressure instead of unbounded queueing:
//!
//! - [`http`]: a dependency-free HTTP/1.1 codec over `std::net`
//!   (`Content-Length` bodies, keep-alive) — both the server and client
//!   halves, so they share one framing implementation;
//! - [`exec`]: request parsing, deadline→fuel mapping
//!   (`deadline_ms × 3.5 M instructions/ms`, plus a wall-clock safety
//!   timeout), and execution over [`ServicePool`] + [`ArtifactCache`];
//!   identical submissions compile exactly once and completed
//!   default-budget runs are served from a result cache;
//! - [`server`]: the accept loop, routing (`POST /run`, `POST /report`,
//!   `GET /metrics`, `GET /healthz`, `POST /shutdown`), request IDs
//!   threaded into a JSONL access log and wasmperf-trace spans, and
//!   graceful drain;
//! - [`metrics`]: per-endpoint counters, a log₂ latency histogram, cache
//!   hit rates, shed/deadline tallies;
//! - [`client`] / [`loadgen`]: the keep-alive client and the closed-/
//!   open-loop load generator whose `--check` mode gates the service's
//!   core contract — a served `result` payload is **byte-identical** to a
//!   direct in-process run.
//!
//! [`ServicePool`]: wasmperf_farm::ServicePool
//! [`ArtifactCache`]: wasmperf_farm::ArtifactCache

pub mod client;
pub mod exec;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod server;

pub use client::Client;
pub use exec::{
    engines_fingerprint, fuel_for_deadline, ExecService, Registry, RunRequest, ServeError,
    FUEL_PER_MS, SCHEMA_VERSION, WIRE_ENGINES,
};
pub use http::{Request, Response};
pub use metrics::{latency_json, Metrics};
pub use server::{start, ServerConfig, ServerHandle, DEFAULT_IDLE_TIMEOUT};
