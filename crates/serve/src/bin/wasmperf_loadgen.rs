//! The wasmperf-loadgen client binary.
//!
//! ```text
//! wasmperf-loadgen --addr HOST:PORT [--requests N]
//!                  [--conns N | --rate RPS]
//!                  [--benches a,b,... | --adhoc] [--engines x,y,...]
//!                  [--size test|ref] [--deadline-ms MS]
//!                  [--check] [--verify-metrics] [--expect-shed]
//!                  [--tolerate-unavailable]
//!                  [--quick] [--shutdown] [--out FILE]
//! ```
//!
//! Exit status is nonzero on any transport error, any unexpected
//! non-2xx status, any `--check` byte mismatch, or a failed
//! `--expect-shed`/`--verify-metrics` gate.

use wasmperf_benchsuite::Size;
use wasmperf_serve::loadgen::{run, Mode, Options};
use wasmperf_serve::Client;

fn usage() -> ! {
    eprintln!(
        "usage: wasmperf-loadgen --addr HOST:PORT [options]\n\
         --requests N       total requests (default 40)\n\
         --conns N          closed loop over N keep-alive connections (default 2)\n\
         --rate RPS         open loop at RPS arrivals/s (fresh connection each)\n\
         --benches a,b      benchmark names to cycle (default gemm,2mm)\n\
         --adhoc            submit an ad-hoc spin source instead of names\n\
         --engines x,y      engine names to cycle (default native,chrome)\n\
         --size test|ref    workload size (default test)\n\
         --deadline-ms MS   per-request simulated deadline (fractional ok)\n\
         --check            byte-compare responses against direct local runs\n\
         --verify-metrics   compare /metrics deltas (request counts and\n\
         \x20                  syscall aggregates) with observed responses\n\
         --expect-shed      require >=1 429 and only 200/429 statuses\n\
         --tolerate-unavailable  also accept 503s (degraded fleet); every\n\
         \x20                  429/503 must still carry Retry-After >= 1\n\
         --quick            small preset: 2 conns, 24 requests, --check\n\
         --shutdown         POST /shutdown after the run\n\
         --out FILE         write the JSON report (wasmperf-loadgen/1)"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = Options::default();
    let mut out: Option<std::path::PathBuf> = None;
    let mut shutdown = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--addr" => opts.addr = value(),
            "--requests" => opts.requests = value().parse().unwrap_or_else(|_| usage()),
            "--conns" => {
                opts.mode = Mode::Closed {
                    conns: value().parse().unwrap_or_else(|_| usage()),
                }
            }
            "--rate" => {
                opts.mode = Mode::Open {
                    rps: value().parse().unwrap_or_else(|_| usage()),
                }
            }
            "--benches" => opts.benches = value().split(',').map(str::to_string).collect(),
            "--adhoc" => opts.benches.clear(),
            "--engines" => opts.engines = value().split(',').map(str::to_string).collect(),
            "--size" => opts.size = Size::parse(&value()).unwrap_or_else(|| usage()),
            "--deadline-ms" => opts.deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--check" => opts.check = true,
            "--verify-metrics" => opts.verify_metrics = true,
            "--expect-shed" => opts.expect_shed = true,
            "--tolerate-unavailable" => opts.tolerate_unavailable = true,
            "--quick" => {
                opts.mode = Mode::Closed { conns: 2 };
                opts.requests = 24;
                opts.check = true;
            }
            "--shutdown" => shutdown = true,
            "--out" => out = Some(value().into()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if opts.addr.is_empty() {
        eprintln!("wasmperf-loadgen: --addr is required");
        usage();
    }

    let report = run(&opts);
    print!("{}", report.render());
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, report.to_json().render() + "\n") {
            eprintln!("wasmperf-loadgen: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("report written to {}", path.display());
    }
    if shutdown {
        match Client::connect(&opts.addr) {
            Ok(mut c) => {
                let _ = c.request("POST", "/shutdown", b"");
            }
            Err(e) => eprintln!("wasmperf-loadgen: shutdown connect failed: {e}"),
        }
    }
    std::process::exit(if report.ok() { 0 } else { 1 });
}
