//! The wasmperf-serve server binary.
//!
//! ```text
//! wasmperf-serve [--port N] [--workers N] [--queue N]
//!                [--log FILE] [--trace-dir DIR]
//!                [--results DIR] [--name SHARD] [--idle-timeout SECS]
//! ```
//!
//! Binds 127.0.0.1 (`--port 0` picks an ephemeral port and prints it),
//! then serves until a client POSTs `/shutdown`, draining gracefully:
//! in-flight and queued runs complete, the access log and trace exports
//! flush, and the process exits 0.

use wasmperf_serve::{start, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: wasmperf-serve [--port N] [--workers N] [--queue N]\n\
         \x20                     [--log FILE] [--trace-dir DIR]\n\
         \x20                     [--results DIR] [--name SHARD] [--idle-timeout SECS]\n\
         --port N       listen port on 127.0.0.1 (0 = ephemeral; default 8377)\n\
         --workers N    execution worker threads (default 2)\n\
         --queue N      admission-queue capacity before 429s (default 32)\n\
         --log FILE     JSONL access log\n\
         --trace-dir D  write Chrome-trace/JSONL request spans at shutdown\n\
         --results DIR  persistent result store; restarts answer seen keys warm\n\
         --name SHARD   shard name in the /healthz and /metrics identity block\n\
         --idle-timeout SECS  cut silent keep-alive connections (default 60)"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig::default();
    let mut port: u16 = 8377;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--port" => port = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => config.workers = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => config.queue_capacity = value().parse().unwrap_or_else(|_| usage()),
            "--log" => config.log_path = Some(value().into()),
            "--trace-dir" => config.trace_dir = Some(value().into()),
            "--results" => config.results_dir = Some(value().into()),
            "--name" => config.shard = Some(value()),
            "--idle-timeout" => {
                let secs: u64 = value().parse().unwrap_or_else(|_| usage());
                config.idle_timeout = std::time::Duration::from_secs(secs.max(1));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    config.addr = format!("127.0.0.1:{port}");
    let handle = match start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("wasmperf-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // The port line is the startup contract scripts wait for.
    println!("wasmperf-serve listening on {}", handle.addr());
    handle.join();
    eprintln!("wasmperf-serve: drained, exiting");
}
