//! Service counters: per-endpoint request/status counts, a log₂ latency
//! histogram, run-level syscall aggregates, cache accounting, and
//! shed/deadline tallies.
//!
//! The latency histogram is the shared [`Log2Hist`] from wasmperf-trace —
//! the same type the syscall profiler uses for per-call cycle
//! distributions — so bucket semantics (and their tests) live in one
//! place.
//!
//! Everything is behind one mutex — the service is request-bound, not
//! counter-bound, so contention here is negligible and a single lock
//! keeps `/metrics` snapshots internally consistent (no torn reads
//! between related counters).

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};
use wasmperf_farm::Json;
use wasmperf_trace::Log2Hist;

#[derive(Default)]
struct Inner {
    /// (endpoint, status) → request count.
    by_endpoint: BTreeMap<(String, u16), u64>,
    /// Latency histogram over all requests, in microseconds.
    hist: Log2Hist,
    /// Requests rejected by the admission queue (429).
    shed: u64,
    /// Runs that exhausted their simulated-time (fuel) deadline.
    deadline_sim: u64,
    /// Runs that exceeded their wall-clock safety timeout.
    deadline_wall: u64,
    /// Result-cache hits (whole stored runs, not artifacts).
    result_hits: u64,
    /// Result-cache misses.
    result_misses: u64,
    /// The subset of result hits served from the persistent store (a
    /// warm restart) rather than process memory.
    store_hits: u64,
    /// Deepest pool depth observed at admission time.
    max_depth: usize,
    /// Runs actually executed (cache hits excluded) — the denominator
    /// for the syscall aggregates below.
    runs_executed: u64,
    /// Kernel syscalls across all executed runs.
    syscalls: u64,
    /// Kernel cycles (transport + service + fs-copy) across executed runs.
    kernel_cycles: u64,
    /// Payload bytes marshalled through the kernel across executed runs.
    kernel_bytes: u64,
    /// Worker-side execution time (µs) summed over executed runs — the
    /// observed service time behind the `Retry-After` backpressure hint.
    exec_us: u64,
}

/// Shared, thread-safe metrics for one server instance.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    /// A zeroed metrics table.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one completed request.
    pub fn record(&self, endpoint: &str, status: u16, latency_us: u64) {
        let mut m = self.lock();
        *m.by_endpoint
            .entry((endpoint.to_string(), status))
            .or_insert(0) += 1;
        m.hist.record(latency_us);
        if status == 429 {
            m.shed += 1;
        }
    }

    /// Records the kernel-side accounting of one *executed* run (cache
    /// hits don't call this: they re-serve work already counted).
    pub fn record_run_syscalls(&self, syscalls: u64, kernel_cycles: u64, kernel_bytes: u64) {
        let mut m = self.lock();
        m.runs_executed += 1;
        m.syscalls += syscalls;
        m.kernel_cycles += kernel_cycles;
        m.kernel_bytes += kernel_bytes;
    }

    /// Records one executed run's worker-side execution time.
    pub fn observe_exec_us(&self, exec_us: u64) {
        self.lock().exec_us += exec_us;
    }

    /// Mean worker-side execution time (µs) over executed runs — the
    /// modeled per-job service time. 0 before the first run completes.
    pub fn mean_exec_us(&self) -> f64 {
        let m = self.lock();
        if m.runs_executed == 0 {
            0.0
        } else {
            m.exec_us as f64 / m.runs_executed as f64
        }
    }

    /// Records the admission-time pool depth of an accepted run.
    pub fn observe_depth(&self, depth: usize) {
        let mut m = self.lock();
        m.max_depth = m.max_depth.max(depth);
    }

    /// Counts one fuel-deadline expiry.
    pub fn count_deadline_sim(&self) {
        self.lock().deadline_sim += 1;
    }

    /// Counts one wall-clock-timeout expiry.
    pub fn count_deadline_wall(&self) {
        self.lock().deadline_wall += 1;
    }

    /// Counts one result-cache lookup.
    pub fn count_result_lookup(&self, hit: bool) {
        let mut m = self.lock();
        if hit {
            m.result_hits += 1;
        } else {
            m.result_misses += 1;
        }
    }

    /// Counts one result-cache hit that came from the persistent store.
    pub fn count_store_hit(&self) {
        self.lock().store_hits += 1;
    }

    /// Total requests recorded, across all endpoints and statuses.
    pub fn total_requests(&self) -> u64 {
        self.lock().by_endpoint.values().sum()
    }

    /// Runs executed since process start (cache hits excluded) — the
    /// "runs since start" field of the shard identity block.
    pub fn runs_executed(&self) -> u64 {
        self.lock().runs_executed
    }

    /// The `/metrics` JSON snapshot. `queued`/`active`/`workers` are the
    /// pool's live values; `artifact_*` come from the artifact cache.
    pub fn to_json(
        &self,
        queued: usize,
        active: usize,
        workers: usize,
        artifact_builds: u64,
        artifact_hits: u64,
    ) -> Json {
        let m = self.lock();
        let requests = Json::Obj(
            m.by_endpoint
                .iter()
                .map(|((ep, status), n)| (format!("{ep} {status}"), Json::u64(*n)))
                .collect(),
        );
        Json::Obj(vec![
            ("requests".into(), requests),
            ("latency".into(), latency_json(&m.hist)),
            (
                "syscalls".into(),
                Json::Obj(vec![
                    ("runs_executed".into(), Json::u64(m.runs_executed)),
                    ("count".into(), Json::u64(m.syscalls)),
                    ("kernel_cycles".into(), Json::u64(m.kernel_cycles)),
                    ("kernel_bytes".into(), Json::u64(m.kernel_bytes)),
                ]),
            ),
            ("shed".into(), Json::u64(m.shed)),
            ("deadline_sim".into(), Json::u64(m.deadline_sim)),
            ("deadline_wall".into(), Json::u64(m.deadline_wall)),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("artifact_builds".into(), Json::u64(artifact_builds)),
                    ("artifact_hits".into(), Json::u64(artifact_hits)),
                    ("result_hits".into(), Json::u64(m.result_hits)),
                    ("result_misses".into(), Json::u64(m.result_misses)),
                    ("store_hits".into(), Json::u64(m.store_hits)),
                ]),
            ),
            (
                "pool".into(),
                Json::Obj(vec![
                    ("queued".into(), Json::u64(queued as u64)),
                    ("active".into(), Json::u64(active as u64)),
                    ("queue_depth".into(), Json::u64((queued + active) as u64)),
                    ("max_depth".into(), Json::u64(m.max_depth as u64)),
                    ("workers".into(), Json::u64(workers as u64)),
                ]),
            ),
        ])
    }
}

/// The `latency` section of `/metrics`, rendered from a histogram. The
/// human-oriented fields (`mean_us`, `lt_*us` bucket counts) ride next
/// to the exact machine-mergeable wire form under `hist`, which is what
/// the fleet router parses, [`Log2Hist::merge`]s across shards, and
/// re-renders through this same function for the fleet aggregate.
pub fn latency_json(hist: &Log2Hist) -> Json {
    let buckets = hist
        .nonzero()
        .map(|(i, b)| (format!("lt_{}us", 1u64 << (i + 1)), Json::u64(b.count)))
        .collect();
    Json::Obj(vec![
        ("count".into(), Json::u64(hist.count())),
        ("sum_us".into(), Json::u64(hist.sum())),
        ("mean_us".into(), Json::Num(hist.mean())),
        ("buckets".into(), Json::Obj(buckets)),
        ("hist".into(), hist.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_section_carries_an_exact_mergeable_hist() {
        let m = Metrics::new();
        m.record("POST /run", 200, 1500);
        m.record("POST /run", 200, 900);
        let j = m.to_json(0, 0, 1, 0, 0);
        let wire = j.get("latency").and_then(|l| l.get("hist")).unwrap();
        let hist = Log2Hist::from_json(wire).unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum(), 2400);
        // Round-tripping through latency_json is lossless.
        assert_eq!(latency_json(&hist), j.get("latency").unwrap().clone());
    }

    #[test]
    fn snapshot_reflects_recorded_requests() {
        let m = Metrics::new();
        m.record("POST /run", 200, 1500);
        m.record("POST /run", 200, 900);
        m.record("POST /run", 429, 10);
        m.record("GET /metrics", 200, 50);
        m.observe_depth(3);
        m.count_deadline_sim();
        m.count_result_lookup(true);
        m.count_result_lookup(false);
        assert_eq!(m.total_requests(), 4);
        let j = m.to_json(1, 0, 2, 5, 7);
        let reqs = j.get("requests").unwrap();
        assert_eq!(reqs.get("POST /run 200").and_then(Json::as_u64), Some(2));
        assert_eq!(reqs.get("POST /run 429").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("shed").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("deadline_sim").and_then(Json::as_u64), Some(1));
        let lat = j.get("latency").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(4));
        assert_eq!(lat.get("sum_us").and_then(Json::as_u64), Some(2460));
        // 1500µs is in [1024, 2048), 900µs in [512, 1024); the labels
        // carry each bucket's (exclusive) upper bound.
        let buckets = lat.get("buckets").unwrap();
        assert_eq!(buckets.get("lt_2048us").and_then(Json::as_u64), Some(1));
        assert_eq!(buckets.get("lt_1024us").and_then(Json::as_u64), Some(1));
        let cache = j.get("cache").unwrap();
        assert_eq!(cache.get("artifact_builds").and_then(Json::as_u64), Some(5));
        assert_eq!(cache.get("result_hits").and_then(Json::as_u64), Some(1));
        let pool = j.get("pool").unwrap();
        assert_eq!(pool.get("max_depth").and_then(Json::as_u64), Some(3));
        assert_eq!(pool.get("workers").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn syscall_aggregates_accumulate_over_executed_runs() {
        let m = Metrics::new();
        let fresh = m.to_json(0, 0, 1, 0, 0);
        let sys = fresh.get("syscalls").unwrap();
        assert_eq!(sys.get("runs_executed").and_then(Json::as_u64), Some(0));
        assert_eq!(sys.get("count").and_then(Json::as_u64), Some(0));

        m.record_run_syscalls(12, 50_000, 4096);
        m.record_run_syscalls(3, 13_800, 128);
        let j = m.to_json(0, 0, 1, 0, 0);
        let sys = j.get("syscalls").unwrap();
        assert_eq!(sys.get("runs_executed").and_then(Json::as_u64), Some(2));
        assert_eq!(sys.get("count").and_then(Json::as_u64), Some(15));
        assert_eq!(
            sys.get("kernel_cycles").and_then(Json::as_u64),
            Some(63_800)
        );
        assert_eq!(sys.get("kernel_bytes").and_then(Json::as_u64), Some(4_224));
    }
}
