//! A minimal, dependency-free HTTP/1.1 codec over `std::io` streams.
//!
//! Exactly the subset the benchmark service needs: request/status lines,
//! headers, `Content-Length` bodies, and keep-alive. No chunked encoding,
//! no multipart, no TLS. Both directions are here — [`read_request`] /
//! [`write_response`] for the server, [`write_request`] /
//! [`read_response`] for the load generator and tests — so the two sides
//! can never drift apart on framing.

use std::io::{self, BufRead, Write};

/// Upper bound on one header line (request line included).
const MAX_LINE_BYTES: usize = 16 * 1024;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 64;
/// Upper bound on a request or response body.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path including any query string, as sent.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Decoded body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

/// One HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length`/`Connection` are added by the
    /// writer; names here are sent as given).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// defaults to yes; `Connection: close` opts out).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &wasmperf_farm::Json) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: (body.render() + "\n").into_bytes(),
        }
    }

    /// This response with an extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body parsed as JSON.
    pub fn body_json(&self) -> Result<wasmperf_farm::Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|e| e.to_string())?;
        wasmperf_farm::Json::parse(text.trim_end())
    }
}

/// The standard reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one CRLF (or bare-LF) terminated line, bounded by
/// [`MAX_LINE_BYTES`].
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(bad("connection closed mid-line"));
            }
            _ => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| bad("non-UTF-8 header line"));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(bad("header line too long"));
                }
            }
        }
    }
}

fn read_headers(r: &mut impl BufRead) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| bad("connection closed in headers"))?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn content_length(headers: &[(String, String)]) -> io::Result<usize> {
    match headers.iter().find(|(k, _)| k == "content-length") {
        None => Ok(0),
        Some((_, v)) => {
            let n: usize = v.parse().map_err(|_| bad("bad Content-Length"))?;
            if n > MAX_BODY_BYTES {
                return Err(bad("body too large"));
            }
            Ok(n)
        }
    }
}

fn read_body(r: &mut impl BufRead, len: usize) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Reads one request. `Ok(None)` means the peer closed the connection
/// cleanly between requests (normal keep-alive termination).
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => return Err(bad("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let headers = read_headers(r)?;
    let body = read_body(r, content_length(&headers)?)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    }))
}

/// Writes one response, framing the body with `Content-Length` and
/// announcing the connection's fate.
pub fn write_response(w: &mut impl Write, resp: &Response, keep_alive: bool) -> io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status))?;
    write!(w, "Content-Length: {}\r\n", resp.body.len())?;
    write!(
        w,
        "Connection: {}\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    for (name, value) in &resp.headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(&resp.body)?;
    w.flush()
}

/// Writes one request (client side).
pub fn write_request(w: &mut impl Write, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
    write!(w, "{method} {path} HTTP/1.1\r\n")?;
    write!(w, "Host: wasmperf\r\n")?;
    if !body.is_empty() {
        write!(w, "Content-Type: application/json\r\n")?;
    }
    write!(w, "Content-Length: {}\r\n\r\n", body.len())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one response (client side).
pub fn read_response(r: &mut impl BufRead) -> io::Result<Response> {
    let line = read_line(r)?.ok_or_else(|| bad("connection closed before status line"))?;
    let mut parts = line.split_whitespace();
    let status: u16 = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => {
            code.parse().map_err(|_| bad("bad status code"))?
        }
        _ => return Err(bad("malformed status line")),
    };
    let headers = read_headers(r)?;
    let body = read_body(r, content_length(&headers)?)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use wasmperf_farm::Json;

    fn parse_request(raw: &[u8]) -> io::Result<Option<Request>> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn request_roundtrip_through_the_wire() {
        let body = br#"{"bench":"gemm"}"#;
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/run", body).unwrap();
        let req = parse_request(&wire).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, body);
        assert_eq!(req.header("content-length"), Some("16"));
        assert!(req.keep_alive());
    }

    #[test]
    fn response_roundtrip_through_the_wire() {
        let resp = Response::json(200, &Json::Obj(vec![("ok".into(), Json::Bool(true))]))
            .with_header("Retry-After", "1");
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, true).unwrap();
        let parsed = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.header("retry-after"), Some("1"));
        assert_eq!(
            parsed.body_json().unwrap().get("ok"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn eof_between_requests_is_clean() {
        assert_eq!(parse_request(b"").unwrap(), None);
    }

    #[test]
    fn torn_and_malformed_requests_are_errors() {
        assert!(parse_request(b"GET /x").is_err());
        assert!(parse_request(b"GET /x HTTP/1.1\r\nbroken\r\n\r\n").is_err());
        assert!(parse_request(b"FOO\r\n\r\n").is_err());
        assert!(parse_request(b"GET /x SPDY/3\r\n\r\n").is_err());
        // Declared body longer than what arrived.
        assert!(parse_request(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").is_err());
        assert!(parse_request(b"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n").is_err());
    }

    #[test]
    fn connection_close_is_honored() {
        let req = parse_request(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn bare_lf_lines_parse_too() {
        let req = parse_request(b"GET /metrics HTTP/1.1\nHost: x\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.header("host"), Some("x"));
    }
}
