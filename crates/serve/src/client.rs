//! A small keep-alive HTTP client over one TCP connection, shared by
//! `wasmperf-loadgen` and the integration tests so both exercise the
//! same wire code as the server.

use std::io::{self, BufReader};
use std::net::TcpStream;
use std::time::Duration;

use wasmperf_farm::Json;

use crate::http::{read_response, write_request, Response};

/// One persistent connection to a wasmperf-serve instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects; `addr` is `host:port`.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        write_request(&mut self.writer, method, path, body)?;
        read_response(&mut self.reader)
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request("GET", path, &[])
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &Json) -> io::Result<Response> {
        self.request("POST", path, body.render().as_bytes())
    }
}
