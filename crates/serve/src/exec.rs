//! Request execution: parsing run requests, mapping deadlines onto
//! simulator fuel, and driving the farm worker pool + caches.
//!
//! The service executes on exactly the same pipeline as an in-process
//! [`Session`](wasmperf_harness::Session) run: `prepare` compiles through
//! the content-addressed [`ArtifactCache`] (identical submissions compile
//! once per process), `execute_with_fuel` runs on a fresh Browsix kernel.
//! Because that pipeline is deterministic, a response's `result` payload
//! is byte-identical to a direct local run — the property
//! `wasmperf-loadgen --check` gates on.
//!
//! Deadlines are double-layered:
//!
//! - **simulated time**: `deadline_ms` (milliseconds *on the simulated
//!   3.5 GHz core*) becomes a retired-instruction fuel budget via
//!   [`fuel_for_deadline`]; exhausting it yields HTTP 504 with
//!   `"deadline": "sim"`;
//! - **wall clock**: a safety-net timeout (several times the deadline,
//!   never under [`MIN_WALL_TIMEOUT`]) bounds how long the connection
//!   waits on the pool, catching pathological host-side slowness; it
//!   yields 504 with `"deadline": "wall"`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use wasmperf_benchsuite::{Benchmark, Size, Suite};
use wasmperf_browsix::AppendPolicy;
use wasmperf_farm::hash::Fnv;
use wasmperf_farm::{
    ArtifactCache, ArtifactKey, JobSpec, Json, ResultStore, ServicePool, SubmitError,
};
use wasmperf_harness::farm::{decode_result, encode_result, job_spec};
use wasmperf_harness::{
    execute_with_fuel, prepare, Artifact, Engine, Error, RunResult, DEFAULT_FUEL,
};

use crate::metrics::Metrics;

/// Version of the service's wire schema (`/run`, `/metrics`, `/healthz`
/// shapes and the persisted result-store payloads). Reported in the
/// shard identity block so a router can refuse to mix shards that would
/// disagree about response bytes.
pub const SCHEMA_VERSION: u64 = 1;

/// Every engine wire name a `/run` request may target. The fingerprint
/// over this set is part of a shard's identity: two shards with equal
/// fingerprints produce byte-identical results for the same `JobSpec`.
pub const WIRE_ENGINES: [&str; 9] = [
    "native",
    "chrome",
    "firefox",
    "chrome-asmjs",
    "firefox-asmjs",
    "chrome+bounds",
    "chrome+pku",
    "firefox+bounds",
    "firefox+pku",
];

/// Combined FNV digest over every wire engine's name and configuration
/// fingerprint — the engine half of the shard identity block.
pub fn engines_fingerprint() -> u64 {
    let mut fnv = Fnv::new();
    for name in WIRE_ENGINES {
        let engine = Engine::parse(name).expect("WIRE_ENGINES entries must parse");
        fnv.write_str(name).write_u64(engine.fingerprint());
    }
    fnv.finish()
}

/// Fuel units (retired instructions) per millisecond of simulated
/// deadline: the simulated core runs at 3.5 GHz and the workloads retire
/// roughly one instruction per cycle, so 1 ms ≈ 3.5 M instructions.
pub const FUEL_PER_MS: f64 = 3.5e6;

/// Floor on the wall-clock safety timeout, so short simulated deadlines
/// don't starve legitimate host-side queueing.
pub const MIN_WALL_TIMEOUT: Duration = Duration::from_secs(2);

/// Wall-clock timeout for requests with no deadline.
pub const DEFAULT_WALL_TIMEOUT: Duration = Duration::from_secs(60);

/// Maps a simulated deadline to a fuel budget, clamped to
/// `[1, DEFAULT_FUEL]`. Fractional milliseconds are meaningful: the test
/// workloads retire a few hundred thousand instructions, i.e. finish in
/// well under a simulated millisecond.
pub fn fuel_for_deadline(deadline_ms: f64) -> u64 {
    let fuel = (deadline_ms * FUEL_PER_MS).ceil();
    if !fuel.is_finite() || fuel >= DEFAULT_FUEL as f64 {
        DEFAULT_FUEL
    } else {
        (fuel as u64).max(1)
    }
}

/// The `Retry-After` hint for a shed request: with `depth` jobs ahead
/// and `workers` lanes each draining one job per observed mean service
/// time, the queue plausibly has room after `depth × mean ÷ workers`
/// seconds. Rounded up and clamped to ≥ 1 — the header has whole-second
/// granularity, and `0` would invite an immediate, equally doomed retry.
/// Before any run completes the mean is 0 and the hint degrades to 1.
pub fn retry_after_secs(depth: usize, workers: usize, mean_exec_us: f64) -> u64 {
    let est = depth as f64 * (mean_exec_us / 1e6) / workers.max(1) as f64;
    if est.is_finite() && est > 1.0 {
        est.ceil() as u64
    } else {
        1
    }
}

/// The wall-clock safety net paired with a simulated deadline.
pub fn wall_timeout(deadline_ms: Option<f64>) -> Duration {
    match deadline_ms {
        None => DEFAULT_WALL_TIMEOUT,
        Some(ms) => {
            let padded = Duration::from_secs_f64((ms * 4.0 / 1000.0).clamp(0.0, 600.0));
            padded.max(MIN_WALL_TIMEOUT)
        }
    }
}

/// What one `/run` request asks to execute.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A suite benchmark, by name.
    Named(String),
    /// Ad-hoc CLite source text submitted in the request.
    Source(String),
}

/// One parsed `/run` request.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// What to run.
    pub target: Target,
    /// Engine, by wire name (`native`, `chrome`, ...).
    pub engine: String,
    /// Workload size (named benchmarks only).
    pub size: Size,
    /// Simulated-time deadline in milliseconds (fractional allowed).
    pub deadline_ms: Option<f64>,
}

impl RunRequest {
    /// Parses the `/run` JSON body.
    pub fn from_json(body: &Json) -> Result<RunRequest, String> {
        let target = match (
            body.get("bench").and_then(Json::as_str),
            body.get("source").and_then(Json::as_str),
        ) {
            (Some(name), None) => Target::Named(name.to_string()),
            (None, Some(src)) => Target::Source(src.to_string()),
            (Some(_), Some(_)) => {
                return Err("give either \"bench\" or \"source\", not both".into())
            }
            (None, None) => return Err("missing \"bench\" or \"source\"".into()),
        };
        let engine = body
            .get("engine")
            .and_then(Json::as_str)
            .ok_or("missing \"engine\"")?
            .to_string();
        let size = match body.get("size") {
            None => Size::Test,
            Some(v) => {
                let name = v.as_str().ok_or("\"size\" must be a string")?;
                Size::parse(name).ok_or_else(|| format!("unknown size {name:?} (test|ref)"))?
            }
        };
        let deadline_ms = match body.get("deadline_ms") {
            None => None,
            Some(v) => {
                let ms = v
                    .as_f64()
                    .filter(|ms| ms.is_finite() && *ms > 0.0)
                    .ok_or("\"deadline_ms\" must be a positive number")?;
                Some(ms)
            }
        };
        Ok(RunRequest {
            target,
            engine,
            size,
            deadline_ms,
        })
    }
}

/// Why a run did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Malformed or unanswerable request (unknown benchmark/engine,
    /// bad field types). → 400.
    BadRequest(String),
    /// The admission queue was full; carries the observed depth and the
    /// derived backpressure hint. → 429.
    Rejected {
        /// Pool depth (queued + executing) at rejection.
        depth: usize,
        /// Seconds until the queue plausibly has room: depth × observed
        /// mean service time ÷ workers, rounded up, never below 1.
        retry_after_s: u64,
    },
    /// The server is draining; no new work admitted. → 503.
    Closed,
    /// The simulated-time (fuel) deadline expired. → 504.
    DeadlineSim {
        /// The exhausted fuel budget.
        fuel: u64,
    },
    /// The wall-clock safety timeout expired. → 504.
    DeadlineWall,
    /// The submission was valid but the program failed to compile or
    /// execute. → 422.
    Failed(String),
    /// The executing job disappeared (panicked). → 500.
    Internal(String),
}

impl ServeError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::Rejected { .. } => 429,
            ServeError::Closed => 503,
            ServeError::DeadlineSim { .. } | ServeError::DeadlineWall => 504,
            ServeError::Failed(_) => 422,
            ServeError::Internal(_) => 500,
        }
    }

    /// The JSON error body.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("error".to_string(), Json::Str(self.message()))];
        match self {
            ServeError::Rejected {
                depth,
                retry_after_s,
            } => {
                fields.push(("depth".into(), Json::u64(*depth as u64)));
                fields.push(("retry_after_s".into(), Json::u64(*retry_after_s)));
            }
            ServeError::DeadlineSim { fuel } => {
                fields.push(("deadline".into(), Json::Str("sim".into())));
                fields.push(("fuel".into(), Json::u64(*fuel)));
            }
            ServeError::DeadlineWall => {
                fields.push(("deadline".into(), Json::Str("wall".into())));
            }
            _ => {}
        }
        Json::Obj(fields)
    }

    fn message(&self) -> String {
        match self {
            ServeError::BadRequest(m) => m.clone(),
            ServeError::Rejected { depth, .. } => format!("queue full (depth {depth})"),
            ServeError::Closed => "server is draining".into(),
            ServeError::DeadlineSim { fuel } => {
                format!("simulated deadline exceeded (fuel {fuel})")
            }
            ServeError::DeadlineWall => "wall-clock timeout exceeded".into(),
            ServeError::Failed(m) => m.clone(),
            ServeError::Internal(m) => m.clone(),
        }
    }
}

/// A completed `/run`, with the service-side accounting the response
/// carries alongside the result payload.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The run result (identical to a direct in-process run).
    pub result: Arc<RunResult>,
    /// True when served from the result cache without executing.
    pub cached: bool,
    /// Microseconds spent waiting in the admission queue.
    pub queue_us: u64,
    /// Microseconds spent compiling (on miss) + executing.
    pub exec_us: u64,
}

/// The benchmark registry behind named-target requests: every suite and
/// replay benchmark at both sizes, resolvable to a content-addressed
/// [`JobSpec`]. The fleet router loads its own copy to compute the same
/// keys the shards do — the spec (and therefore the routing) is a pure
/// function of the request, not of which process asks.
pub struct Registry {
    /// (size, name) → benchmark.
    benches: HashMap<(&'static str, String), Benchmark>,
}

impl Registry {
    /// Loads both benchmark sizes, suite and replay benchmarks alike.
    pub fn load() -> Registry {
        let mut benches = HashMap::new();
        for size in [Size::Test, Size::Ref] {
            for b in wasmperf_benchsuite::all(size) {
                benches.insert((size.as_str(), b.name.to_string()), b);
            }
            // Replay benchmarks (recordings replayed through the replay
            // kernel) are addressable by name like any other benchmark;
            // an absent recordings directory just contributes none.
            for b in wasmperf_benchsuite::replay::all(size) {
                benches.insert((size.as_str(), b.name.to_string()), b);
            }
        }
        Registry { benches }
    }

    /// The names a request can target at `size`, sorted.
    pub fn names(&self, size: Size) -> Vec<String> {
        let mut names: Vec<String> = self
            .benches
            .keys()
            .filter(|(s, _)| *s == size.as_str())
            .map(|(_, name)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// Resolves a request to its benchmark and engine, rejecting unknown
    /// names exactly as execution would.
    pub fn resolve(&self, req: &RunRequest) -> Result<(Benchmark, Engine), ServeError> {
        let bench = match &req.target {
            Target::Named(name) => self
                .benches
                .get(&(req.size.as_str(), name.clone()))
                .cloned()
                .ok_or_else(|| {
                    ServeError::BadRequest(format!(
                        "unknown benchmark {name:?} at size {}",
                        req.size.as_str()
                    ))
                })?,
            Target::Source(src) => Benchmark {
                name: "adhoc".into(),
                suite: Suite::PolyBench,
                replay: None,
                source: src.clone(),
                inputs: Vec::new(),
                outputs: Vec::new(),
            },
        };
        let engine = Engine::parse(&req.engine)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown engine {:?}", req.engine)))?;
        Ok((bench, engine))
    }

    /// The content-addressed job spec a request executes as.
    pub fn job_spec(&self, req: &RunRequest) -> Result<JobSpec, ServeError> {
        let (bench, engine) = self.resolve(req)?;
        Ok(job_spec(
            &bench,
            &engine,
            req.size,
            AppendPolicy::Chunked4K,
            0,
        ))
    }

    /// The request's routing/caching key: [`JobSpec::key`].
    pub fn job_key(&self, req: &RunRequest) -> Result<u64, ServeError> {
        self.job_spec(req).map(|spec| spec.key())
    }
}

/// The execution engine behind the HTTP surface: benchmark registry,
/// caches, worker pool, and metrics.
pub struct ExecService {
    registry: Registry,
    artifacts: Arc<ArtifactCache<Artifact>>,
    /// spec-key → completed default-fuel result.
    results: Mutex<HashMap<u64, Arc<RunResult>>>,
    /// Persistent backing for `results`: every completed default-fuel
    /// run is appended, and a restarted process serves previously-seen
    /// keys from here as `cached` without re-executing.
    store: Option<Mutex<ResultStore>>,
    pool: ServicePool,
    /// Shared service metrics (the server also records HTTP-level data).
    pub metrics: Arc<Metrics>,
}

/// What a pool job sends back to the waiting connection thread.
type JobReply = (Result<RunResult, Error>, u64);

impl ExecService {
    /// Builds the service: loads both benchmark sizes, starts `workers`
    /// pool threads over a queue admitting `queue_capacity` waiting jobs.
    pub fn new(workers: usize, queue_capacity: usize) -> ExecService {
        ExecService {
            registry: Registry::load(),
            artifacts: Arc::new(ArtifactCache::new()),
            results: Mutex::new(HashMap::new()),
            store: None,
            pool: ServicePool::new(workers, queue_capacity),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Attaches a persistent result store under `dir` (created if
    /// needed). Keys already on disk are served as cached immediately —
    /// the warm-restart half of the fleet contract.
    pub fn with_store(mut self, dir: &Path) -> std::io::Result<ExecService> {
        self.store = Some(Mutex::new(ResultStore::open(dir)?));
        Ok(self)
    }

    /// The persistent store's JSONL path, if one is attached.
    pub fn store_path(&self) -> Option<PathBuf> {
        self.store.as_ref().map(|s| {
            s.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .path()
                .to_path_buf()
        })
    }

    /// Records loaded from disk when the store was opened.
    pub fn store_loaded(&self) -> usize {
        self.store.as_ref().map_or(0, |s| {
            s.lock().unwrap_or_else(PoisonError::into_inner).loaded()
        })
    }

    /// The benchmark registry (shared with the router for key routing).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Live pool depth (queued + executing).
    pub fn depth(&self) -> usize {
        self.pool.depth()
    }

    /// Jobs waiting in the queue.
    pub fn queued(&self) -> usize {
        self.pool.queued()
    }

    /// Jobs currently executing.
    pub fn active(&self) -> usize {
        self.pool.active()
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Artifact-cache build/hit counters.
    pub fn artifact_stats(&self) -> (u64, u64) {
        let s = self.artifacts.stats();
        (s.builds, s.hits)
    }

    /// Closes admission (later runs get [`ServeError::Closed`]); queued
    /// jobs still complete. First half of graceful drain.
    pub fn close(&self) {
        self.pool.close();
    }

    /// The names a request can target at `size`.
    pub fn bench_names(&self, size: Size) -> Vec<String> {
        self.registry.names(size)
    }

    /// Result-cache lookup: the in-memory map first, then the persistent
    /// store. A store hit is decoded, promoted into memory, and counted
    /// separately — it's what makes a restarted shard warm.
    fn lookup(&self, key: u64) -> Option<Arc<RunResult>> {
        let in_memory = {
            let results = self.results.lock().unwrap_or_else(PoisonError::into_inner);
            results.get(&key).cloned()
        };
        if let Some(result) = in_memory {
            self.metrics.count_result_lookup(true);
            return Some(result);
        }
        if let Some(store) = &self.store {
            let payload = store
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(key)
                .cloned();
            // An undecodable payload (schema drift, torn write) falls
            // through to a fresh execution rather than failing the run.
            if let Some(result) = payload.as_ref().and_then(|p| decode_result(p).ok()) {
                let result = Arc::new(result);
                self.results
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(key, Arc::clone(&result));
                self.metrics.count_result_lookup(true);
                self.metrics.count_store_hit();
                return Some(result);
            }
        }
        self.metrics.count_result_lookup(false);
        None
    }

    /// Executes one request end to end. Blocks the calling (connection)
    /// thread until the result arrives, a deadline fires, or admission
    /// fails — it never blocks on a full queue.
    pub fn run(&self, req: &RunRequest) -> Result<RunOutcome, ServeError> {
        let (bench, engine) = self.registry.resolve(req)?;
        let fuel = req
            .deadline_ms
            .map(fuel_for_deadline)
            .unwrap_or(DEFAULT_FUEL);
        let spec = job_spec(&bench, &engine, req.size, AppendPolicy::Chunked4K, 0);
        let key = spec.key();

        // Only unbounded-fuel results are cached: a result produced under
        // some budget is identical to the unbounded one *if it finished*,
        // but serving it for a smaller budget would skip the deadline.
        if fuel == DEFAULT_FUEL {
            if let Some(result) = self.lookup(key) {
                return Ok(RunOutcome {
                    result,
                    cached: true,
                    queue_us: 0,
                    exec_us: 0,
                });
            }
        }

        let (tx, rx) = mpsc::channel::<JobReply>();
        let artifacts = Arc::clone(&self.artifacts);
        let akey = ArtifactKey {
            source: spec.source_hash,
            config: spec.engine_fingerprint,
        };
        let submitted = Instant::now();
        let job = move || {
            let started = Instant::now();
            let outcome = artifacts
                .get_or_build(akey, || prepare(&bench, &engine))
                .and_then(|artifact| {
                    execute_with_fuel(&bench, &engine, &artifact, AppendPolicy::Chunked4K, fuel)
                });
            // The receiver may have timed out and gone; that's fine.
            let _ = tx.send((outcome, started.elapsed().as_micros() as u64));
        };
        let depth = self.pool.submit(job).map_err(|e| match e {
            SubmitError::Full { depth } => ServeError::Rejected {
                depth,
                retry_after_s: retry_after_secs(
                    depth,
                    self.pool.workers(),
                    self.metrics.mean_exec_us(),
                ),
            },
            SubmitError::Closed => ServeError::Closed,
        })?;
        self.metrics.observe_depth(depth);

        let (outcome, exec_us) = match rx.recv_timeout(wall_timeout(req.deadline_ms)) {
            Ok(reply) => reply,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.metrics.count_deadline_wall();
                return Err(ServeError::DeadlineWall);
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(ServeError::Internal("executing job panicked".into()));
            }
        };
        let queue_us = (submitted.elapsed().as_micros() as u64).saturating_sub(exec_us);
        match outcome {
            Ok(result) => {
                self.metrics.record_run_syscalls(
                    result.kernel_syscalls,
                    result.counters.host_cycles,
                    result.kernel_bytes,
                );
                self.metrics.observe_exec_us(exec_us);
                let result = Arc::new(result);
                if fuel == DEFAULT_FUEL {
                    {
                        let mut results =
                            self.results.lock().unwrap_or_else(PoisonError::into_inner);
                        results.insert(key, Arc::clone(&result));
                    }
                    // Persist for warm restarts; a full disk degrades to
                    // a cold cache, never to a failed run.
                    if let Some(store) = &self.store {
                        let _ = store.lock().unwrap_or_else(PoisonError::into_inner).record(
                            key,
                            &spec.label(),
                            encode_result(&result),
                        );
                    }
                }
                Ok(RunOutcome {
                    result,
                    cached: false,
                    queue_us,
                    exec_us,
                })
            }
            Err(Error::OutOfFuel { fuel, .. }) => {
                self.metrics.count_deadline_sim();
                Err(ServeError::DeadlineSim { fuel })
            }
            Err(e) => Err(ServeError::Failed(e.to_string())),
        }
    }

    /// `POST /report`: runs a (benchmark × engine) batch and returns the
    /// slowdown-vs-native matrix, the service-side analog of the paper's
    /// headline tables. `native` is always run as the baseline, whether
    /// or not it was requested.
    pub fn report(&self, body: &Json) -> Result<Json, ServeError> {
        let names: Vec<String> = match body.get("benchmarks") {
            None => self.bench_names(parse_size(body)?),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| ServeError::BadRequest("\"benchmarks\" must be an array".into()))?
                .iter()
                .map(|j| {
                    j.as_str().map(str::to_string).ok_or_else(|| {
                        ServeError::BadRequest("\"benchmarks\" entries must be strings".into())
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        let size = parse_size(body)?;
        let mut engines: Vec<String> = match body.get("engines") {
            None => vec!["chrome".into(), "firefox".into()],
            Some(v) => v
                .as_arr()
                .ok_or_else(|| ServeError::BadRequest("\"engines\" must be an array".into()))?
                .iter()
                .map(|j| {
                    j.as_str().map(str::to_string).ok_or_else(|| {
                        ServeError::BadRequest("\"engines\" entries must be strings".into())
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        engines.retain(|e| e != "native");
        engines.insert(0, "native".to_string());

        let mut rows = Vec::new();
        for name in &names {
            let mut cycles: Vec<(String, Json)> = Vec::new();
            let mut slowdown: Vec<(String, Json)> = Vec::new();
            let mut native_cycles = 0u64;
            for engine in &engines {
                let req = RunRequest {
                    target: Target::Named(name.clone()),
                    engine: engine.clone(),
                    size,
                    deadline_ms: None,
                };
                let out = self.run(&req)?;
                let total = out.result.counters.total_cycles();
                if engine == "native" {
                    native_cycles = total;
                }
                cycles.push((engine.clone(), Json::u64(total)));
                if native_cycles > 0 {
                    slowdown.push((
                        engine.clone(),
                        Json::Num(total as f64 / native_cycles as f64),
                    ));
                }
            }
            rows.push(Json::Obj(vec![
                ("bench".into(), Json::Str(name.clone())),
                ("cycles".into(), Json::Obj(cycles)),
                ("slowdown".into(), Json::Obj(slowdown)),
            ]));
        }
        Ok(Json::Obj(vec![
            ("size".into(), Json::Str(size.as_str().into())),
            ("rows".into(), Json::Arr(rows)),
        ]))
    }
}

fn parse_size(body: &Json) -> Result<Size, ServeError> {
    match body.get("size") {
        None => Ok(Size::Test),
        Some(v) => v
            .as_str()
            .and_then(Size::parse)
            .ok_or_else(|| ServeError::BadRequest("unknown \"size\" (test|ref)".into())),
    }
}

/// The 200-response body for one completed `/run`. The `syscalls`
/// section surfaces the run's kernel-side accounting without the client
/// having to dig through the counters — and is what
/// `wasmperf-loadgen --verify-metrics` reconciles against `/metrics`.
pub fn run_response_json(id: &str, out: &RunOutcome) -> Json {
    let syscalls = Json::Obj(vec![
        ("count".into(), Json::u64(out.result.kernel_syscalls)),
        (
            "kernel_cycles".into(),
            Json::u64(out.result.counters.host_cycles),
        ),
        ("kernel_bytes".into(), Json::u64(out.result.kernel_bytes)),
    ]);
    Json::Obj(vec![
        ("id".into(), Json::Str(id.to_string())),
        ("cached".into(), Json::Bool(out.cached)),
        ("queue_us".into(), Json::u64(out.queue_us)),
        ("exec_us".into(), Json::u64(out.exec_us)),
        ("syscalls".into(), syscalls),
        ("result".into(), encode_result(&out.result)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_maps_to_clamped_fuel() {
        assert_eq!(fuel_for_deadline(1.0), 3_500_000);
        assert_eq!(fuel_for_deadline(0.01), 35_000);
        // Tiny deadlines still admit at least one instruction...
        assert_eq!(fuel_for_deadline(1e-9), 1);
        // ...and huge ones clamp to the default budget.
        assert_eq!(fuel_for_deadline(1e18), DEFAULT_FUEL);
    }

    #[test]
    fn wall_timeout_has_a_floor_and_scales() {
        assert_eq!(wall_timeout(None), DEFAULT_WALL_TIMEOUT);
        assert_eq!(wall_timeout(Some(0.01)), MIN_WALL_TIMEOUT);
        assert_eq!(wall_timeout(Some(10_000.0)), Duration::from_secs(40));
    }

    #[test]
    fn run_request_parses_and_validates() {
        let ok = Json::parse(r#"{"bench":"gemm","engine":"chrome","size":"ref"}"#).unwrap();
        let req = RunRequest::from_json(&ok).unwrap();
        assert_eq!(req.target, Target::Named("gemm".into()));
        assert_eq!(req.engine, "chrome");
        assert_eq!(req.size, Size::Ref);
        assert_eq!(req.deadline_ms, None);

        let src = Json::parse(
            r#"{"source":"fn main() -> i32 { return 7; }","engine":"native","deadline_ms":0.5}"#,
        )
        .unwrap();
        let req = RunRequest::from_json(&src).unwrap();
        assert!(matches!(req.target, Target::Source(_)));
        assert_eq!(req.deadline_ms, Some(0.5));

        for bad in [
            r#"{"engine":"native"}"#,
            r#"{"bench":"gemm","source":"x","engine":"native"}"#,
            r#"{"bench":"gemm"}"#,
            r#"{"bench":"gemm","engine":"native","size":"huge"}"#,
            r#"{"bench":"gemm","engine":"native","deadline_ms":-1}"#,
            r#"{"bench":"gemm","engine":"native","deadline_ms":"soon"}"#,
        ] {
            assert!(
                RunRequest::from_json(&Json::parse(bad).unwrap()).is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn serve_errors_map_to_statuses() {
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        let rejected = ServeError::Rejected {
            depth: 3,
            retry_after_s: 2,
        };
        assert_eq!(rejected.status(), 429);
        assert_eq!(ServeError::Closed.status(), 503);
        assert_eq!(ServeError::DeadlineSim { fuel: 1 }.status(), 504);
        assert_eq!(ServeError::DeadlineWall.status(), 504);
        assert_eq!(ServeError::Failed("x".into()).status(), 422);
        assert_eq!(ServeError::Internal("x".into()).status(), 500);
        let j = rejected.to_json();
        assert_eq!(j.get("depth").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("retry_after_s").and_then(Json::as_u64), Some(2));
        let j = ServeError::DeadlineSim { fuel: 35_000 }.to_json();
        assert_eq!(j.get("deadline").and_then(Json::as_str), Some("sim"));
    }

    #[test]
    fn retry_after_scales_with_queue_depth_and_never_drops_below_one() {
        // No observed service time yet: degrade to the 1s floor.
        assert_eq!(retry_after_secs(16, 2, 0.0), 1);
        // Sub-second drain estimates clamp up to the header granularity.
        assert_eq!(retry_after_secs(2, 4, 100_000.0), 1);
        // 8 jobs ahead, 2 workers, 1s mean service time: ~4s.
        assert_eq!(retry_after_secs(8, 2, 1_000_000.0), 4);
        // Fractional drain times round up, not down.
        assert_eq!(retry_after_secs(3, 2, 1_000_000.0), 2);
        // A degenerate worker count must not divide by zero.
        assert_eq!(retry_after_secs(5, 0, 2_000_000.0), 10);
    }

    #[test]
    fn adhoc_source_runs_and_unknown_names_do_not() {
        let svc = ExecService::new(1, 8);
        let req = RunRequest {
            target: Target::Source("fn main() -> i32 { return 41; }".into()),
            engine: "native".into(),
            size: Size::Test,
            deadline_ms: None,
        };
        let out = svc.run(&req).unwrap();
        assert_eq!(out.result.checksum, 41);
        assert!(!out.cached);
        // Identical submission: served from the result cache.
        let again = svc.run(&req).unwrap();
        assert!(again.cached);
        assert_eq!(again.result, out.result);

        let missing = RunRequest {
            target: Target::Named("no-such-bench".into()),
            engine: "native".into(),
            size: Size::Test,
            deadline_ms: None,
        };
        assert!(matches!(svc.run(&missing), Err(ServeError::BadRequest(_))));
        let bad_engine = RunRequest {
            target: Target::Named("gemm".into()),
            engine: "safari".into(),
            size: Size::Test,
            deadline_ms: None,
        };
        assert!(matches!(
            svc.run(&bad_engine),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn compile_failures_are_client_errors() {
        let svc = ExecService::new(1, 8);
        let req = RunRequest {
            target: Target::Source("fn main( { syntax error".into()),
            engine: "native".into(),
            size: Size::Test,
            deadline_ms: None,
        };
        assert!(matches!(svc.run(&req), Err(ServeError::Failed(_))));
    }

    #[test]
    fn tight_deadline_trips_the_fuel_limit() {
        let svc = ExecService::new(1, 8);
        let req = RunRequest {
            target: Target::Named("gemm".into()),
            engine: "native".into(),
            size: Size::Test,
            // ~35 instructions of budget: guaranteed to expire.
            deadline_ms: Some(1e-5),
        };
        match svc.run(&req) {
            Err(ServeError::DeadlineSim { fuel }) => assert!(fuel >= 1),
            other => panic!("expected DeadlineSim, got {other:?}"),
        }
        // The expiry did not poison the service.
        let relaxed = RunRequest {
            deadline_ms: None,
            ..req
        };
        assert!(svc.run(&relaxed).is_ok());
    }

    #[test]
    fn registry_keys_match_execution_and_are_process_independent() {
        let reg = Registry::load();
        let req = RunRequest {
            target: Target::Named("gemm".into()),
            engine: "chrome".into(),
            size: Size::Test,
            deadline_ms: None,
        };
        // Two independently-loaded registries agree on every key — the
        // property that lets the router route to the shard whose caches
        // hold the spec.
        let other = Registry::load();
        assert_eq!(reg.job_key(&req).unwrap(), other.job_key(&req).unwrap());
        // The key ignores the deadline: same work, same shard.
        let with_deadline = RunRequest {
            deadline_ms: Some(5.0),
            ..req.clone()
        };
        assert_eq!(
            reg.job_key(&req).unwrap(),
            reg.job_key(&with_deadline).unwrap()
        );
        // Unknown names and engines are rejected like execution rejects
        // them, so the router 400s exactly where a shard would.
        let missing = RunRequest {
            target: Target::Named("no-such-bench".into()),
            ..req.clone()
        };
        assert!(matches!(
            reg.job_key(&missing),
            Err(ServeError::BadRequest(_))
        ));
        let bad_engine = RunRequest {
            engine: "safari".into(),
            ..req
        };
        assert!(matches!(
            reg.job_key(&bad_engine),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn engines_fingerprint_is_stable_and_covers_all_wire_names() {
        assert_eq!(engines_fingerprint(), engines_fingerprint());
        for name in WIRE_ENGINES {
            assert!(Engine::parse(name).is_some(), "{name} must parse");
        }
    }

    #[test]
    fn result_store_makes_a_restarted_service_warm() {
        let dir = std::env::temp_dir().join(format!(
            "wasmperf-exec-warm-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let req = RunRequest {
            target: Target::Source("fn main() -> i32 { return 23; }".into()),
            engine: "native".into(),
            size: Size::Test,
            deadline_ms: None,
        };
        let first = {
            let svc = ExecService::new(1, 8).with_store(&dir).unwrap();
            assert_eq!(svc.store_loaded(), 0);
            let out = svc.run(&req).unwrap();
            assert!(!out.cached);
            out.result
        };
        // "Restart": a fresh service over the same directory answers the
        // same key as cached, without executing anything.
        let svc = ExecService::new(1, 8).with_store(&dir).unwrap();
        assert_eq!(svc.store_loaded(), 1);
        let again = svc.run(&req).unwrap();
        assert!(again.cached);
        assert_eq!(again.result, first);
        let metrics = svc.metrics.to_json(0, 0, 1, 0, 0);
        let sys = metrics.get("syscalls").unwrap();
        assert_eq!(sys.get("runs_executed").and_then(Json::as_u64), Some(0));
        let cache = metrics.get("cache").unwrap();
        assert_eq!(cache.get("store_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("result_hits").and_then(Json::as_u64), Some(1));
        // Deadline-bounded runs bypass the persistent cache exactly like
        // the in-memory one.
        let bounded = RunRequest {
            deadline_ms: Some(1e-9),
            ..req
        };
        assert!(matches!(
            svc.run(&bounded),
            Err(ServeError::DeadlineSim { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn closed_service_rejects_with_503() {
        let svc = ExecService::new(1, 8);
        svc.close();
        let req = RunRequest {
            target: Target::Source("fn main() -> i32 { return 1; }".into()),
            engine: "native".into(),
            size: Size::Test,
            deadline_ms: None,
        };
        assert!(matches!(svc.run(&req), Err(ServeError::Closed)));
    }
}
