//! End-to-end tests over a real listening socket: every request here
//! crosses the TCP loopback through the full HTTP codec, router, exec
//! service, and worker pool — the same path `wasmperf-loadgen` drives.

use std::path::PathBuf;
use std::time::Duration;

use wasmperf_benchsuite::Size;
use wasmperf_browsix::AppendPolicy;
use wasmperf_farm::Json;
use wasmperf_harness::farm::encode_result;
use wasmperf_harness::{execute, prepare, Engine};
use wasmperf_serve::loadgen::{self, spin_source, Mode, Options};
use wasmperf_serve::{start, Client, ServerConfig};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("wasmperf-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn serve(workers: usize, queue: usize) -> (wasmperf_serve::ServerHandle, String) {
    let handle = start(ServerConfig {
        workers,
        queue_capacity: queue,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn shutdown(handle: wasmperf_serve::ServerHandle, addr: &str) {
    let mut c = Client::connect(addr).unwrap();
    let resp = c.request("POST", "/shutdown", b"").unwrap();
    assert_eq!(resp.status, 200);
    handle.join();
}

fn run_body(bench: &str, engine: &str) -> Json {
    Json::Obj(vec![
        ("bench".into(), Json::Str(bench.into())),
        ("engine".into(), Json::Str(engine.into())),
        ("size".into(), Json::Str("test".into())),
    ])
}

#[test]
fn health_metrics_and_routing() {
    let (handle, addr) = serve(1, 8);
    let mut c = Client::connect(&addr).unwrap();

    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let body = health.body_json().unwrap();
    assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(body.get("draining"), Some(&Json::Bool(false)));

    let metrics = c.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let m = metrics.body_json().unwrap();
    assert!(m.get("latency").is_some());
    assert!(m.get("pool").is_some());

    // Unknown path and wrong method, all on the same kept-alive
    // connection.
    assert_eq!(c.get("/nope").unwrap().status, 404);
    assert_eq!(c.request("GET", "/run", b"").unwrap().status, 405);
    assert_eq!(c.request("POST", "/healthz", b"").unwrap().status, 405);

    // Malformed JSON and malformed run requests are 400s.
    assert_eq!(c.request("POST", "/run", b"{not json").unwrap().status, 400);
    let missing_engine = Json::Obj(vec![("bench".into(), Json::Str("gemm".into()))]);
    assert_eq!(c.post_json("/run", &missing_engine).unwrap().status, 400);
    let unknown_bench = run_body("not-a-bench", "native");
    assert_eq!(c.post_json("/run", &unknown_bench).unwrap().status, 400);
    let unknown_engine = run_body("gemm", "safari");
    assert_eq!(c.post_json("/run", &unknown_engine).unwrap().status, 400);

    shutdown(handle, &addr);
}

#[test]
fn run_results_are_byte_identical_to_direct_runs() {
    let (handle, addr) = serve(2, 8);
    let mut c = Client::connect(&addr).unwrap();

    for engine_name in ["native", "chrome"] {
        let resp = c.post_json("/run", &run_body("gemm", engine_name)).unwrap();
        assert_eq!(resp.status, 200, "{engine_name}");
        let body = resp.body_json().unwrap();
        assert_eq!(body.get("cached"), Some(&Json::Bool(false)));
        assert!(body.get("id").and_then(Json::as_str).is_some());

        // The contract: the served result subtree renders to exactly the
        // bytes a direct in-process run encodes to.
        let bench = wasmperf_benchsuite::all(Size::Test)
            .into_iter()
            .find(|b| b.name == "gemm")
            .unwrap();
        let engine = Engine::parse(engine_name).unwrap();
        let artifact = prepare(&bench, &engine).unwrap();
        let local = execute(&bench, &engine, &artifact, AppendPolicy::Chunked4K).unwrap();
        assert_eq!(
            body.get("result").unwrap().render(),
            encode_result(&local).render(),
            "served result diverged from direct run for {engine_name}"
        );
    }

    // The identical submission is now served from the result cache.
    let again = c.post_json("/run", &run_body("gemm", "native")).unwrap();
    assert_eq!(again.status, 200);
    let body = again.body_json().unwrap();
    assert_eq!(body.get("cached"), Some(&Json::Bool(true)));

    shutdown(handle, &addr);
}

#[test]
fn adhoc_source_runs_and_bad_source_is_422() {
    let (handle, addr) = serve(1, 8);
    let mut c = Client::connect(&addr).unwrap();

    let adhoc = Json::Obj(vec![
        ("source".into(), Json::Str(spin_source(10))),
        ("engine".into(), Json::Str("native".into())),
    ]);
    let resp = c.post_json("/run", &adhoc).unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.body_json().unwrap();
    let result = body.get("result").unwrap();
    // sum 0..9
    assert_eq!(result.get("checksum").and_then(Json::as_u64), Some(45));
    assert_eq!(result.get("bench").and_then(Json::as_str), Some("adhoc"));

    let broken = Json::Obj(vec![
        ("source".into(), Json::Str("fn main( { nope".into())),
        ("engine".into(), Json::Str("native".into())),
    ]);
    let resp = c.post_json("/run", &broken).unwrap();
    assert_eq!(resp.status, 422);
    assert!(resp
        .body_json()
        .unwrap()
        .get("error")
        .and_then(Json::as_str)
        .is_some());

    shutdown(handle, &addr);
}

#[test]
fn tight_deadline_is_a_504_with_sim_cause() {
    let (handle, addr) = serve(1, 8);
    let mut c = Client::connect(&addr).unwrap();

    let body = Json::Obj(vec![
        ("bench".into(), Json::Str("gemm".into())),
        ("engine".into(), Json::Str("native".into())),
        // ~35 retired instructions of budget.
        ("deadline_ms".into(), Json::Num(1e-5)),
    ]);
    let resp = c.post_json("/run", &body).unwrap();
    assert_eq!(resp.status, 504);
    let err = resp.body_json().unwrap();
    assert_eq!(err.get("deadline").and_then(Json::as_str), Some("sim"));
    assert!(err.get("fuel").and_then(Json::as_u64).is_some());

    // The same request without the deadline succeeds afterwards.
    let ok = c.post_json("/run", &run_body("gemm", "native")).unwrap();
    assert_eq!(ok.status, 200);

    shutdown(handle, &addr);
}

#[test]
fn overload_sheds_with_429_and_retry_after() {
    // One worker, one queue slot: with one run executing and one queued,
    // every further run must shed.
    let (handle, addr) = serve(1, 1);

    // Distinct sources so the result cache can't absorb them; each is a
    // few seconds of simulated work — a wide window for the burst.
    let slow = |tag: u64| {
        Json::Obj(vec![
            ("source".into(), Json::Str(spin_source(4_000_000 + tag))),
            ("engine".into(), Json::Str("native".into())),
        ])
    };
    let pool_gauge = |addr: &str, field: &str| -> u64 {
        let mut c = Client::connect(addr).unwrap();
        let m = c.get("/metrics").unwrap().body_json().unwrap();
        m.get("pool")
            .unwrap()
            .get(field)
            .and_then(Json::as_u64)
            .unwrap()
    };
    let wait_for = |addr: &str, field: &str, want: u64| {
        let t0 = std::time::Instant::now();
        while pool_gauge(addr, field) < want {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "pool never reached {field} {want}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    let (okays, sheds) = std::thread::scope(|scope| {
        let mut admitted = Vec::new();
        for i in 0..2u64 {
            let conn_addr = addr.clone();
            let body = slow(i);
            admitted.push(scope.spawn(move || {
                let mut c = Client::connect(&conn_addr).unwrap();
                c.post_json("/run", &body).unwrap().status
            }));
            // First run executing, second run sitting in the queue —
            // only then is the queue provably full.
            wait_for(&addr, if i == 0 { "active" } else { "queued" }, 1);
        }
        // Worker busy + queue full: these must be rejected immediately,
        // not hang and not drop the connection.
        let mut sheds = Vec::new();
        for i in 0..3u64 {
            let mut c = Client::connect(&addr).unwrap();
            let t0 = std::time::Instant::now();
            let resp = c.post_json("/run", &slow(100 + i)).unwrap();
            assert!(
                t0.elapsed() < Duration::from_secs(1),
                "shedding should be immediate"
            );
            assert_eq!(resp.status, 429);
            // The hint is derived (depth × mean service time ÷ workers),
            // so its value depends on what ran before; it must always
            // parse as whole seconds >= 1.
            let retry: u64 = resp
                .header("retry-after")
                .expect("429 must carry Retry-After")
                .parse()
                .expect("Retry-After must be an integer");
            assert!(retry >= 1, "Retry-After {retry} < 1");
            let err = resp.body_json().unwrap();
            assert!(err.get("depth").and_then(Json::as_u64).unwrap() >= 2);
            assert_eq!(
                err.get("retry_after_s").and_then(Json::as_u64),
                Some(retry),
                "body hint and header disagree"
            );
            sheds.push(resp.status);
        }
        let okays: Vec<u16> = admitted.into_iter().map(|h| h.join().unwrap()).collect();
        (okays, sheds)
    });
    assert_eq!(okays, vec![200, 200], "admitted runs must complete");
    assert_eq!(sheds.len(), 3);

    // The metrics agree that shedding happened.
    let mut c = Client::connect(&addr).unwrap();
    let m = c.get("/metrics").unwrap().body_json().unwrap();
    assert_eq!(m.get("shed").and_then(Json::as_u64), Some(3), "{m:?}");

    shutdown(handle, &addr);
}

#[test]
fn metrics_track_requests_and_caches() {
    let (handle, addr) = serve(1, 8);
    let mut c = Client::connect(&addr).unwrap();

    let mut run_syscalls = Vec::new();
    for _ in 0..3 {
        let resp = c.post_json("/run", &run_body("gemm", "native")).unwrap();
        assert_eq!(resp.status, 200);
        let body = resp.body_json().unwrap();
        let sys = body.get("syscalls").expect("response syscalls section");
        run_syscalls.push((
            sys.get("count").and_then(Json::as_u64).unwrap(),
            sys.get("kernel_cycles").and_then(Json::as_u64).unwrap(),
            sys.get("kernel_bytes").and_then(Json::as_u64).unwrap(),
        ));
    }
    // Cached replays report the same per-run accounting.
    assert_eq!(run_syscalls[0], run_syscalls[1]);
    assert_eq!(run_syscalls[0], run_syscalls[2]);
    let m = c.get("/metrics").unwrap().body_json().unwrap();
    assert_eq!(
        m.get("requests")
            .unwrap()
            .get("POST /run 200")
            .and_then(Json::as_u64),
        Some(3)
    );
    let cache = m.get("cache").unwrap();
    // One build, then result-cache hits (no second compile, no second
    // execution).
    assert_eq!(cache.get("artifact_builds").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("result_hits").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("result_misses").and_then(Json::as_u64), Some(1));
    let lat = m.get("latency").unwrap();
    // /run requests plus this test's own /metrics fetches so far.
    assert!(lat.get("count").and_then(Json::as_u64).unwrap() >= 3);
    // Only the single executed run feeds the syscall aggregates; the two
    // cache hits add nothing.
    let sys = m.get("syscalls").unwrap();
    assert_eq!(sys.get("runs_executed").and_then(Json::as_u64), Some(1));
    assert_eq!(
        sys.get("count").and_then(Json::as_u64),
        Some(run_syscalls[0].0)
    );
    assert_eq!(
        sys.get("kernel_cycles").and_then(Json::as_u64),
        Some(run_syscalls[0].1)
    );
    assert_eq!(
        sys.get("kernel_bytes").and_then(Json::as_u64),
        Some(run_syscalls[0].2)
    );

    shutdown(handle, &addr);
}

#[test]
fn silent_connections_get_408_and_are_cut() {
    use std::io::{Read, Write};

    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        idle_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // A client that connects and never sends a request must be told why
    // it's being cut (408) and then disconnected — not pin a connection
    // slot until drain.
    let mut silent = std::net::TcpStream::connect(&addr).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = Vec::new();
    silent.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    assert!(text.contains("idle timeout"), "{text}");

    // Stalling mid-request (declared body never arrives) is the same
    // idle cut, not a hang.
    let mut stalled = std::net::TcpStream::connect(&addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stalled
        .write_all(b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        .unwrap();
    let mut raw = Vec::new();
    stalled.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");

    // A keep-alive connection that goes quiet after a served request is
    // cut the same way, and the server stays healthy for new clients.
    let mut quiet = std::net::TcpStream::connect(&addr).unwrap();
    quiet
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    quiet.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    quiet.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(
        text.contains("HTTP/1.1 408"),
        "no 408 after going quiet: {text}"
    );

    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.get("/healthz").unwrap().status, 200);
    shutdown(handle, &addr);
}

#[test]
fn report_endpoint_builds_a_slowdown_matrix() {
    let (handle, addr) = serve(2, 8);
    let mut c = Client::connect(&addr).unwrap();

    let body = Json::Obj(vec![
        (
            "benchmarks".into(),
            Json::Arr(vec![Json::Str("gemm".into())]),
        ),
        (
            "engines".into(),
            Json::Arr(vec![Json::Str("chrome".into())]),
        ),
        ("size".into(), Json::Str("test".into())),
    ]);
    let resp = c.post_json("/report", &body).unwrap();
    assert_eq!(resp.status, 200);
    let report = resp.body_json().unwrap();
    let rows = report.get("rows").unwrap().as_arr().unwrap();
    assert_eq!(rows.len(), 1);
    let row = &rows[0];
    assert_eq!(row.get("bench").and_then(Json::as_str), Some("gemm"));
    let slowdown = row.get("slowdown").unwrap();
    assert_eq!(slowdown.get("native").and_then(Json::as_f64), Some(1.0));
    // The paper's central observation, visible over the wire: wasm is
    // slower than native.
    assert!(slowdown.get("chrome").and_then(Json::as_f64).unwrap() > 1.0);

    shutdown(handle, &addr);
}

#[test]
fn graceful_drain_finishes_work_then_refuses() {
    let tmp = TempDir::new("drain");
    let log_path = tmp.0.join("access.jsonl");
    let trace_dir = tmp.0.join("traces");
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        log_path: Some(log_path.clone()),
        trace_dir: Some(trace_dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(
        c.post_json("/run", &run_body("gemm", "native"))
            .unwrap()
            .status,
        200
    );

    // Shutdown drains: the response arrives, then the listener dies.
    let resp = c.request("POST", "/shutdown", b"").unwrap();
    assert_eq!(resp.status, 200);
    handle.join();

    // New connections are refused once the drain completes.
    assert!(
        Client::connect(&addr).is_err(),
        "listener survived the drain"
    );

    // The access log recorded both requests with threaded request ids.
    let log = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<Json> = log.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(lines.len(), 2, "{log}");
    assert_eq!(lines[0].get("path").and_then(Json::as_str), Some("/run"));
    assert_eq!(lines[0].get("status").and_then(Json::as_u64), Some(200));
    let id0 = lines[0].get("id").and_then(Json::as_str).unwrap();
    assert!(id0.starts_with('r'), "{id0}");

    // The trace export exists and carries the same request ids.
    let trace = std::fs::read_to_string(trace_dir.join("serve.trace.json")).unwrap();
    assert!(trace.contains(&format!("{id0}/POST /run")), "{trace}");

    drop(tmp);
}

#[test]
fn loadgen_closed_loop_with_check_passes_end_to_end() {
    let (handle, addr) = serve(2, 16);

    let report = loadgen::run(&Options {
        addr: addr.clone(),
        mode: Mode::Closed { conns: 3 },
        requests: 18,
        benches: vec!["gemm".into()],
        engines: vec!["native".into(), "chrome".into()],
        size: Size::Test,
        check: true,
        verify_metrics: true,
        ..Options::default()
    });
    assert!(report.ok(), "loadgen gates failed: {}", report.render());
    assert_eq!(report.requests, 18);
    assert_eq!(report.transport_errors, 0);
    assert_eq!(report.status_counts.get(&200), Some(&18));
    assert_eq!(report.checked, 2);
    assert!(report.mismatches.is_empty());
    assert!(report.p50_us > 0);
    assert!(report.p99_us >= report.p50_us);

    // The report round-trips through its JSON schema.
    let j = report.to_json();
    assert_eq!(
        j.get("schema").and_then(Json::as_str),
        Some("wasmperf-loadgen/1")
    );
    assert_eq!(
        Json::parse(&j.render())
            .unwrap()
            .get("checked")
            .and_then(Json::as_u64),
        Some(2)
    );

    shutdown(handle, &addr);
}
