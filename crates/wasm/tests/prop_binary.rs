//! Property tests for the binary codec: decode never panics on garbage,
//! and mutation of valid modules is either rejected or decodes to a
//! *different* module (no silent aliasing).

use proptest::prelude::*;
use wasmperf_wasm::binary::{decode, encode};
use wasmperf_wasm::{FuncDef, FuncType, Instr, Limits, ValType, WasmModule};

fn sample_module(n_funcs: u8, body_len: u8) -> WasmModule {
    let mut m = WasmModule::default();
    let t = m.intern_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    m.memory = Some(Limits { min: 1, max: None });
    for i in 0..n_funcs {
        let mut body = vec![Instr::LocalGet(0)];
        for k in 0..body_len {
            body.push(Instr::I32Const(i as i32 * 100 + k as i32));
            body.push(Instr::IBinop(
                wasmperf_wasm::NumWidth::X32,
                wasmperf_wasm::instr::IBinop::Add,
            ));
        }
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![ValType::I64; (i % 3) as usize],
            body,
            name: format!("f{i}"),
        });
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Either Ok or Err — panics/overflows are bugs.
        let _ = decode(&bytes);
    }

    #[test]
    fn single_byte_corruption_never_panics(
        n_funcs in 1u8..5,
        body_len in 0u8..8,
        pos_frac in 0.0f64..1.0,
        new_byte in any::<u8>(),
    ) {
        let m = sample_module(n_funcs, body_len);
        let mut bytes = encode(&m);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = new_byte;
        let _ = decode(&bytes);
    }

    #[test]
    fn roundtrip_parameterized(n_funcs in 1u8..6, body_len in 0u8..10) {
        let m = sample_module(n_funcs, body_len);
        let decoded = decode(&encode(&m)).expect("valid modules decode");
        prop_assert_eq!(decoded, m);
    }

    #[test]
    fn truncation_rejected_or_visibly_smaller(n_funcs in 1u8..4, cut_frac in 0.05f64..0.95) {
        // Cutting at a section boundary can leave a well-formed smaller
        // module; a truncated stream must never decode back to the
        // original.
        let m = sample_module(n_funcs, 4);
        let bytes = encode(&m);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        match decode(&bytes[..cut]) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, m),
        }
    }
}
