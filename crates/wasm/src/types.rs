//! Value and function types.

use core::fmt;

/// A WebAssembly value type (MVP: the four numeric types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ValType {
    I32,
    I64,
    F32,
    F64,
}

impl ValType {
    /// Size of the type in bytes in linear memory.
    pub fn bytes(self) -> u32 {
        match self {
            ValType::I32 | ValType::F32 => 4,
            ValType::I64 | ValType::F64 => 8,
        }
    }

    /// True for `i32`/`i64`.
    pub fn is_int(self) -> bool {
        matches!(self, ValType::I32 | ValType::I64)
    }

    /// Binary-format type byte.
    pub fn byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
            ValType::F32 => 0x7d,
            ValType::F64 => 0x7c,
        }
    }

    /// Parses a binary-format type byte.
    pub fn from_byte(b: u8) -> Option<ValType> {
        match b {
            0x7f => Some(ValType::I32),
            0x7e => Some(ValType::I64),
            0x7d => Some(ValType::F32),
            0x7c => Some(ValType::F64),
            _ => None,
        }
    }
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A function type: parameter and result types.
///
/// The MVP allows at most one result.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter types.
    pub params: Vec<ValType>,
    /// Result types (0 or 1 in the MVP).
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Builds a function type.
    pub fn new(params: Vec<ValType>, results: Vec<ValType>) -> FuncType {
        assert!(results.len() <= 1, "MVP allows at most one result");
        FuncType { params, results }
    }

    /// The single result type, if any.
    pub fn result(&self) -> Option<ValType> {
        self.results.first().copied()
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        for t in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_byte(t.byte()), Some(t));
        }
        assert_eq!(ValType::from_byte(0x70), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(ValType::I32.bytes(), 4);
        assert_eq!(ValType::F64.bytes(), 8);
        assert!(ValType::I64.is_int());
        assert!(!ValType::F32.is_int());
    }

    #[test]
    fn functype_display() {
        let t = FuncType::new(vec![ValType::I32, ValType::F64], vec![ValType::I32]);
        assert_eq!(t.to_string(), "(i32 f64) -> (i32)");
        assert_eq!(t.result(), Some(ValType::I32));
        assert_eq!(FuncType::default().result(), None);
    }

    #[test]
    #[should_panic(expected = "at most one result")]
    fn multi_result_rejected() {
        let _ = FuncType::new(vec![], vec![ValType::I32, ValType::I32]);
    }
}
