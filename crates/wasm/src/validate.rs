//! Type-checking validator.
//!
//! Implements the algorithm from the WebAssembly specification appendix:
//! a value stack of (possibly unknown) operand types and a control stack
//! of frames, with `unreachable` handled by marking the current frame
//! polymorphic. Nested control structures are validated recursively since
//! our instruction representation is already structured.

use crate::instr::{BlockType, Instr};
use crate::module::{ExportKind, ImportKind, WasmModule, PAGE_SIZE};
use crate::types::{FuncType, ValType};
use core::fmt;

/// A validation failure, with a human-readable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Description of the failure.
    pub msg: String,
    /// Function (by debug name or index) in which it occurred, if any.
    pub func: Option<String>,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            Some(n) => write!(f, "validation error in {n}: {}", self.msg),
            None => write!(f, "validation error: {}", self.msg),
        }
    }
}

impl std::error::Error for ValidationError {}

type VResult<T> = Result<T, String>;

/// Operand type on the checker's stack: a concrete type or unknown
/// (produced by stack-polymorphic instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpType {
    Known(ValType),
    Unknown,
}

struct CtrlFrame {
    /// Types the frame's label expects (loop: params = []; we only have
    /// MVP blocks, so the label arity is 0 or 1).
    label_types: Option<ValType>,
    /// Result types of the frame.
    end_types: Option<ValType>,
    /// Value-stack height at entry.
    height: usize,
    /// Set once `unreachable`/`br`/... makes the rest unreachable.
    unreachable: bool,
    /// True for `loop` frames (labels target the top, taking no values).
    is_loop: bool,
}

struct FuncValidator<'m> {
    module: &'m WasmModule,
    locals: Vec<ValType>,
    ret: Option<ValType>,
    stack: Vec<OpType>,
    ctrl: Vec<CtrlFrame>,
}

impl<'m> FuncValidator<'m> {
    fn push(&mut self, t: ValType) {
        self.stack.push(OpType::Known(t));
    }

    fn push_unknown(&mut self) {
        self.stack.push(OpType::Unknown);
    }

    fn pop_any(&mut self) -> VResult<OpType> {
        let frame = self.ctrl.last().expect("control frame");
        if self.stack.len() == frame.height {
            if frame.unreachable {
                return Ok(OpType::Unknown);
            }
            return Err("stack underflow".to_string());
        }
        Ok(self.stack.pop().expect("non-empty"))
    }

    fn pop_expect(&mut self, want: ValType) -> VResult<()> {
        match self.pop_any()? {
            OpType::Known(t) if t == want => Ok(()),
            OpType::Known(t) => Err(format!("type mismatch: expected {want}, got {t}")),
            OpType::Unknown => Ok(()),
        }
    }

    fn push_frame(&mut self, bt: BlockType, is_loop: bool) {
        self.ctrl.push(CtrlFrame {
            label_types: if is_loop { None } else { bt.result() },
            end_types: bt.result(),
            height: self.stack.len(),
            unreachable: false,
            is_loop,
        });
    }

    fn pop_frame(&mut self) -> VResult<Option<ValType>> {
        let frame = self.ctrl.last().expect("frame");
        let end = frame.end_types;
        let height = frame.height;
        if let Some(t) = end {
            self.pop_expect(t)?;
        }
        let frame = self.ctrl.last().expect("frame");
        if self.stack.len() != frame.height && !frame.unreachable {
            return Err(format!(
                "block leaves {} extra values on stack",
                self.stack.len() - frame.height
            ));
        }
        self.stack.truncate(height);
        self.ctrl.pop();
        Ok(end)
    }

    fn mark_unreachable(&mut self) {
        let frame = self.ctrl.last_mut().expect("frame");
        frame.unreachable = true;
        let h = frame.height;
        self.stack.truncate(h);
    }

    fn label_arity(&self, depth: u32) -> VResult<Option<ValType>> {
        let n = self.ctrl.len();
        if depth as usize >= n {
            return Err(format!("branch depth {depth} exceeds nesting {n}"));
        }
        let frame = &self.ctrl[n - 1 - depth as usize];
        Ok(if frame.is_loop {
            None
        } else {
            frame.label_types
        })
    }

    fn check_br_values(&mut self, depth: u32) -> VResult<()> {
        if let Some(t) = self.label_arity(depth)? {
            self.pop_expect(t)?;
            self.push(t);
        }
        Ok(())
    }

    fn local(&self, idx: u32) -> VResult<ValType> {
        self.locals
            .get(idx as usize)
            .copied()
            .ok_or_else(|| format!("unknown local {idx}"))
    }

    fn check_body(&mut self, body: &[Instr]) -> VResult<()> {
        for instr in body {
            self.check_instr(instr)?;
        }
        Ok(())
    }

    fn require_memory(&self) -> VResult<()> {
        let has = self.module.memory.is_some()
            || self
                .module
                .imports
                .iter()
                .any(|i| matches!(i.kind, ImportKind::Memory(_)));
        if has {
            Ok(())
        } else {
            Err("memory instruction without a memory".to_string())
        }
    }

    fn check_instr(&mut self, instr: &Instr) -> VResult<()> {
        use Instr::*;
        match instr {
            Unreachable => self.mark_unreachable(),
            Nop => {}
            Block(bt, body) => {
                self.push_frame(*bt, false);
                self.check_body(body)?;
                if let Some(t) = self.pop_frame()? {
                    self.push(t);
                }
            }
            Loop(bt, body) => {
                self.push_frame(*bt, true);
                self.check_body(body)?;
                if let Some(t) = self.pop_frame()? {
                    self.push(t);
                }
            }
            If(bt, then_body, else_body) => {
                self.pop_expect(ValType::I32)?;
                self.push_frame(*bt, false);
                self.check_body(then_body)?;
                // Re-check the else arm against a fresh frame.
                let end = {
                    let frame = self.ctrl.last().expect("frame");
                    frame.end_types
                };
                if let Some(t) = end {
                    self.pop_expect(t)?;
                }
                {
                    let frame = self.ctrl.last_mut().expect("frame");
                    let h = frame.height;
                    frame.unreachable = false;
                    self.stack.truncate(h);
                }
                self.check_body(else_body)?;
                if else_body.is_empty() && end.is_some() {
                    return Err("if with result requires an else arm".to_string());
                }
                if let Some(t) = self.pop_frame()? {
                    self.push(t);
                }
            }
            Br(depth) => {
                self.check_br_values(*depth)?;
                self.mark_unreachable();
            }
            BrIf(depth) => {
                self.pop_expect(ValType::I32)?;
                self.check_br_values(*depth)?;
            }
            BrTable(targets, default) => {
                self.pop_expect(ValType::I32)?;
                let want = self.label_arity(*default)?;
                for t in targets {
                    if self.label_arity(*t)? != want {
                        return Err("br_table label arity mismatch".to_string());
                    }
                }
                if let Some(t) = want {
                    self.pop_expect(t)?;
                }
                self.mark_unreachable();
            }
            Return => {
                if let Some(t) = self.ret {
                    self.pop_expect(t)?;
                }
                self.mark_unreachable();
            }
            Call(idx) => {
                let ft = self
                    .module
                    .func_type(*idx)
                    .ok_or_else(|| format!("unknown function {idx}"))?
                    .clone();
                for p in ft.params.iter().rev() {
                    self.pop_expect(*p)?;
                }
                if let Some(r) = ft.result() {
                    self.push(r);
                }
            }
            CallIndirect(type_idx) => {
                if self.module.table.is_none() {
                    return Err("call_indirect without a table".to_string());
                }
                let ft = self
                    .module
                    .types
                    .get(*type_idx as usize)
                    .ok_or_else(|| format!("unknown type {type_idx}"))?
                    .clone();
                self.pop_expect(ValType::I32)?; // Table index.
                for p in ft.params.iter().rev() {
                    self.pop_expect(*p)?;
                }
                if let Some(r) = ft.result() {
                    self.push(r);
                }
            }
            Drop => {
                self.pop_any()?;
            }
            Select => {
                self.pop_expect(ValType::I32)?;
                let a = self.pop_any()?;
                let b = self.pop_any()?;
                match (a, b) {
                    (OpType::Known(x), OpType::Known(y)) if x != y => {
                        return Err(format!("select arms differ: {x} vs {y}"));
                    }
                    (OpType::Known(x), _) | (_, OpType::Known(x)) => self.push(x),
                    _ => self.push_unknown(),
                }
            }
            LocalGet(i) => {
                let t = self.local(*i)?;
                self.push(t);
            }
            LocalSet(i) => {
                let t = self.local(*i)?;
                self.pop_expect(t)?;
            }
            LocalTee(i) => {
                let t = self.local(*i)?;
                self.pop_expect(t)?;
                self.push(t);
            }
            GlobalGet(i) => {
                let g = self
                    .module
                    .globals
                    .get(*i as usize)
                    .ok_or_else(|| format!("unknown global {i}"))?;
                self.push(g.ty);
            }
            GlobalSet(i) => {
                let g = self
                    .module
                    .globals
                    .get(*i as usize)
                    .ok_or_else(|| format!("unknown global {i}"))?;
                if !g.mutable {
                    return Err(format!("global {i} is immutable"));
                }
                let ty = g.ty;
                self.pop_expect(ty)?;
            }
            Load { ty, sub, memarg } => {
                self.require_memory()?;
                let bytes = sub.map(|(w, _)| w.bytes()).unwrap_or(ty.bytes());
                if (1u32 << memarg.align) > bytes {
                    return Err("alignment larger than natural".to_string());
                }
                self.pop_expect(ValType::I32)?;
                self.push(*ty);
            }
            Store { ty, sub, memarg } => {
                self.require_memory()?;
                let bytes = sub.map(|w| w.bytes()).unwrap_or(ty.bytes());
                if (1u32 << memarg.align) > bytes {
                    return Err("alignment larger than natural".to_string());
                }
                self.pop_expect(*ty)?;
                self.pop_expect(ValType::I32)?;
            }
            MemorySize => {
                self.require_memory()?;
                self.push(ValType::I32);
            }
            MemoryGrow => {
                self.require_memory()?;
                self.pop_expect(ValType::I32)?;
                self.push(ValType::I32);
            }
            I32Const(_) => self.push(ValType::I32),
            I64Const(_) => self.push(ValType::I64),
            F32Const(_) => self.push(ValType::F32),
            F64Const(_) => self.push(ValType::F64),
            ITestop(w) => {
                self.pop_expect(w.int_ty())?;
                self.push(ValType::I32);
            }
            IRelop(w, _) => {
                self.pop_expect(w.int_ty())?;
                self.pop_expect(w.int_ty())?;
                self.push(ValType::I32);
            }
            FRelop(w, _) => {
                self.pop_expect(w.float_ty())?;
                self.pop_expect(w.float_ty())?;
                self.push(ValType::I32);
            }
            IUnop(w, _) => {
                self.pop_expect(w.int_ty())?;
                self.push(w.int_ty());
            }
            IBinop(w, _) => {
                self.pop_expect(w.int_ty())?;
                self.pop_expect(w.int_ty())?;
                self.push(w.int_ty());
            }
            FUnop(w, _) => {
                self.pop_expect(w.float_ty())?;
                self.push(w.float_ty());
            }
            FBinop(w, _) => {
                self.pop_expect(w.float_ty())?;
                self.pop_expect(w.float_ty())?;
                self.push(w.float_ty());
            }
            Cvt(op) => {
                let (from, to) = op.signature();
                self.pop_expect(from)?;
                self.push(to);
            }
        }
        Ok(())
    }
}

fn validate_func(module: &WasmModule, ft: &FuncType, def: &crate::module::FuncDef) -> VResult<()> {
    let mut locals = ft.params.clone();
    locals.extend_from_slice(&def.locals);
    let mut v = FuncValidator {
        module,
        locals,
        ret: ft.result(),
        stack: Vec::new(),
        ctrl: vec![CtrlFrame {
            label_types: ft.result(),
            end_types: ft.result(),
            height: 0,
            unreachable: false,
            is_loop: false,
        }],
    };
    v.check_body(&def.body)?;
    if let Some(t) = v.pop_frame()? {
        // Implicit return value remains conceptually on the stack.
        let _ = t;
    }
    Ok(())
}

/// Validates a whole module.
///
/// Checks every function body, type/function/global/export index validity,
/// table element bounds, and data-segment bounds against the initial
/// memory size.
pub fn validate(module: &WasmModule) -> Result<(), ValidationError> {
    let err = |msg: String| ValidationError { msg, func: None };

    for imp in &module.imports {
        if let ImportKind::Func(ti) = imp.kind {
            if ti as usize >= module.types.len() {
                return Err(err(format!(
                    "import {}.{} references unknown type {ti}",
                    imp.module, imp.field
                )));
            }
        }
    }

    for (i, def) in module.funcs.iter().enumerate() {
        let ft = module
            .types
            .get(def.type_idx as usize)
            .ok_or_else(|| err(format!("function {i} has unknown type {}", def.type_idx)))?;
        validate_func(module, ft, def).map_err(|msg| ValidationError {
            msg,
            func: Some(if def.name.is_empty() {
                format!("func[{i}]")
            } else {
                def.name.clone()
            }),
        })?;
    }

    let n_funcs = module.num_imported_funcs() + module.funcs.len() as u32;
    for e in &module.exports {
        match e.kind {
            ExportKind::Func(i) if i >= n_funcs => {
                return Err(err(format!(
                    "export {} references unknown function",
                    e.name
                )));
            }
            ExportKind::Global(i) if i as usize >= module.globals.len() => {
                return Err(err(format!("export {} references unknown global", e.name)));
            }
            _ => {}
        }
    }

    if let Some(start) = module.start {
        let ft = module
            .func_type(start)
            .ok_or_else(|| err("start function does not exist".to_string()))?;
        if !ft.params.is_empty() || !ft.results.is_empty() {
            return Err(err("start function must be [] -> []".to_string()));
        }
    }

    match module.table {
        Some(limits) => {
            for elem in &module.elems {
                let end = elem.offset as u64 + elem.funcs.len() as u64;
                if end > limits.min as u64 {
                    return Err(err("element segment out of table bounds".to_string()));
                }
                for &f in &elem.funcs {
                    if f >= n_funcs {
                        return Err(err(format!("element references unknown function {f}")));
                    }
                }
            }
        }
        None => {
            if !module.elems.is_empty() {
                return Err(err("element segment without a table".to_string()));
            }
        }
    }

    match module.memory {
        Some(limits) => {
            let bytes = limits.min as u64 * PAGE_SIZE as u64;
            for d in &module.data {
                if d.offset as u64 + d.bytes.len() as u64 > bytes {
                    return Err(err("data segment out of memory bounds".to_string()));
                }
            }
        }
        None => {
            if !module.data.is_empty() {
                return Err(err("data segment without a memory".to_string()));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{IBinop, NumWidth};
    use crate::module::{DataSegment, Export, FuncDef, Global, Limits};

    fn module_with_body(
        params: Vec<ValType>,
        results: Vec<ValType>,
        body: Vec<Instr>,
    ) -> WasmModule {
        let mut m = WasmModule::default();
        let ti = m.intern_type(FuncType::new(params, results));
        m.memory = Some(Limits { min: 1, max: None });
        m.funcs.push(FuncDef {
            type_idx: ti,
            locals: vec![],
            body,
            name: "test".into(),
        });
        m
    }

    #[test]
    fn valid_add_function() {
        let m = module_with_body(
            vec![ValType::I32, ValType::I32],
            vec![ValType::I32],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::IBinop(NumWidth::X32, IBinop::Add),
            ],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn type_mismatch_rejected() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![
                Instr::I64Const(1),
                Instr::I32Const(2),
                Instr::IBinop(NumWidth::X32, IBinop::Add),
            ],
        );
        let e = validate(&m).unwrap_err();
        assert!(e.msg.contains("type mismatch"), "{e}");
    }

    #[test]
    fn stack_underflow_rejected() {
        let m = module_with_body(
            vec![],
            vec![],
            vec![Instr::IBinop(NumWidth::X32, IBinop::Add), Instr::Drop],
        );
        let e = validate(&m).unwrap_err();
        assert!(e.msg.contains("underflow"), "{e}");
    }

    #[test]
    fn missing_result_rejected() {
        let m = module_with_body(vec![], vec![ValType::I32], vec![Instr::Nop]);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn leftover_values_rejected() {
        let m = module_with_body(vec![], vec![], vec![Instr::I32Const(1), Instr::I32Const(2)]);
        let e = validate(&m).unwrap_err();
        assert!(e.msg.contains("extra values"), "{e}");
    }

    #[test]
    fn unreachable_is_polymorphic() {
        // After `unreachable`, anything type-checks.
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![
                Instr::Unreachable,
                Instr::IBinop(NumWidth::X64, IBinop::Mul),
                Instr::Drop,
            ],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn br_depth_checked() {
        let m = module_with_body(
            vec![],
            vec![],
            vec![Instr::Block(BlockType::Empty, vec![Instr::Br(5)])],
        );
        let e = validate(&m).unwrap_err();
        assert!(e.msg.contains("depth"), "{e}");
    }

    #[test]
    fn br_carries_block_result() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![Instr::Block(
                BlockType::Value(ValType::I32),
                vec![Instr::I32Const(7), Instr::Br(0)],
            )],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn loop_label_takes_no_values() {
        // A br to a loop label re-enters the loop and must not carry the
        // loop's result value.
        let m = module_with_body(
            vec![],
            vec![],
            vec![Instr::Loop(
                BlockType::Empty,
                vec![Instr::I32Const(0), Instr::BrIf(0)],
            )],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn if_with_result_needs_else() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![
                Instr::I32Const(1),
                Instr::If(
                    BlockType::Value(ValType::I32),
                    vec![Instr::I32Const(2)],
                    vec![],
                ),
            ],
        );
        assert!(validate(&m).is_err());
        let ok = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![
                Instr::I32Const(1),
                Instr::If(
                    BlockType::Value(ValType::I32),
                    vec![Instr::I32Const(2)],
                    vec![Instr::I32Const(3)],
                ),
            ],
        );
        validate(&ok).unwrap();
    }

    #[test]
    fn if_arms_checked_independently() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![
                Instr::I32Const(1),
                Instr::If(
                    BlockType::Value(ValType::I32),
                    vec![Instr::I32Const(2)],
                    vec![Instr::I64Const(3)], // Wrong type in else.
                ),
            ],
        );
        assert!(validate(&m).is_err());
    }

    #[test]
    fn unknown_local_rejected() {
        let m = module_with_body(vec![], vec![], vec![Instr::LocalGet(3), Instr::Drop]);
        let e = validate(&m).unwrap_err();
        assert!(e.msg.contains("unknown local"), "{e}");
    }

    #[test]
    fn immutable_global_set_rejected() {
        let mut m = module_with_body(
            vec![],
            vec![],
            vec![Instr::I32Const(0), Instr::GlobalSet(0)],
        );
        m.globals.push(Global {
            ty: ValType::I32,
            mutable: false,
            init: 0,
        });
        let e = validate(&m).unwrap_err();
        assert!(e.msg.contains("immutable"), "{e}");
    }

    #[test]
    fn call_checks_arguments() {
        let mut m = WasmModule::default();
        let t_callee = m.intern_type(FuncType::new(vec![ValType::I64], vec![]));
        let t_caller = m.intern_type(FuncType::new(vec![], vec![]));
        m.funcs.push(FuncDef {
            type_idx: t_callee,
            locals: vec![],
            body: vec![Instr::Nop],
            name: "callee".into(),
        });
        m.funcs.push(FuncDef {
            type_idx: t_caller,
            locals: vec![],
            body: vec![Instr::I32Const(0), Instr::Call(0)],
            name: "caller".into(),
        });
        // Passing i32 where i64 expected.
        assert!(validate(&m).is_err());
    }

    #[test]
    fn memory_access_without_memory_rejected() {
        let mut m = module_with_body(
            vec![],
            vec![],
            vec![
                Instr::I32Const(0),
                Instr::Load {
                    ty: ValType::I32,
                    sub: None,
                    memarg: Default::default(),
                },
                Instr::Drop,
            ],
        );
        m.memory = None;
        let e = validate(&m).unwrap_err();
        assert!(e.msg.contains("without a memory"), "{e}");
    }

    #[test]
    fn over_aligned_access_rejected() {
        let m = module_with_body(
            vec![],
            vec![],
            vec![
                Instr::I32Const(0),
                Instr::Load {
                    ty: ValType::I32,
                    sub: None,
                    memarg: crate::instr::MemArg {
                        align: 3,
                        offset: 0,
                    },
                },
                Instr::Drop,
            ],
        );
        assert!(validate(&m).is_err());
    }

    #[test]
    fn data_segment_bounds_checked() {
        let mut m = module_with_body(vec![], vec![], vec![]);
        m.data.push(DataSegment {
            offset: PAGE_SIZE - 2,
            bytes: vec![0; 4],
        });
        let e = validate(&m).unwrap_err();
        assert!(e.msg.contains("data segment"), "{e}");
    }

    #[test]
    fn element_segment_bounds_checked() {
        let mut m = module_with_body(vec![], vec![], vec![]);
        m.table = Some(Limits { min: 2, max: None });
        m.elems.push(crate::module::ElemSegment {
            offset: 1,
            funcs: vec![0, 0],
        });
        assert!(validate(&m).is_err());
    }

    #[test]
    fn export_index_checked() {
        let mut m = module_with_body(vec![], vec![], vec![]);
        m.exports.push(Export {
            name: "f".into(),
            kind: ExportKind::Func(9),
        });
        assert!(validate(&m).is_err());
    }

    #[test]
    fn br_table_arity_mismatch_rejected() {
        let m = module_with_body(
            vec![],
            vec![],
            vec![Instr::Block(
                BlockType::Value(ValType::I32),
                vec![Instr::Block(
                    BlockType::Empty,
                    vec![
                        Instr::I32Const(0),
                        Instr::I32Const(0),
                        Instr::BrTable(vec![0], 1),
                    ],
                )],
            )],
        );
        assert!(validate(&m).is_err());
    }
}
