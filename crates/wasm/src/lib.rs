//! WebAssembly MVP substrate.
//!
//! The paper studies the initial, stable version of WebAssembly ("the MVP")
//! that all major browsers shipped: no SIMD, threads, tail calls, or GC.
//! This crate implements that platform from scratch:
//!
//! - [`module`]: the module structure (types, functions, table, memory,
//!   globals, exports, element and data segments),
//! - [`instr`]: the full MVP instruction set, grouped by operator family
//!   the way the specification's validation and execution rules are,
//! - [`validate`](crate::validate::validate): the type-checking validator, implementing the
//!   specification appendix's algorithm with an operand stack and a
//!   control stack,
//! - [`binary`]: the binary format — LEB128, sections, round-trippable
//!   encoder and decoder,
//! - [`interp`]: a reference interpreter used as the semantic oracle for
//!   differential testing of the JIT backends, and
//! - [`wat`]: a WAT-style pretty-printer.
//!
//! The `wasmperf-emcc` crate compiles CLite programs *to* these modules;
//! the `wasmperf-wasmjit` crate compiles these modules to simulated
//! x86-64 the way Chrome's and Firefox's engines do.

pub mod binary;
pub mod instr;
pub mod interp;
pub mod module;
pub mod types;
pub mod validate;
pub mod wat;

pub use instr::{
    BlockType, CvtOp, FBinop, FRelop, FUnop, IBinop, IRelop, IUnop, Instr, MemArg, NumWidth,
};
pub use interp::{ImportHost, Instance, NoImports, Value, WasmTrap};
pub use module::{
    DataSegment, ElemSegment, Export, ExportKind, FuncDef, Global, Import, ImportKind, Limits,
    WasmModule,
};
pub use types::{FuncType, ValType};
pub use validate::validate;
pub use validate::ValidationError;
