//! WAT-style pretty-printer.
//!
//! Renders modules in a readable, WAT-like linear text form. Used by the
//! documentation examples and by tests that want readable failure output;
//! it is a printer only (the toolchain constructs modules programmatically
//! via `wasmperf-emcc`).

use crate::instr::{
    BlockType, CvtOp, FBinop, FRelop, FUnop, IBinop, IRelop, Instr, NumWidth, SubWidth,
};
use crate::module::{ExportKind, ImportKind, WasmModule};
use core::fmt::Write;

fn w(nw: NumWidth) -> &'static str {
    match nw {
        NumWidth::X32 => "32",
        NumWidth::X64 => "64",
    }
}

fn ibinop_name(op: IBinop) -> &'static str {
    match op {
        IBinop::Add => "add",
        IBinop::Sub => "sub",
        IBinop::Mul => "mul",
        IBinop::DivS => "div_s",
        IBinop::DivU => "div_u",
        IBinop::RemS => "rem_s",
        IBinop::RemU => "rem_u",
        IBinop::And => "and",
        IBinop::Or => "or",
        IBinop::Xor => "xor",
        IBinop::Shl => "shl",
        IBinop::ShrS => "shr_s",
        IBinop::ShrU => "shr_u",
        IBinop::Rotl => "rotl",
        IBinop::Rotr => "rotr",
    }
}

fn irelop_name(op: IRelop) -> &'static str {
    match op {
        IRelop::Eq => "eq",
        IRelop::Ne => "ne",
        IRelop::LtS => "lt_s",
        IRelop::LtU => "lt_u",
        IRelop::GtS => "gt_s",
        IRelop::GtU => "gt_u",
        IRelop::LeS => "le_s",
        IRelop::LeU => "le_u",
        IRelop::GeS => "ge_s",
        IRelop::GeU => "ge_u",
    }
}

fn funop_name(op: FUnop) -> &'static str {
    match op {
        FUnop::Abs => "abs",
        FUnop::Neg => "neg",
        FUnop::Ceil => "ceil",
        FUnop::Floor => "floor",
        FUnop::Trunc => "trunc",
        FUnop::Nearest => "nearest",
        FUnop::Sqrt => "sqrt",
    }
}

fn fbinop_name(op: FBinop) -> &'static str {
    match op {
        FBinop::Add => "add",
        FBinop::Sub => "sub",
        FBinop::Mul => "mul",
        FBinop::Div => "div",
        FBinop::Min => "min",
        FBinop::Max => "max",
        FBinop::Copysign => "copysign",
    }
}

fn frelop_name(op: FRelop) -> &'static str {
    match op {
        FRelop::Eq => "eq",
        FRelop::Ne => "ne",
        FRelop::Lt => "lt",
        FRelop::Gt => "gt",
        FRelop::Le => "le",
        FRelop::Ge => "ge",
    }
}

fn cvt_name(op: CvtOp) -> &'static str {
    use CvtOp::*;
    match op {
        I32WrapI64 => "i32.wrap_i64",
        I32TruncF32S => "i32.trunc_f32_s",
        I32TruncF32U => "i32.trunc_f32_u",
        I32TruncF64S => "i32.trunc_f64_s",
        I32TruncF64U => "i32.trunc_f64_u",
        I64ExtendI32S => "i64.extend_i32_s",
        I64ExtendI32U => "i64.extend_i32_u",
        I64TruncF32S => "i64.trunc_f32_s",
        I64TruncF32U => "i64.trunc_f32_u",
        I64TruncF64S => "i64.trunc_f64_s",
        I64TruncF64U => "i64.trunc_f64_u",
        F32ConvertI32S => "f32.convert_i32_s",
        F32ConvertI32U => "f32.convert_i32_u",
        F32ConvertI64S => "f32.convert_i64_s",
        F32ConvertI64U => "f32.convert_i64_u",
        F32DemoteF64 => "f32.demote_f64",
        F64ConvertI32S => "f64.convert_i32_s",
        F64ConvertI32U => "f64.convert_i32_u",
        F64ConvertI64S => "f64.convert_i64_s",
        F64ConvertI64U => "f64.convert_i64_u",
        F64PromoteF32 => "f64.promote_f32",
        I32ReinterpretF32 => "i32.reinterpret_f32",
        I64ReinterpretF64 => "i64.reinterpret_f64",
        F32ReinterpretI32 => "f32.reinterpret_i32",
        F64ReinterpretI64 => "f64.reinterpret_i64",
    }
}

fn bt_suffix(bt: &BlockType) -> String {
    match bt {
        BlockType::Empty => String::new(),
        BlockType::Value(t) => format!(" (result {t})"),
    }
}

fn print_instr(out: &mut String, i: &Instr, indent: usize) {
    let pad = "  ".repeat(indent);
    use Instr::*;
    match i {
        Block(bt, body) => {
            let _ = writeln!(out, "{pad}block{}", bt_suffix(bt));
            for x in body {
                print_instr(out, x, indent + 1);
            }
            let _ = writeln!(out, "{pad}end");
        }
        Loop(bt, body) => {
            let _ = writeln!(out, "{pad}loop{}", bt_suffix(bt));
            for x in body {
                print_instr(out, x, indent + 1);
            }
            let _ = writeln!(out, "{pad}end");
        }
        If(bt, t, e) => {
            let _ = writeln!(out, "{pad}if{}", bt_suffix(bt));
            for x in t {
                print_instr(out, x, indent + 1);
            }
            if !e.is_empty() {
                let _ = writeln!(out, "{pad}else");
                for x in e {
                    print_instr(out, x, indent + 1);
                }
            }
            let _ = writeln!(out, "{pad}end");
        }
        other => {
            let _ = writeln!(out, "{pad}{}", instr_head(other));
        }
    }
}

/// One-line mnemonic for a single instruction. Structured instructions
/// yield just their header (`block`, `loop (result i32)`, `if`), without
/// the nested body.
pub fn instr_head(i: &Instr) -> String {
    use Instr::*;
    match i {
        Block(bt, _) => format!("block{}", bt_suffix(bt)),
        Loop(bt, _) => format!("loop{}", bt_suffix(bt)),
        If(bt, ..) => format!("if{}", bt_suffix(bt)),
        other => match other {
            Unreachable => "unreachable".to_string(),
            Nop => "nop".to_string(),
            Br(d) => format!("br {d}"),
            BrIf(d) => format!("br_if {d}"),
            BrTable(t, d) => format!(
                "br_table {} {d}",
                t.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
            Return => "return".to_string(),
            Call(f) => format!("call {f}"),
            CallIndirect(t) => format!("call_indirect (type {t})"),
            Drop => "drop".to_string(),
            Select => "select".to_string(),
            LocalGet(i) => format!("local.get {i}"),
            LocalSet(i) => format!("local.set {i}"),
            LocalTee(i) => format!("local.tee {i}"),
            GlobalGet(i) => format!("global.get {i}"),
            GlobalSet(i) => format!("global.set {i}"),
            Load { ty, sub, memarg } => {
                let suffix = match sub {
                    None => String::new(),
                    Some((SubWidth::B8, true)) => "8_s".into(),
                    Some((SubWidth::B8, false)) => "8_u".into(),
                    Some((SubWidth::B16, true)) => "16_s".into(),
                    Some((SubWidth::B16, false)) => "16_u".into(),
                    Some((SubWidth::B32, true)) => "32_s".into(),
                    Some((SubWidth::B32, false)) => "32_u".into(),
                };
                format!("{ty}.load{suffix} offset={}", memarg.offset)
            }
            Store { ty, sub, memarg } => {
                let suffix = match sub {
                    None => "",
                    Some(SubWidth::B8) => "8",
                    Some(SubWidth::B16) => "16",
                    Some(SubWidth::B32) => "32",
                };
                format!("{ty}.store{suffix} offset={}", memarg.offset)
            }
            MemorySize => "memory.size".to_string(),
            MemoryGrow => "memory.grow".to_string(),
            I32Const(v) => format!("i32.const {v}"),
            I64Const(v) => format!("i64.const {v}"),
            F32Const(b) => format!("f32.const {}", f32::from_bits(*b)),
            F64Const(b) => format!("f64.const {}", f64::from_bits(*b)),
            ITestop(nw) => format!("i{}.eqz", w(*nw)),
            IRelop(nw, op) => format!("i{}.{}", w(*nw), irelop_name(*op)),
            FRelop(nw, op) => format!("f{}.{}", w(*nw), frelop_name(*op)),
            IUnop(nw, op) => format!(
                "i{}.{}",
                w(*nw),
                match op {
                    crate::instr::IUnop::Clz => "clz",
                    crate::instr::IUnop::Ctz => "ctz",
                    crate::instr::IUnop::Popcnt => "popcnt",
                }
            ),
            IBinop(nw, op) => format!("i{}.{}", w(*nw), ibinop_name(*op)),
            FUnop(nw, op) => format!("f{}.{}", w(*nw), funop_name(*op)),
            FBinop(nw, op) => format!("f{}.{}", w(*nw), fbinop_name(*op)),
            Cvt(op) => cvt_name(*op).to_string(),
            Block(..) | Loop(..) | If(..) => unreachable!(),
        },
    }
}

/// Renders `module` in a WAT-like textual form.
pub fn print_module(module: &WasmModule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(module");
    for (i, t) in module.types.iter().enumerate() {
        let _ = writeln!(out, "  (type {i} {t})");
    }
    for imp in &module.imports {
        let kind = match &imp.kind {
            ImportKind::Func(t) => format!("(func (type {t}))"),
            ImportKind::Memory(l) => format!("(memory {})", l.min),
            ImportKind::Global(t, m) => {
                format!("(global {}{})", if *m { "mut " } else { "" }, t)
            }
        };
        let _ = writeln!(
            out,
            "  (import \"{}\" \"{}\" {kind})",
            imp.module, imp.field
        );
    }
    if let Some(mem) = &module.memory {
        match mem.max {
            Some(max) => {
                let _ = writeln!(out, "  (memory {} {})", mem.min, max);
            }
            None => {
                let _ = writeln!(out, "  (memory {})", mem.min);
            }
        }
    }
    if let Some(t) = &module.table {
        let _ = writeln!(out, "  (table {} funcref)", t.min);
    }
    for (i, g) in module.globals.iter().enumerate() {
        let _ = writeln!(
            out,
            "  (global {i} ({}{}) (init {:#x}))",
            if g.mutable { "mut " } else { "" },
            g.ty,
            g.init
        );
    }
    let base = module.num_imported_funcs();
    for (i, f) in module.funcs.iter().enumerate() {
        let ft = &module.types[f.type_idx as usize];
        let name = if f.name.is_empty() {
            format!("func[{}]", base + i as u32)
        } else {
            f.name.clone()
        };
        let _ = writeln!(out, "  (func ${name} {ft}");
        if !f.locals.is_empty() {
            let locals: Vec<String> = f.locals.iter().map(|t| t.to_string()).collect();
            let _ = writeln!(out, "    (local {})", locals.join(" "));
        }
        for instr in &f.body {
            print_instr(&mut out, instr, 2);
        }
        let _ = writeln!(out, "  )");
    }
    for e in &module.exports {
        let kind = match e.kind {
            ExportKind::Func(i) => format!("(func {i})"),
            ExportKind::Memory => "(memory 0)".to_string(),
            ExportKind::Global(i) => format!("(global {i})"),
        };
        let _ = writeln!(out, "  (export \"{}\" {kind})", e.name);
    }
    for e in &module.elems {
        let funcs: Vec<String> = e.funcs.iter().map(|f| f.to_string()).collect();
        let _ = writeln!(out, "  (elem (i32.const {}) {})", e.offset, funcs.join(" "));
    }
    for d in &module.data {
        let _ = writeln!(
            out,
            "  (data (i32.const {}) ;; {} bytes",
            d.offset,
            d.bytes.len()
        );
    }
    let _ = writeln!(out, ")");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{FuncDef, Limits};
    use crate::types::{FuncType, ValType};

    #[test]
    fn prints_structured_body() {
        let mut m = WasmModule::default();
        let t = m.intern_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        m.memory = Some(Limits { min: 1, max: None });
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![ValType::I32],
            body: vec![
                Instr::Loop(
                    BlockType::Empty,
                    vec![
                        Instr::LocalGet(0),
                        Instr::I32Const(1),
                        Instr::IBinop(NumWidth::X32, IBinop::Sub),
                        Instr::LocalTee(0),
                        Instr::BrIf(0),
                    ],
                ),
                Instr::LocalGet(0),
            ],
            name: "countdown".into(),
        });
        let s = print_module(&m);
        assert!(s.contains("(func $countdown (i32) -> (i32)"), "{s}");
        assert!(s.contains("loop"), "{s}");
        assert!(s.contains("i32.sub"), "{s}");
        assert!(s.contains("br_if 0"), "{s}");
        assert!(s.contains("(local i32)"), "{s}");
    }

    #[test]
    fn prints_memory_ops_with_offset() {
        let mut out = String::new();
        print_instr(
            &mut out,
            &Instr::Load {
                ty: ValType::I64,
                sub: Some((SubWidth::B32, false)),
                memarg: crate::instr::MemArg::natural(4, 16),
            },
            0,
        );
        assert_eq!(out.trim(), "i64.load32_u offset=16");
    }
}
