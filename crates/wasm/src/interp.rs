//! Reference interpreter.
//!
//! A straightforward structured-control interpreter used as the semantic
//! oracle: every benchmark's output under the JIT backends must match its
//! output here (and under the CLite interpreter and the native backend).
//! Values are stored untyped as `u64` slots — validation guarantees
//! type-correct usage — with integer values zero-extended and floats kept
//! as bit patterns, so float semantics are exactly IEEE-754 regardless of
//! host rounding of printed text.

use crate::instr::{
    CvtOp, FBinop, FRelop, FUnop, IBinop, IRelop, IUnop, Instr, MemArg, NumWidth, SubWidth,
};
use crate::module::{ImportKind, WasmModule, PAGE_SIZE};
use crate::types::ValType;
use core::fmt;

/// A typed WebAssembly value (API boundary; floats carried as bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An `i32`.
    I32(i32),
    /// An `i64`.
    I64(i64),
    /// An `f32`, by bit pattern.
    F32(u32),
    /// An `f64`, by bit pattern.
    F64(u64),
}

impl Value {
    /// The value's type.
    pub fn ty(&self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
        }
    }

    /// Raw 64-bit slot representation.
    pub fn raw(&self) -> u64 {
        match self {
            Value::I32(v) => *v as u32 as u64,
            Value::I64(v) => *v as u64,
            Value::F32(b) => *b as u64,
            Value::F64(b) => *b,
        }
    }

    /// Builds a value of type `ty` from a raw slot.
    pub fn from_raw(ty: ValType, raw: u64) -> Value {
        match ty {
            ValType::I32 => Value::I32(raw as u32 as i32),
            ValType::I64 => Value::I64(raw as i64),
            ValType::F32 => Value::F32(raw as u32),
            ValType::F64 => Value::F64(raw),
        }
    }

    /// Convenience accessor for `i32` values.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `i32`.
    pub fn unwrap_i32(&self) -> i32 {
        match self {
            Value::I32(v) => *v,
            other => panic!("expected i32, got {other:?}"),
        }
    }
}

/// A runtime trap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WasmTrap {
    /// `unreachable` executed.
    Unreachable,
    /// Integer division by zero.
    DivByZero,
    /// Signed overflow in division or float-to-int conversion.
    IntegerOverflow,
    /// Out-of-bounds linear-memory access.
    OutOfBoundsMemory,
    /// `call_indirect` to a null/out-of-range table entry.
    UndefinedElement,
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// Call-stack exhaustion.
    StackExhausted,
    /// Interpreter fuel exhausted.
    OutOfFuel,
    /// The host import reported an error.
    Host(String),
}

impl fmt::Display for WasmTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WasmTrap::Unreachable => write!(f, "unreachable executed"),
            WasmTrap::DivByZero => write!(f, "integer divide by zero"),
            WasmTrap::IntegerOverflow => write!(f, "integer overflow"),
            WasmTrap::OutOfBoundsMemory => write!(f, "out of bounds memory access"),
            WasmTrap::UndefinedElement => write!(f, "undefined element"),
            WasmTrap::IndirectCallTypeMismatch => write!(f, "indirect call type mismatch"),
            WasmTrap::StackExhausted => write!(f, "call stack exhausted"),
            WasmTrap::OutOfFuel => write!(f, "interpreter fuel exhausted"),
            WasmTrap::Host(m) => write!(f, "host error: {m}"),
        }
    }
}

impl std::error::Error for WasmTrap {}

/// Host side of imported functions.
pub trait ImportHost {
    /// Services a call to import `module.field` with `args`, given mutable
    /// access to linear memory. Returns the result value, if the import's
    /// type has one.
    fn call(
        &mut self,
        module: &str,
        field: &str,
        args: &[Value],
        mem: &mut Vec<u8>,
    ) -> Result<Option<Value>, WasmTrap>;
}

/// Host that rejects all imports (for pure modules).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoImports;

impl ImportHost for NoImports {
    fn call(
        &mut self,
        module: &str,
        field: &str,
        _args: &[Value],
        _mem: &mut Vec<u8>,
    ) -> Result<Option<Value>, WasmTrap> {
        Err(WasmTrap::Host(format!(
            "unexpected import {module}.{field}"
        )))
    }
}

enum Flow {
    Normal,
    Br(u32),
    Return,
}

struct Label {
    arity: usize,
    height: usize,
}

/// Maximum call depth before [`WasmTrap::StackExhausted`].
const MAX_CALL_DEPTH: usize = 512;

/// An instantiated module ready to execute.
pub struct Instance<'m, H: ImportHost> {
    module: &'m WasmModule,
    /// Linear memory.
    pub mem: Vec<u8>,
    globals: Vec<u64>,
    table: Vec<Option<u32>>,
    host: H,
    fuel: u64,
    depth: usize,
    import_info: Vec<(String, String, u32)>,
}

impl<'m, H: ImportHost> Instance<'m, H> {
    /// Instantiates `module`: allocates memory and table, applies data and
    /// element segments, initializes globals. Does not run the start
    /// function (call [`Instance::run_start`]).
    pub fn new(module: &'m WasmModule, host: H) -> Result<Instance<'m, H>, WasmTrap> {
        let mem_pages = module.memory.map(|l| l.min).unwrap_or(0);
        let mut mem = vec![0u8; mem_pages as usize * PAGE_SIZE as usize];
        for d in &module.data {
            let end = d.offset as usize + d.bytes.len();
            if end > mem.len() {
                return Err(WasmTrap::OutOfBoundsMemory);
            }
            mem[d.offset as usize..end].copy_from_slice(&d.bytes);
        }
        let table_size = module.table.map(|l| l.min).unwrap_or(0);
        let mut table = vec![None; table_size as usize];
        for e in &module.elems {
            for (i, &f) in e.funcs.iter().enumerate() {
                let slot = e.offset as usize + i;
                if slot >= table.len() {
                    return Err(WasmTrap::UndefinedElement);
                }
                table[slot] = Some(f);
            }
        }
        let globals = module.globals.iter().map(|g| g.init).collect();
        let import_info = module
            .imports
            .iter()
            .filter_map(|i| match i.kind {
                ImportKind::Func(ti) => Some((i.module.clone(), i.field.clone(), ti)),
                _ => None,
            })
            .collect();
        Ok(Instance {
            module,
            mem,
            globals,
            table,
            host,
            fuel: u64::MAX,
            depth: 0,
            import_info,
        })
    }

    /// Sets the instruction budget for subsequent invocations.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Remaining fuel.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Shared access to the import host.
    pub fn host(&self) -> &H {
        &self.host
    }

    /// Mutable access to the import host.
    pub fn host_mut(&mut self) -> &mut H {
        &mut self.host
    }

    /// Reads a global's current raw value.
    pub fn global(&self, idx: u32) -> u64 {
        self.globals[idx as usize]
    }

    /// Runs the start function, if declared.
    pub fn run_start(&mut self) -> Result<(), WasmTrap>
    where
        H: Send,
    {
        if let Some(s) = self.module.start {
            self.invoke(s, &[])?;
        }
        Ok(())
    }

    /// Invokes the function at index `idx` with typed arguments.
    ///
    /// Runs on a dedicated thread with a large stack: the interpreter
    /// recurses per wasm call frame and per nested block, which can exceed
    /// the default thread stack in unoptimized builds long before the
    /// wasm-level call-depth limit (512 frames) is reached.
    pub fn invoke(&mut self, idx: u32, args: &[Value]) -> Result<Option<Value>, WasmTrap>
    where
        H: Send,
    {
        std::thread::scope(|s| {
            std::thread::Builder::new()
                .name("wasm-interp".into())
                .stack_size(128 << 20)
                .spawn_scoped(s, || self.invoke_on_this_stack(idx, args))
                .expect("spawn interpreter thread")
                .join()
                .expect("interpreter thread panicked")
        })
    }

    fn invoke_on_this_stack(
        &mut self,
        idx: u32,
        args: &[Value],
    ) -> Result<Option<Value>, WasmTrap> {
        let ft = self
            .module
            .func_type(idx)
            .ok_or_else(|| WasmTrap::Host(format!("no function {idx}")))?
            .clone();
        assert_eq!(ft.params.len(), args.len(), "argument count");
        let raw_args: Vec<u64> = args.iter().map(Value::raw).collect();
        let mut stack: Vec<u64> = Vec::with_capacity(64);
        self.call_function(idx, &raw_args, &mut stack)?;
        Ok(ft.result().map(|t| {
            let raw = stack.pop().expect("result on stack");
            Value::from_raw(t, raw)
        }))
    }

    /// Invokes an exported function by name.
    pub fn invoke_export(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, WasmTrap>
    where
        H: Send,
    {
        let idx = self
            .module
            .exported_func(name)
            .ok_or_else(|| WasmTrap::Host(format!("no export {name}")))?;
        self.invoke(idx, args)
    }

    fn call_function(
        &mut self,
        idx: u32,
        args: &[u64],
        stack: &mut Vec<u64>,
    ) -> Result<(), WasmTrap> {
        let n_imports = self.module.num_imported_funcs();
        if idx < n_imports {
            let (module_name, field, ti) = self.import_info[idx as usize].clone();
            let ft = &self.module.types[ti as usize];
            let typed: Vec<Value> = ft
                .params
                .iter()
                .zip(args)
                .map(|(t, &raw)| Value::from_raw(*t, raw))
                .collect();
            let ret = self
                .host
                .call(&module_name, &field, &typed, &mut self.mem)?;
            match (ft.result(), ret) {
                (Some(t), Some(v)) => {
                    debug_assert_eq!(v.ty(), t, "host returned wrong type");
                    stack.push(v.raw());
                }
                (None, None) => {}
                _ => return Err(WasmTrap::Host("host result arity mismatch".to_string())),
            }
            return Ok(());
        }

        if self.depth >= MAX_CALL_DEPTH {
            return Err(WasmTrap::StackExhausted);
        }
        self.depth += 1;
        let def = self
            .module
            .local_func(idx)
            .expect("local function exists (validated)");
        let ft = &self.module.types[def.type_idx as usize];
        let arity = ft.results.len();
        let mut locals: Vec<u64> = Vec::with_capacity(args.len() + def.locals.len());
        locals.extend_from_slice(args);
        locals.extend(std::iter::repeat_n(0, def.locals.len()));

        let base = stack.len();
        let mut labels = vec![Label {
            arity,
            height: base,
        }];
        let flow = self.exec_body(&def.body, &mut locals, stack, &mut labels);
        self.depth -= 1;
        match flow? {
            Flow::Normal | Flow::Br(_) => {
                // Results are the top `arity` values; the stack below them
                // is exactly `base` high (validated).
            }
            Flow::Return => {
                // Results on top, but junk may remain between base and them.
                let results: Vec<u64> = stack.split_off(stack.len() - arity);
                stack.truncate(base);
                stack.extend_from_slice(&results);
            }
        }
        debug_assert_eq!(stack.len(), base + arity);
        Ok(())
    }

    fn branch(&self, depth: u32, stack: &mut Vec<u64>, labels: &[Label]) -> Flow {
        let label = &labels[labels.len() - 1 - depth as usize];
        let results: Vec<u64> = stack.split_off(stack.len() - label.arity);
        stack.truncate(label.height);
        stack.extend_from_slice(&results);
        Flow::Br(depth)
    }

    fn mem_addr(&self, base: u32, memarg: &MemArg, len: u32) -> Result<usize, WasmTrap> {
        let addr = base as u64 + memarg.offset as u64;
        if addr + len as u64 > self.mem.len() as u64 {
            return Err(WasmTrap::OutOfBoundsMemory);
        }
        Ok(addr as usize)
    }

    fn exec_body(
        &mut self,
        body: &[Instr],
        locals: &mut Vec<u64>,
        stack: &mut Vec<u64>,
        labels: &mut Vec<Label>,
    ) -> Result<Flow, WasmTrap> {
        for instr in body {
            if self.fuel == 0 {
                return Err(WasmTrap::OutOfFuel);
            }
            self.fuel -= 1;
            match instr {
                Instr::Unreachable => return Err(WasmTrap::Unreachable),
                Instr::Nop => {}
                Instr::Block(bt, inner) => {
                    let arity = usize::from(bt.result().is_some());
                    labels.push(Label {
                        arity,
                        height: stack.len(),
                    });
                    let flow = self.exec_body(inner, locals, stack, labels)?;
                    labels.pop();
                    match flow {
                        Flow::Normal | Flow::Br(0) => {}
                        Flow::Br(n) => return Ok(Flow::Br(n - 1)),
                        Flow::Return => return Ok(Flow::Return),
                    }
                }
                Instr::Loop(bt, inner) => loop {
                    // A loop's label targets the loop start with arity 0.
                    labels.push(Label {
                        arity: 0,
                        height: stack.len(),
                    });
                    let flow = self.exec_body(inner, locals, stack, labels)?;
                    labels.pop();
                    let _ = bt;
                    match flow {
                        Flow::Normal => break,
                        Flow::Br(0) => continue,
                        Flow::Br(n) => return Ok(Flow::Br(n - 1)),
                        Flow::Return => return Ok(Flow::Return),
                    }
                },
                Instr::If(bt, then_body, else_body) => {
                    let cond = stack.pop().expect("cond") as u32;
                    let arity = usize::from(bt.result().is_some());
                    labels.push(Label {
                        arity,
                        height: stack.len(),
                    });
                    let arm = if cond != 0 { then_body } else { else_body };
                    let flow = self.exec_body(arm, locals, stack, labels)?;
                    labels.pop();
                    match flow {
                        Flow::Normal | Flow::Br(0) => {}
                        Flow::Br(n) => return Ok(Flow::Br(n - 1)),
                        Flow::Return => return Ok(Flow::Return),
                    }
                }
                Instr::Br(d) => return Ok(self.branch(*d, stack, labels)),
                Instr::BrIf(d) => {
                    let cond = stack.pop().expect("cond") as u32;
                    if cond != 0 {
                        return Ok(self.branch(*d, stack, labels));
                    }
                }
                Instr::BrTable(targets, default) => {
                    let i = stack.pop().expect("index") as u32 as usize;
                    let d = targets.get(i).copied().unwrap_or(*default);
                    return Ok(self.branch(d, stack, labels));
                }
                Instr::Return => return Ok(Flow::Return),
                Instr::Call(f) => {
                    let ft = self.module.func_type(*f).expect("validated").clone();
                    let n = ft.params.len();
                    let args: Vec<u64> = stack.split_off(stack.len() - n);
                    self.call_function(*f, &args, stack)?;
                }
                Instr::CallIndirect(type_idx) => {
                    let i = stack.pop().expect("table index") as u32;
                    let slot = self
                        .table
                        .get(i as usize)
                        .copied()
                        .flatten()
                        .ok_or(WasmTrap::UndefinedElement)?;
                    let expect = &self.module.types[*type_idx as usize];
                    let actual = self.module.func_type(slot).expect("validated");
                    if actual != expect {
                        return Err(WasmTrap::IndirectCallTypeMismatch);
                    }
                    let n = expect.params.len();
                    let args: Vec<u64> = stack.split_off(stack.len() - n);
                    self.call_function(slot, &args, stack)?;
                }
                Instr::Drop => {
                    stack.pop().expect("drop");
                }
                Instr::Select => {
                    let c = stack.pop().expect("cond") as u32;
                    let b = stack.pop().expect("b");
                    let a = stack.pop().expect("a");
                    stack.push(if c != 0 { a } else { b });
                }
                Instr::LocalGet(i) => stack.push(locals[*i as usize]),
                Instr::LocalSet(i) => locals[*i as usize] = stack.pop().expect("value"),
                Instr::LocalTee(i) => {
                    locals[*i as usize] = *stack.last().expect("value");
                }
                Instr::GlobalGet(i) => stack.push(self.globals[*i as usize]),
                Instr::GlobalSet(i) => {
                    self.globals[*i as usize] = stack.pop().expect("value");
                }
                Instr::Load { ty, sub, memarg } => {
                    let base = stack.pop().expect("addr") as u32;
                    let bytes = sub.map(|(w, _)| w.bytes()).unwrap_or(ty.bytes());
                    let a = self.mem_addr(base, memarg, bytes)?;
                    let mut buf = [0u8; 8];
                    buf[..bytes as usize].copy_from_slice(&self.mem[a..a + bytes as usize]);
                    let mut v = u64::from_le_bytes(buf);
                    if let Some((w, signed)) = sub {
                        if *signed {
                            let bits = w.bytes() * 8;
                            let sext = ((v << (64 - bits)) as i64) >> (64 - bits);
                            v = match ty {
                                ValType::I32 => sext as i32 as u32 as u64,
                                _ => sext as u64,
                            };
                        }
                    }
                    stack.push(v);
                }
                Instr::Store { ty, sub, memarg } => {
                    let v = stack.pop().expect("value");
                    let base = stack.pop().expect("addr") as u32;
                    let bytes = sub.map(SubWidth::bytes).unwrap_or(ty.bytes());
                    let a = self.mem_addr(base, memarg, bytes)?;
                    self.mem[a..a + bytes as usize]
                        .copy_from_slice(&v.to_le_bytes()[..bytes as usize]);
                }
                Instr::MemorySize => {
                    stack.push((self.mem.len() / PAGE_SIZE as usize) as u64);
                }
                Instr::MemoryGrow => {
                    let delta = stack.pop().expect("delta") as u32;
                    let old = (self.mem.len() / PAGE_SIZE as usize) as u32;
                    let new = old as u64 + delta as u64;
                    let max = self
                        .module
                        .memory
                        .and_then(|l| l.max)
                        .unwrap_or(65536)
                        .min(65536) as u64;
                    if new > max {
                        stack.push(u32::MAX as u64);
                    } else {
                        self.mem.resize(new as usize * PAGE_SIZE as usize, 0);
                        stack.push(old as u64);
                    }
                }
                Instr::I32Const(v) => stack.push(*v as u32 as u64),
                Instr::I64Const(v) => stack.push(*v as u64),
                Instr::F32Const(b) => stack.push(*b as u64),
                Instr::F64Const(b) => stack.push(*b),
                Instr::ITestop(w) => {
                    let v = stack.pop().expect("value");
                    let zero = match w {
                        NumWidth::X32 => v as u32 == 0,
                        NumWidth::X64 => v == 0,
                    };
                    stack.push(u64::from(zero));
                }
                Instr::IRelop(w, op) => {
                    let b = stack.pop().expect("rhs");
                    let a = stack.pop().expect("lhs");
                    stack.push(u64::from(irelop(*w, *op, a, b)));
                }
                Instr::FRelop(w, op) => {
                    let b = stack.pop().expect("rhs");
                    let a = stack.pop().expect("lhs");
                    let (x, y) = match w {
                        NumWidth::X32 => (
                            f32::from_bits(a as u32) as f64,
                            f32::from_bits(b as u32) as f64,
                        ),
                        NumWidth::X64 => (f64::from_bits(a), f64::from_bits(b)),
                    };
                    let r = match op {
                        FRelop::Eq => x == y,
                        FRelop::Ne => x != y,
                        FRelop::Lt => x < y,
                        FRelop::Gt => x > y,
                        FRelop::Le => x <= y,
                        FRelop::Ge => x >= y,
                    };
                    stack.push(u64::from(r));
                }
                Instr::IUnop(w, op) => {
                    let v = stack.pop().expect("value");
                    stack.push(iunop(*w, *op, v));
                }
                Instr::IBinop(w, op) => {
                    let b = stack.pop().expect("rhs");
                    let a = stack.pop().expect("lhs");
                    stack.push(ibinop(*w, *op, a, b)?);
                }
                Instr::FUnop(w, op) => {
                    let v = stack.pop().expect("value");
                    stack.push(funop(*w, *op, v));
                }
                Instr::FBinop(w, op) => {
                    let b = stack.pop().expect("rhs");
                    let a = stack.pop().expect("lhs");
                    stack.push(fbinop(*w, *op, a, b));
                }
                Instr::Cvt(op) => {
                    let v = stack.pop().expect("value");
                    stack.push(cvt(*op, v)?);
                }
            }
        }
        Ok(Flow::Normal)
    }
}

fn irelop(w: NumWidth, op: IRelop, a: u64, b: u64) -> bool {
    match w {
        NumWidth::X32 => {
            let (ua, ub) = (a as u32, b as u32);
            let (sa, sb) = (ua as i32, ub as i32);
            match op {
                IRelop::Eq => ua == ub,
                IRelop::Ne => ua != ub,
                IRelop::LtS => sa < sb,
                IRelop::LtU => ua < ub,
                IRelop::GtS => sa > sb,
                IRelop::GtU => ua > ub,
                IRelop::LeS => sa <= sb,
                IRelop::LeU => ua <= ub,
                IRelop::GeS => sa >= sb,
                IRelop::GeU => ua >= ub,
            }
        }
        NumWidth::X64 => {
            let (sa, sb) = (a as i64, b as i64);
            match op {
                IRelop::Eq => a == b,
                IRelop::Ne => a != b,
                IRelop::LtS => sa < sb,
                IRelop::LtU => a < b,
                IRelop::GtS => sa > sb,
                IRelop::GtU => a > b,
                IRelop::LeS => sa <= sb,
                IRelop::LeU => a <= b,
                IRelop::GeS => sa >= sb,
                IRelop::GeU => a >= b,
            }
        }
    }
}

fn iunop(w: NumWidth, op: IUnop, v: u64) -> u64 {
    match w {
        NumWidth::X32 => {
            let x = v as u32;
            let r = match op {
                IUnop::Clz => x.leading_zeros(),
                IUnop::Ctz => x.trailing_zeros(),
                IUnop::Popcnt => x.count_ones(),
            };
            r as u64
        }
        NumWidth::X64 => {
            let r = match op {
                IUnop::Clz => v.leading_zeros(),
                IUnop::Ctz => v.trailing_zeros(),
                IUnop::Popcnt => v.count_ones(),
            };
            r as u64
        }
    }
}

fn ibinop(w: NumWidth, op: IBinop, a: u64, b: u64) -> Result<u64, WasmTrap> {
    Ok(match w {
        NumWidth::X32 => {
            let (ua, ub) = (a as u32, b as u32);
            let (sa, sb) = (ua as i32, ub as i32);
            let r: u32 = match op {
                IBinop::Add => ua.wrapping_add(ub),
                IBinop::Sub => ua.wrapping_sub(ub),
                IBinop::Mul => ua.wrapping_mul(ub),
                IBinop::DivS => {
                    if sb == 0 {
                        return Err(WasmTrap::DivByZero);
                    }
                    if sa == i32::MIN && sb == -1 {
                        return Err(WasmTrap::IntegerOverflow);
                    }
                    (sa / sb) as u32
                }
                IBinop::DivU => {
                    if ub == 0 {
                        return Err(WasmTrap::DivByZero);
                    }
                    ua / ub
                }
                IBinop::RemS => {
                    if sb == 0 {
                        return Err(WasmTrap::DivByZero);
                    }
                    sa.wrapping_rem(sb) as u32
                }
                IBinop::RemU => {
                    if ub == 0 {
                        return Err(WasmTrap::DivByZero);
                    }
                    ua % ub
                }
                IBinop::And => ua & ub,
                IBinop::Or => ua | ub,
                IBinop::Xor => ua ^ ub,
                IBinop::Shl => ua.wrapping_shl(ub),
                IBinop::ShrS => (sa.wrapping_shr(ub)) as u32,
                IBinop::ShrU => ua.wrapping_shr(ub),
                IBinop::Rotl => ua.rotate_left(ub % 32),
                IBinop::Rotr => ua.rotate_right(ub % 32),
            };
            r as u64
        }
        NumWidth::X64 => {
            let (sa, sb) = (a as i64, b as i64);
            match op {
                IBinop::Add => a.wrapping_add(b),
                IBinop::Sub => a.wrapping_sub(b),
                IBinop::Mul => a.wrapping_mul(b),
                IBinop::DivS => {
                    if sb == 0 {
                        return Err(WasmTrap::DivByZero);
                    }
                    if sa == i64::MIN && sb == -1 {
                        return Err(WasmTrap::IntegerOverflow);
                    }
                    (sa / sb) as u64
                }
                IBinop::DivU => {
                    if b == 0 {
                        return Err(WasmTrap::DivByZero);
                    }
                    a / b
                }
                IBinop::RemS => {
                    if sb == 0 {
                        return Err(WasmTrap::DivByZero);
                    }
                    sa.wrapping_rem(sb) as u64
                }
                IBinop::RemU => {
                    if b == 0 {
                        return Err(WasmTrap::DivByZero);
                    }
                    a % b
                }
                IBinop::And => a & b,
                IBinop::Or => a | b,
                IBinop::Xor => a ^ b,
                IBinop::Shl => a.wrapping_shl(b as u32),
                IBinop::ShrS => sa.wrapping_shr(b as u32) as u64,
                IBinop::ShrU => a.wrapping_shr(b as u32),
                IBinop::Rotl => a.rotate_left((b % 64) as u32),
                IBinop::Rotr => a.rotate_right((b % 64) as u32),
            }
        }
    })
}

fn funop(w: NumWidth, op: FUnop, v: u64) -> u64 {
    match w {
        NumWidth::X32 => {
            let x = f32::from_bits(v as u32);
            let r = match op {
                FUnop::Abs => x.abs(),
                FUnop::Neg => -x,
                FUnop::Ceil => x.ceil(),
                FUnop::Floor => x.floor(),
                FUnop::Trunc => x.trunc(),
                FUnop::Nearest => round_ties_even_f32(x),
                FUnop::Sqrt => x.sqrt(),
            };
            r.to_bits() as u64
        }
        NumWidth::X64 => {
            let x = f64::from_bits(v);
            let r = match op {
                FUnop::Abs => x.abs(),
                FUnop::Neg => -x,
                FUnop::Ceil => x.ceil(),
                FUnop::Floor => x.floor(),
                FUnop::Trunc => x.trunc(),
                FUnop::Nearest => round_ties_even_f64(x),
                FUnop::Sqrt => x.sqrt(),
            };
            r.to_bits()
        }
    }
}

fn round_ties_even_f32(x: f32) -> f32 {
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
        r - x.signum()
    } else {
        r
    }
}

fn round_ties_even_f64(x: f64) -> f64 {
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
        r - x.signum()
    } else {
        r
    }
}

// WebAssembly `min`/`max` (NaN-propagating, `-0 < +0`) — the canonical
// definition shared with the CPU simulator and the CLite interpreter.
use wasmperf_isa::fpsem::{wasm_max_f64, wasm_min_f64};

fn fbinop(w: NumWidth, op: FBinop, a: u64, b: u64) -> u64 {
    match w {
        NumWidth::X32 => {
            let (x, y) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
            let r = match op {
                FBinop::Add => x + y,
                FBinop::Sub => x - y,
                FBinop::Mul => x * y,
                FBinop::Div => x / y,
                FBinop::Min => wasm_min_f64(x as f64, y as f64) as f32,
                FBinop::Max => wasm_max_f64(x as f64, y as f64) as f32,
                FBinop::Copysign => x.copysign(y),
            };
            r.to_bits() as u64
        }
        NumWidth::X64 => {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            let r = match op {
                FBinop::Add => x + y,
                FBinop::Sub => x - y,
                FBinop::Mul => x * y,
                FBinop::Div => x / y,
                FBinop::Min => wasm_min_f64(x, y),
                FBinop::Max => wasm_max_f64(x, y),
                FBinop::Copysign => x.copysign(y),
            };
            r.to_bits()
        }
    }
}

fn trunc_checked(x: f64, min: f64, max: f64) -> Result<f64, WasmTrap> {
    if x.is_nan() {
        return Err(WasmTrap::IntegerOverflow);
    }
    let t = x.trunc();
    if t < min || t > max {
        return Err(WasmTrap::IntegerOverflow);
    }
    Ok(t)
}

fn cvt(op: CvtOp, v: u64) -> Result<u64, WasmTrap> {
    use CvtOp::*;
    Ok(match op {
        I32WrapI64 => v as u32 as u64,
        I32TruncF32S => {
            let t = trunc_checked(f32::from_bits(v as u32) as f64, -2147483648.0, 2147483647.0)?;
            t as i32 as u32 as u64
        }
        I32TruncF32U => {
            let t = trunc_checked(f32::from_bits(v as u32) as f64, 0.0, 4294967295.0)?;
            t as u32 as u64
        }
        I32TruncF64S => {
            let t = trunc_checked(f64::from_bits(v), -2147483648.0, 2147483647.0)?;
            t as i32 as u32 as u64
        }
        I32TruncF64U => {
            let t = trunc_checked(f64::from_bits(v), 0.0, 4294967295.0)?;
            t as u32 as u64
        }
        I64ExtendI32S => v as u32 as i32 as i64 as u64,
        I64ExtendI32U => v as u32 as u64,
        I64TruncF32S => {
            let t = trunc_checked(
                f32::from_bits(v as u32) as f64,
                -9.223372036854776e18,
                9.223372036854775e18,
            )?;
            t as i64 as u64
        }
        I64TruncF32U => {
            let t = trunc_checked(f32::from_bits(v as u32) as f64, 0.0, 1.8446744073709552e19)?;
            t as u64
        }
        I64TruncF64S => {
            let t = trunc_checked(
                f64::from_bits(v),
                -9.223372036854776e18,
                9.223372036854775e18,
            )?;
            t as i64 as u64
        }
        I64TruncF64U => {
            let t = trunc_checked(f64::from_bits(v), 0.0, 1.8446744073709552e19)?;
            t as u64
        }
        F32ConvertI32S => ((v as u32 as i32) as f32).to_bits() as u64,
        F32ConvertI32U => ((v as u32) as f32).to_bits() as u64,
        F32ConvertI64S => ((v as i64) as f32).to_bits() as u64,
        F32ConvertI64U => ((v) as f32).to_bits() as u64,
        F32DemoteF64 => (f64::from_bits(v) as f32).to_bits() as u64,
        F64ConvertI32S => ((v as u32 as i32) as f64).to_bits(),
        F64ConvertI32U => ((v as u32) as f64).to_bits(),
        F64ConvertI64S => ((v as i64) as f64).to_bits(),
        F64ConvertI64U => ((v) as f64).to_bits(),
        F64PromoteF32 => (f32::from_bits(v as u32) as f64).to_bits(),
        I32ReinterpretF32 | F32ReinterpretI32 => v as u32 as u64,
        I64ReinterpretF64 | F64ReinterpretI64 => v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BlockType;
    use crate::module::{ElemSegment, FuncDef, Global, Limits};
    use crate::types::FuncType;
    use crate::validate::validate;

    fn run1(
        params: Vec<ValType>,
        results: Vec<ValType>,
        locals: Vec<ValType>,
        body: Vec<Instr>,
        args: &[Value],
    ) -> Result<Option<Value>, WasmTrap> {
        let mut m = WasmModule::default();
        let t = m.intern_type(FuncType::new(params, results));
        m.memory = Some(Limits {
            min: 1,
            max: Some(4),
        });
        m.funcs.push(FuncDef {
            type_idx: t,
            locals,
            body,
            name: "t".into(),
        });
        validate(&m).expect("test module validates");
        let m_leaked = m;
        let mut inst = Instance::new(&m_leaked, NoImports)?;
        inst.invoke(0, args)
    }

    #[test]
    fn arithmetic_basics() {
        let r = run1(
            vec![ValType::I32, ValType::I32],
            vec![ValType::I32],
            vec![],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::IBinop(NumWidth::X32, IBinop::Mul),
            ],
            &[Value::I32(6), Value::I32(7)],
        )
        .unwrap();
        assert_eq!(r, Some(Value::I32(42)));
    }

    #[test]
    fn division_traps() {
        let div = |a: i32, b: i32| {
            run1(
                vec![ValType::I32, ValType::I32],
                vec![ValType::I32],
                vec![],
                vec![
                    Instr::LocalGet(0),
                    Instr::LocalGet(1),
                    Instr::IBinop(NumWidth::X32, IBinop::DivS),
                ],
                &[Value::I32(a), Value::I32(b)],
            )
        };
        assert_eq!(div(7, 2).unwrap(), Some(Value::I32(3)));
        assert_eq!(div(-7, 2).unwrap(), Some(Value::I32(-3)));
        assert_eq!(div(1, 0).unwrap_err(), WasmTrap::DivByZero);
        assert_eq!(div(i32::MIN, -1).unwrap_err(), WasmTrap::IntegerOverflow);
    }

    #[test]
    fn loop_with_branch_sums() {
        // sum = 0; i = n; loop { sum += i; i -= 1; br_if i != 0 } return sum.
        let body = vec![
            Instr::Loop(
                BlockType::Empty,
                vec![
                    Instr::LocalGet(1),
                    Instr::LocalGet(0),
                    Instr::IBinop(NumWidth::X32, IBinop::Add),
                    Instr::LocalSet(1),
                    Instr::LocalGet(0),
                    Instr::I32Const(1),
                    Instr::IBinop(NumWidth::X32, IBinop::Sub),
                    Instr::LocalTee(0),
                    Instr::BrIf(0),
                ],
            ),
            Instr::LocalGet(1),
        ];
        let r = run1(
            vec![ValType::I32],
            vec![ValType::I32],
            vec![ValType::I32],
            body,
            &[Value::I32(100)],
        )
        .unwrap();
        assert_eq!(r, Some(Value::I32(5050)));
    }

    #[test]
    fn block_break_with_value() {
        let body = vec![Instr::Block(
            BlockType::Value(ValType::I32),
            vec![
                Instr::I32Const(11),
                Instr::Br(0),
                Instr::Unreachable, // Never reached.
            ],
        )];
        let r = run1(vec![], vec![ValType::I32], vec![], body, &[]).unwrap();
        assert_eq!(r, Some(Value::I32(11)));
    }

    #[test]
    fn br_table_dispatch() {
        // Returns 10/20/30 for inputs 0/1/other via br_table.
        let body = vec![Instr::Block(
            BlockType::Value(ValType::I32),
            vec![
                Instr::Block(
                    BlockType::Empty,
                    vec![
                        Instr::Block(
                            BlockType::Empty,
                            vec![Instr::LocalGet(0), Instr::BrTable(vec![0, 1], 1)],
                        ),
                        // Case 0.
                        Instr::I32Const(10),
                        Instr::Br(1),
                    ],
                ),
                // Case 1 and default.
                Instr::I32Const(20),
            ],
        )];
        let run = |n: i32| {
            run1(
                vec![ValType::I32],
                vec![ValType::I32],
                vec![],
                body.clone(),
                &[Value::I32(n)],
            )
            .unwrap()
        };
        assert_eq!(run(0), Some(Value::I32(10)));
        assert_eq!(run(1), Some(Value::I32(20)));
        assert_eq!(run(5), Some(Value::I32(20)));
    }

    #[test]
    fn memory_load_store() {
        let body = vec![
            Instr::I32Const(16),
            Instr::I32Const(-2),
            Instr::Store {
                ty: ValType::I32,
                sub: None,
                memarg: MemArg::natural(4, 0),
            },
            Instr::I32Const(16),
            Instr::Load {
                ty: ValType::I32,
                sub: Some((SubWidth::B8, false)),
                memarg: MemArg::natural(1, 0),
            },
        ];
        let r = run1(vec![], vec![ValType::I32], vec![], body, &[]).unwrap();
        assert_eq!(r, Some(Value::I32(0xfe)));
    }

    #[test]
    fn sub_word_sign_extension() {
        let body = vec![
            Instr::I32Const(0),
            Instr::I32Const(0x8081),
            Instr::Store {
                ty: ValType::I32,
                sub: Some(SubWidth::B16),
                memarg: MemArg::natural(2, 0),
            },
            Instr::I32Const(0),
            Instr::Load {
                ty: ValType::I32,
                sub: Some((SubWidth::B16, true)),
                memarg: MemArg::natural(2, 0),
            },
        ];
        let r = run1(vec![], vec![ValType::I32], vec![], body, &[]).unwrap();
        assert_eq!(r, Some(Value::I32(0xffff8081u32 as i32)));
    }

    #[test]
    fn oob_memory_traps() {
        let body = vec![
            Instr::I32Const((PAGE_SIZE - 2) as i32),
            Instr::Load {
                ty: ValType::I32,
                sub: None,
                memarg: MemArg::natural(4, 0),
            },
        ];
        let r = run1(vec![], vec![ValType::I32], vec![], body, &[]);
        assert_eq!(r.unwrap_err(), WasmTrap::OutOfBoundsMemory);
    }

    #[test]
    fn memory_grow_and_size() {
        let body = vec![
            Instr::I32Const(2),
            Instr::MemoryGrow,
            Instr::Drop,
            Instr::MemorySize,
        ];
        let r = run1(vec![], vec![ValType::I32], vec![], body, &[]).unwrap();
        assert_eq!(r, Some(Value::I32(3)));
    }

    #[test]
    fn memory_grow_beyond_max_fails() {
        let body = vec![Instr::I32Const(100), Instr::MemoryGrow];
        let r = run1(vec![], vec![ValType::I32], vec![], body, &[]).unwrap();
        assert_eq!(r, Some(Value::I32(-1)));
    }

    #[test]
    fn float_min_max_semantics() {
        let mk = |op: FBinop, a: f64, b: f64| {
            run1(
                vec![],
                vec![ValType::F64],
                vec![],
                vec![
                    Instr::F64Const(a.to_bits()),
                    Instr::F64Const(b.to_bits()),
                    Instr::FBinop(NumWidth::X64, op),
                ],
                &[],
            )
            .unwrap()
            .unwrap()
        };
        assert_eq!(mk(FBinop::Min, 1.0, 2.0), Value::F64(1.0f64.to_bits()));
        assert_eq!(mk(FBinop::Max, 1.0, 2.0), Value::F64(2.0f64.to_bits()));
        // min(-0, +0) = -0.
        assert_eq!(mk(FBinop::Min, -0.0, 0.0), Value::F64((-0.0f64).to_bits()));
        // NaN propagates.
        let r = mk(FBinop::Min, f64::NAN, 1.0);
        match r {
            Value::F64(bits) => assert!(f64::from_bits(bits).is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trunc_traps_on_nan_and_range() {
        let t = |x: f64| {
            run1(
                vec![],
                vec![ValType::I32],
                vec![],
                vec![
                    Instr::F64Const(x.to_bits()),
                    Instr::Cvt(CvtOp::I32TruncF64S),
                ],
                &[],
            )
        };
        assert_eq!(t(3.7).unwrap(), Some(Value::I32(3)));
        assert_eq!(t(-3.7).unwrap(), Some(Value::I32(-3)));
        assert_eq!(t(f64::NAN).unwrap_err(), WasmTrap::IntegerOverflow);
        assert_eq!(t(3e9).unwrap_err(), WasmTrap::IntegerOverflow);
    }

    #[test]
    fn call_between_functions() {
        let mut m = WasmModule::default();
        let t1 = m.intern_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        m.funcs.push(FuncDef {
            type_idx: t1,
            locals: vec![],
            body: vec![
                Instr::LocalGet(0),
                Instr::I32Const(1),
                Instr::IBinop(NumWidth::X32, IBinop::Add),
            ],
            name: "inc".into(),
        });
        m.funcs.push(FuncDef {
            type_idx: t1,
            locals: vec![],
            body: vec![Instr::LocalGet(0), Instr::Call(0), Instr::Call(0)],
            name: "inc2".into(),
        });
        validate(&m).unwrap();
        let mut inst = Instance::new(&m, NoImports).unwrap();
        let r = inst.invoke(1, &[Value::I32(40)]).unwrap();
        assert_eq!(r, Some(Value::I32(42)));
    }

    #[test]
    fn call_indirect_dispatch_and_traps() {
        let mut m = WasmModule::default();
        let t1 = m.intern_type(FuncType::new(vec![], vec![ValType::I32]));
        let t2 = m.intern_type(FuncType::new(vec![], vec![ValType::I64]));
        let tc = m.intern_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        m.table = Some(Limits { min: 4, max: None });
        m.funcs.push(FuncDef {
            type_idx: t1,
            locals: vec![],
            body: vec![Instr::I32Const(100)],
            name: "a".into(),
        });
        m.funcs.push(FuncDef {
            type_idx: t2,
            locals: vec![],
            body: vec![Instr::I64Const(200)],
            name: "b".into(),
        });
        m.funcs.push(FuncDef {
            type_idx: tc,
            locals: vec![],
            body: vec![Instr::LocalGet(0), Instr::CallIndirect(t1)],
            name: "dispatch".into(),
        });
        m.elems.push(ElemSegment {
            offset: 0,
            funcs: vec![0, 1],
        });
        validate(&m).unwrap();
        let mut inst = Instance::new(&m, NoImports).unwrap();
        assert_eq!(
            inst.invoke(2, &[Value::I32(0)]).unwrap(),
            Some(Value::I32(100))
        );
        assert_eq!(
            inst.invoke(2, &[Value::I32(1)]).unwrap_err(),
            WasmTrap::IndirectCallTypeMismatch
        );
        assert_eq!(
            inst.invoke(2, &[Value::I32(2)]).unwrap_err(),
            WasmTrap::UndefinedElement
        );
        assert_eq!(
            inst.invoke(2, &[Value::I32(100)]).unwrap_err(),
            WasmTrap::UndefinedElement
        );
    }

    #[test]
    fn globals_read_write() {
        let mut m = WasmModule::default();
        let t = m.intern_type(FuncType::new(vec![], vec![ValType::I32]));
        m.globals.push(Global {
            ty: ValType::I32,
            mutable: true,
            init: 5,
        });
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![],
            body: vec![
                Instr::GlobalGet(0),
                Instr::I32Const(1),
                Instr::IBinop(NumWidth::X32, IBinop::Add),
                Instr::GlobalSet(0),
                Instr::GlobalGet(0),
            ],
            name: "bump".into(),
        });
        validate(&m).unwrap();
        let mut inst = Instance::new(&m, NoImports).unwrap();
        assert_eq!(inst.invoke(0, &[]).unwrap(), Some(Value::I32(6)));
        assert_eq!(inst.invoke(0, &[]).unwrap(), Some(Value::I32(7)));
        assert_eq!(inst.global(0), 7);
    }

    #[test]
    fn imported_function_called() {
        struct Adder;
        impl ImportHost for Adder {
            fn call(
                &mut self,
                module: &str,
                field: &str,
                args: &[Value],
                _mem: &mut Vec<u8>,
            ) -> Result<Option<Value>, WasmTrap> {
                assert_eq!((module, field), ("env", "add10"));
                Ok(Some(Value::I32(args[0].unwrap_i32() + 10)))
            }
        }
        let mut m = WasmModule::default();
        let t = m.intern_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        m.imports.push(crate::module::Import {
            module: "env".into(),
            field: "add10".into(),
            kind: ImportKind::Func(t),
        });
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![],
            body: vec![Instr::LocalGet(0), Instr::Call(0)],
            name: "f".into(),
        });
        validate(&m).unwrap();
        let mut inst = Instance::new(&m, Adder).unwrap();
        assert_eq!(
            inst.invoke(1, &[Value::I32(32)]).unwrap(),
            Some(Value::I32(42))
        );
    }

    #[test]
    fn fuel_limits_execution() {
        let body = vec![Instr::Loop(BlockType::Empty, vec![Instr::Br(0)])];
        let mut m = WasmModule::default();
        let t = m.intern_type(FuncType::new(vec![], vec![]));
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![],
            body,
            name: "spin".into(),
        });
        validate(&m).unwrap();
        let mut inst = Instance::new(&m, NoImports).unwrap();
        inst.set_fuel(10_000);
        assert_eq!(inst.invoke(0, &[]).unwrap_err(), WasmTrap::OutOfFuel);
    }

    #[test]
    fn recursion_depth_limited() {
        let mut m = WasmModule::default();
        let t = m.intern_type(FuncType::new(vec![], vec![]));
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![],
            body: vec![Instr::Call(0)],
            name: "rec".into(),
        });
        validate(&m).unwrap();
        let mut inst = Instance::new(&m, NoImports).unwrap();
        assert_eq!(inst.invoke(0, &[]).unwrap_err(), WasmTrap::StackExhausted);
    }

    #[test]
    fn early_return_cleans_stack() {
        // Push junk, then return a value from a nested block.
        let body = vec![
            Instr::I32Const(1),
            Instr::I32Const(2),
            Instr::Drop,
            Instr::Drop,
            Instr::Block(BlockType::Empty, vec![Instr::I32Const(7), Instr::Return]),
            Instr::I32Const(0),
        ];
        let r = run1(vec![], vec![ValType::I32], vec![], body, &[]).unwrap();
        assert_eq!(r, Some(Value::I32(7)));
    }

    #[test]
    fn shift_counts_are_masked() {
        let r = run1(
            vec![],
            vec![ValType::I32],
            vec![],
            vec![
                Instr::I32Const(1),
                Instr::I32Const(33),
                Instr::IBinop(NumWidth::X32, IBinop::Shl),
            ],
            &[],
        )
        .unwrap();
        assert_eq!(r, Some(Value::I32(2)));
    }

    #[test]
    fn clz_ctz_popcnt() {
        let u = |op: IUnop, v: i32| {
            run1(
                vec![],
                vec![ValType::I32],
                vec![],
                vec![Instr::I32Const(v), Instr::IUnop(NumWidth::X32, op)],
                &[],
            )
            .unwrap()
            .unwrap()
            .unwrap_i32()
        };
        assert_eq!(u(IUnop::Clz, 1), 31);
        assert_eq!(u(IUnop::Clz, 0), 32);
        assert_eq!(u(IUnop::Ctz, 8), 3);
        assert_eq!(u(IUnop::Ctz, 0), 32);
        assert_eq!(u(IUnop::Popcnt, 0xff), 8);
    }

    #[test]
    fn nearest_rounds_ties_to_even() {
        let n = |x: f64| {
            let r = run1(
                vec![],
                vec![ValType::F64],
                vec![],
                vec![
                    Instr::F64Const(x.to_bits()),
                    Instr::FUnop(NumWidth::X64, FUnop::Nearest),
                ],
                &[],
            )
            .unwrap()
            .unwrap();
            match r {
                Value::F64(b) => f64::from_bits(b),
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(n(2.5), 2.0);
        assert_eq!(n(3.5), 4.0);
        assert_eq!(n(-2.5), -2.0);
        assert_eq!(n(2.4), 2.0);
    }
}
