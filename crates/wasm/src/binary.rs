//! The WebAssembly binary format: encoder and decoder.
//!
//! Implements the MVP binary format — magic/version header, LEB128
//! integers, all eleven numbered sections, and the "name" custom section
//! (function names subsection) so that modules round-trip exactly,
//! including debug names. The encoder and decoder are inverses; a
//! property test in the crate's test suite checks
//! `decode(encode(m)) == m` over generated modules.

use crate::instr::{
    BlockType, CvtOp, FBinop, FRelop, FUnop, IBinop, IRelop, IUnop, Instr, MemArg, NumWidth,
    SubWidth,
};
use crate::module::{
    DataSegment, ElemSegment, Export, ExportKind, FuncDef, Global, Import, ImportKind, Limits,
    WasmModule,
};
use crate::types::{FuncType, ValType};
use core::fmt;

/// Binary-format magic header.
pub const MAGIC: [u8; 4] = *b"\0asm";
/// Binary-format version.
pub const VERSION: [u8; 4] = [1, 0, 0, 0];

/// Variants of each operator family in opcode order.
const IUNOPS: [IUnop; 3] = [IUnop::Clz, IUnop::Ctz, IUnop::Popcnt];
const IBINOPS: [IBinop; 15] = [
    IBinop::Add,
    IBinop::Sub,
    IBinop::Mul,
    IBinop::DivS,
    IBinop::DivU,
    IBinop::RemS,
    IBinop::RemU,
    IBinop::And,
    IBinop::Or,
    IBinop::Xor,
    IBinop::Shl,
    IBinop::ShrS,
    IBinop::ShrU,
    IBinop::Rotl,
    IBinop::Rotr,
];
const IRELOPS: [IRelop; 10] = [
    IRelop::Eq,
    IRelop::Ne,
    IRelop::LtS,
    IRelop::LtU,
    IRelop::GtS,
    IRelop::GtU,
    IRelop::LeS,
    IRelop::LeU,
    IRelop::GeS,
    IRelop::GeU,
];
const FUNOPS: [FUnop; 7] = [
    FUnop::Abs,
    FUnop::Neg,
    FUnop::Ceil,
    FUnop::Floor,
    FUnop::Trunc,
    FUnop::Nearest,
    FUnop::Sqrt,
];
const FBINOPS: [FBinop; 7] = [
    FBinop::Add,
    FBinop::Sub,
    FBinop::Mul,
    FBinop::Div,
    FBinop::Min,
    FBinop::Max,
    FBinop::Copysign,
];
const FRELOPS: [FRelop; 6] = [
    FRelop::Eq,
    FRelop::Ne,
    FRelop::Lt,
    FRelop::Gt,
    FRelop::Le,
    FRelop::Ge,
];
const CVTOPS: [CvtOp; 25] = [
    CvtOp::I32WrapI64,
    CvtOp::I32TruncF32S,
    CvtOp::I32TruncF32U,
    CvtOp::I32TruncF64S,
    CvtOp::I32TruncF64U,
    CvtOp::I64ExtendI32S,
    CvtOp::I64ExtendI32U,
    CvtOp::I64TruncF32S,
    CvtOp::I64TruncF32U,
    CvtOp::I64TruncF64S,
    CvtOp::I64TruncF64U,
    CvtOp::F32ConvertI32S,
    CvtOp::F32ConvertI32U,
    CvtOp::F32ConvertI64S,
    CvtOp::F32ConvertI64U,
    CvtOp::F32DemoteF64,
    CvtOp::F64ConvertI32S,
    CvtOp::F64ConvertI32U,
    CvtOp::F64ConvertI64S,
    CvtOp::F64ConvertI64U,
    CvtOp::F64PromoteF32,
    CvtOp::I32ReinterpretF32,
    CvtOp::I64ReinterpretF64,
    CvtOp::F32ReinterpretI32,
    CvtOp::F64ReinterpretI64,
];

fn pos_of<T: PartialEq>(arr: &[T], v: &T) -> u8 {
    arr.iter().position(|x| x == v).expect("member of family") as u8
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Appends a LEB128-encoded unsigned integer.
pub fn write_uleb(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a LEB128-encoded signed integer.
pub fn write_sleb(out: &mut Vec<u8>, mut v: i64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        let sign = byte & 0x40 != 0;
        if (v == 0 && !sign) || (v == -1 && sign) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn write_name(out: &mut Vec<u8>, s: &str) {
    write_uleb(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_limits(out: &mut Vec<u8>, l: &Limits) {
    match l.max {
        None => {
            out.push(0x00);
            write_uleb(out, l.min as u64);
        }
        Some(max) => {
            out.push(0x01);
            write_uleb(out, l.min as u64);
            write_uleb(out, max as u64);
        }
    }
}

fn write_blocktype(out: &mut Vec<u8>, bt: &BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(t) => out.push(t.byte()),
    }
}

fn write_memarg(out: &mut Vec<u8>, m: &MemArg) {
    write_uleb(out, m.align as u64);
    write_uleb(out, m.offset as u64);
}

fn load_opcode(ty: ValType, sub: Option<(SubWidth, bool)>) -> u8 {
    match (ty, sub) {
        (ValType::I32, None) => 0x28,
        (ValType::I64, None) => 0x29,
        (ValType::F32, None) => 0x2a,
        (ValType::F64, None) => 0x2b,
        (ValType::I32, Some((SubWidth::B8, true))) => 0x2c,
        (ValType::I32, Some((SubWidth::B8, false))) => 0x2d,
        (ValType::I32, Some((SubWidth::B16, true))) => 0x2e,
        (ValType::I32, Some((SubWidth::B16, false))) => 0x2f,
        (ValType::I64, Some((SubWidth::B8, true))) => 0x30,
        (ValType::I64, Some((SubWidth::B8, false))) => 0x31,
        (ValType::I64, Some((SubWidth::B16, true))) => 0x32,
        (ValType::I64, Some((SubWidth::B16, false))) => 0x33,
        (ValType::I64, Some((SubWidth::B32, true))) => 0x34,
        (ValType::I64, Some((SubWidth::B32, false))) => 0x35,
        _ => panic!("invalid load form {ty:?} {sub:?}"),
    }
}

fn store_opcode(ty: ValType, sub: Option<SubWidth>) -> u8 {
    match (ty, sub) {
        (ValType::I32, None) => 0x36,
        (ValType::I64, None) => 0x37,
        (ValType::F32, None) => 0x38,
        (ValType::F64, None) => 0x39,
        (ValType::I32, Some(SubWidth::B8)) => 0x3a,
        (ValType::I32, Some(SubWidth::B16)) => 0x3b,
        (ValType::I64, Some(SubWidth::B8)) => 0x3c,
        (ValType::I64, Some(SubWidth::B16)) => 0x3d,
        (ValType::I64, Some(SubWidth::B32)) => 0x3e,
        _ => panic!("invalid store form {ty:?} {sub:?}"),
    }
}

fn write_instr(out: &mut Vec<u8>, i: &Instr) {
    use Instr::*;
    match i {
        Unreachable => out.push(0x00),
        Nop => out.push(0x01),
        Block(bt, body) => {
            out.push(0x02);
            write_blocktype(out, bt);
            write_expr(out, body);
            out.push(0x0b);
        }
        Loop(bt, body) => {
            out.push(0x03);
            write_blocktype(out, bt);
            write_expr(out, body);
            out.push(0x0b);
        }
        If(bt, then_body, else_body) => {
            out.push(0x04);
            write_blocktype(out, bt);
            write_expr(out, then_body);
            if !else_body.is_empty() {
                out.push(0x05);
                write_expr(out, else_body);
            }
            out.push(0x0b);
        }
        Br(d) => {
            out.push(0x0c);
            write_uleb(out, *d as u64);
        }
        BrIf(d) => {
            out.push(0x0d);
            write_uleb(out, *d as u64);
        }
        BrTable(targets, default) => {
            out.push(0x0e);
            write_uleb(out, targets.len() as u64);
            for t in targets {
                write_uleb(out, *t as u64);
            }
            write_uleb(out, *default as u64);
        }
        Return => out.push(0x0f),
        Call(f) => {
            out.push(0x10);
            write_uleb(out, *f as u64);
        }
        CallIndirect(t) => {
            out.push(0x11);
            write_uleb(out, *t as u64);
            out.push(0x00); // Table index (MVP: 0).
        }
        Drop => out.push(0x1a),
        Select => out.push(0x1b),
        LocalGet(i) => {
            out.push(0x20);
            write_uleb(out, *i as u64);
        }
        LocalSet(i) => {
            out.push(0x21);
            write_uleb(out, *i as u64);
        }
        LocalTee(i) => {
            out.push(0x22);
            write_uleb(out, *i as u64);
        }
        GlobalGet(i) => {
            out.push(0x23);
            write_uleb(out, *i as u64);
        }
        GlobalSet(i) => {
            out.push(0x24);
            write_uleb(out, *i as u64);
        }
        Load { ty, sub, memarg } => {
            out.push(load_opcode(*ty, *sub));
            write_memarg(out, memarg);
        }
        Store { ty, sub, memarg } => {
            out.push(store_opcode(*ty, *sub));
            write_memarg(out, memarg);
        }
        MemorySize => {
            out.push(0x3f);
            out.push(0x00);
        }
        MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        I32Const(v) => {
            out.push(0x41);
            write_sleb(out, *v as i64);
        }
        I64Const(v) => {
            out.push(0x42);
            write_sleb(out, *v);
        }
        F32Const(bits) => {
            out.push(0x43);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        F64Const(bits) => {
            out.push(0x44);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        ITestop(NumWidth::X32) => out.push(0x45),
        ITestop(NumWidth::X64) => out.push(0x50),
        IRelop(NumWidth::X32, op) => out.push(0x46 + pos_of(&IRELOPS, op)),
        IRelop(NumWidth::X64, op) => out.push(0x51 + pos_of(&IRELOPS, op)),
        FRelop(NumWidth::X32, op) => out.push(0x5b + pos_of(&FRELOPS, op)),
        FRelop(NumWidth::X64, op) => out.push(0x61 + pos_of(&FRELOPS, op)),
        IUnop(NumWidth::X32, op) => out.push(0x67 + pos_of(&IUNOPS, op)),
        IUnop(NumWidth::X64, op) => out.push(0x79 + pos_of(&IUNOPS, op)),
        IBinop(NumWidth::X32, op) => out.push(0x6a + pos_of(&IBINOPS, op)),
        IBinop(NumWidth::X64, op) => out.push(0x7c + pos_of(&IBINOPS, op)),
        FUnop(NumWidth::X32, op) => out.push(0x8b + pos_of(&FUNOPS, op)),
        FUnop(NumWidth::X64, op) => out.push(0x99 + pos_of(&FUNOPS, op)),
        FBinop(NumWidth::X32, op) => out.push(0x92 + pos_of(&FBINOPS, op)),
        FBinop(NumWidth::X64, op) => out.push(0xa0 + pos_of(&FBINOPS, op)),
        Cvt(op) => out.push(0xa7 + pos_of(&CVTOPS, op)),
    }
}

fn write_expr(out: &mut Vec<u8>, body: &[Instr]) {
    for i in body {
        write_instr(out, i);
    }
}

fn write_section(out: &mut Vec<u8>, id: u8, payload: &[u8]) {
    out.push(id);
    write_uleb(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

fn const_expr_for(ty: ValType, bits: u64) -> Vec<u8> {
    let mut e = Vec::new();
    match ty {
        ValType::I32 => write_instr(&mut e, &Instr::I32Const(bits as u32 as i32)),
        ValType::I64 => write_instr(&mut e, &Instr::I64Const(bits as i64)),
        ValType::F32 => write_instr(&mut e, &Instr::F32Const(bits as u32)),
        ValType::F64 => write_instr(&mut e, &Instr::F64Const(bits)),
    }
    e.push(0x0b);
    e
}

/// Encodes `module` into the binary format.
pub fn encode(module: &WasmModule) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION);

    if !module.types.is_empty() {
        let mut p = Vec::new();
        write_uleb(&mut p, module.types.len() as u64);
        for t in &module.types {
            p.push(0x60);
            write_uleb(&mut p, t.params.len() as u64);
            for v in &t.params {
                p.push(v.byte());
            }
            write_uleb(&mut p, t.results.len() as u64);
            for v in &t.results {
                p.push(v.byte());
            }
        }
        write_section(&mut out, 1, &p);
    }

    if !module.imports.is_empty() {
        let mut p = Vec::new();
        write_uleb(&mut p, module.imports.len() as u64);
        for imp in &module.imports {
            write_name(&mut p, &imp.module);
            write_name(&mut p, &imp.field);
            match &imp.kind {
                ImportKind::Func(ti) => {
                    p.push(0x00);
                    write_uleb(&mut p, *ti as u64);
                }
                ImportKind::Memory(l) => {
                    p.push(0x02);
                    write_limits(&mut p, l);
                }
                ImportKind::Global(t, mutable) => {
                    p.push(0x03);
                    p.push(t.byte());
                    p.push(u8::from(*mutable));
                }
            }
        }
        write_section(&mut out, 2, &p);
    }

    if !module.funcs.is_empty() {
        let mut p = Vec::new();
        write_uleb(&mut p, module.funcs.len() as u64);
        for f in &module.funcs {
            write_uleb(&mut p, f.type_idx as u64);
        }
        write_section(&mut out, 3, &p);
    }

    if let Some(t) = &module.table {
        let mut p = Vec::new();
        write_uleb(&mut p, 1);
        p.push(0x70); // funcref.
        write_limits(&mut p, t);
        write_section(&mut out, 4, &p);
    }

    if let Some(m) = &module.memory {
        let mut p = Vec::new();
        write_uleb(&mut p, 1);
        write_limits(&mut p, m);
        write_section(&mut out, 5, &p);
    }

    if !module.globals.is_empty() {
        let mut p = Vec::new();
        write_uleb(&mut p, module.globals.len() as u64);
        for g in &module.globals {
            p.push(g.ty.byte());
            p.push(u8::from(g.mutable));
            p.extend_from_slice(&const_expr_for(g.ty, g.init));
        }
        write_section(&mut out, 6, &p);
    }

    if !module.exports.is_empty() {
        let mut p = Vec::new();
        write_uleb(&mut p, module.exports.len() as u64);
        for e in &module.exports {
            write_name(&mut p, &e.name);
            match e.kind {
                ExportKind::Func(i) => {
                    p.push(0x00);
                    write_uleb(&mut p, i as u64);
                }
                ExportKind::Memory => {
                    p.push(0x02);
                    write_uleb(&mut p, 0);
                }
                ExportKind::Global(i) => {
                    p.push(0x03);
                    write_uleb(&mut p, i as u64);
                }
            }
        }
        write_section(&mut out, 7, &p);
    }

    if let Some(s) = module.start {
        let mut p = Vec::new();
        write_uleb(&mut p, s as u64);
        write_section(&mut out, 8, &p);
    }

    if !module.elems.is_empty() {
        let mut p = Vec::new();
        write_uleb(&mut p, module.elems.len() as u64);
        for e in &module.elems {
            write_uleb(&mut p, 0); // Table index.
            p.extend_from_slice(&const_expr_for(ValType::I32, e.offset as u64));
            write_uleb(&mut p, e.funcs.len() as u64);
            for f in &e.funcs {
                write_uleb(&mut p, *f as u64);
            }
        }
        write_section(&mut out, 9, &p);
    }

    if !module.funcs.is_empty() {
        let mut p = Vec::new();
        write_uleb(&mut p, module.funcs.len() as u64);
        for f in &module.funcs {
            let mut body = Vec::new();
            // Locals, run-length compressed by type.
            let mut runs: Vec<(u32, ValType)> = Vec::new();
            for l in &f.locals {
                match runs.last_mut() {
                    Some((n, t)) if t == l => *n += 1,
                    _ => runs.push((1, *l)),
                }
            }
            write_uleb(&mut body, runs.len() as u64);
            for (n, t) in runs {
                write_uleb(&mut body, n as u64);
                body.push(t.byte());
            }
            write_expr(&mut body, &f.body);
            body.push(0x0b);
            write_uleb(&mut p, body.len() as u64);
            p.extend_from_slice(&body);
        }
        write_section(&mut out, 10, &p);
    }

    if !module.data.is_empty() {
        let mut p = Vec::new();
        write_uleb(&mut p, module.data.len() as u64);
        for d in &module.data {
            write_uleb(&mut p, 0); // Memory index.
            p.extend_from_slice(&const_expr_for(ValType::I32, d.offset as u64));
            write_uleb(&mut p, d.bytes.len() as u64);
            p.extend_from_slice(&d.bytes);
        }
        write_section(&mut out, 11, &p);
    }

    // Name custom section (function names), so debug names round-trip.
    if module.funcs.iter().any(|f| !f.name.is_empty()) {
        let mut sub = Vec::new();
        let named: Vec<(u32, &str)> = module
            .funcs
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.name.is_empty())
            .map(|(i, f)| (module.num_imported_funcs() + i as u32, f.name.as_str()))
            .collect();
        write_uleb(&mut sub, named.len() as u64);
        for (idx, name) in named {
            write_uleb(&mut sub, idx as u64);
            write_name(&mut sub, name);
        }
        let mut p = Vec::new();
        write_name(&mut p, "name");
        p.push(0x01); // Function-names subsection.
        write_uleb(&mut p, sub.len() as u64);
        p.extend_from_slice(&sub);
        write_section(&mut out, 0, &p);
    }

    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A binary-format decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Description of the malformation.
    pub msg: String,
    /// Byte offset where decoding failed.
    pub offset: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type DResult<T> = Result<T, DecodeError>;

impl<'a> Reader<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> DResult<T> {
        Err(DecodeError {
            msg: msg.into(),
            offset: self.pos,
        })
    }

    fn byte(&mut self) -> DResult<u8> {
        match self.bytes.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.err("unexpected end of input"),
        }
    }

    fn take(&mut self, n: usize) -> DResult<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return self.err("unexpected end of input");
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn uleb(&mut self) -> DResult<u64> {
        let mut v: u64 = 0;
        let mut shift = 0;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return self.err("uleb too long");
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn uleb32(&mut self) -> DResult<u32> {
        let v = self.uleb()?;
        u32::try_from(v).or_else(|_| self.err("u32 out of range"))
    }

    fn sleb(&mut self) -> DResult<i64> {
        let mut v: i64 = 0;
        let mut shift = 0;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return self.err("sleb too long");
            }
            v |= ((b & 0x7f) as i64) << shift;
            shift += 7;
            if b & 0x80 == 0 {
                if shift < 64 && b & 0x40 != 0 {
                    v |= -1i64 << shift;
                }
                return Ok(v);
            }
        }
    }

    fn name(&mut self) -> DResult<String> {
        let n = self.uleb32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).or_else(|_| self.err("invalid utf-8 name"))
    }

    fn valtype(&mut self) -> DResult<ValType> {
        let b = self.byte()?;
        ValType::from_byte(b).ok_or(DecodeError {
            msg: format!("invalid value type {b:#x}"),
            offset: self.pos - 1,
        })
    }

    fn limits(&mut self) -> DResult<Limits> {
        match self.byte()? {
            0x00 => Ok(Limits {
                min: self.uleb32()?,
                max: None,
            }),
            0x01 => Ok(Limits {
                min: self.uleb32()?,
                max: Some(self.uleb32()?),
            }),
            b => self.err(format!("invalid limits flag {b:#x}")),
        }
    }

    fn blocktype(&mut self) -> DResult<BlockType> {
        let b = self.byte()?;
        if b == 0x40 {
            return Ok(BlockType::Empty);
        }
        match ValType::from_byte(b) {
            Some(t) => Ok(BlockType::Value(t)),
            None => self.err(format!("invalid block type {b:#x}")),
        }
    }

    fn memarg(&mut self) -> DResult<MemArg> {
        Ok(MemArg {
            align: self.uleb32()?,
            offset: self.uleb32()?,
        })
    }

    /// Decodes instructions until one of `terminators` (0x0b end / 0x05
    /// else) is consumed; returns the body and the terminator.
    fn expr(&mut self, depth: u32) -> DResult<(Vec<Instr>, u8)> {
        if depth > 512 {
            return self.err("nesting too deep");
        }
        let mut body = Vec::new();
        loop {
            let op = self.byte()?;
            match op {
                0x0b | 0x05 => return Ok((body, op)),
                _ => body.push(self.instr(op, depth)?),
            }
        }
    }

    fn instr(&mut self, op: u8, depth: u32) -> DResult<Instr> {
        use Instr::*;
        Ok(match op {
            0x00 => Unreachable,
            0x01 => Nop,
            0x02 => {
                let bt = self.blocktype()?;
                let (b, term) = self.expr(depth + 1)?;
                if term != 0x0b {
                    return self.err("block terminated by else");
                }
                Block(bt, b)
            }
            0x03 => {
                let bt = self.blocktype()?;
                let (b, term) = self.expr(depth + 1)?;
                if term != 0x0b {
                    return self.err("loop terminated by else");
                }
                Loop(bt, b)
            }
            0x04 => {
                let bt = self.blocktype()?;
                let (t, term) = self.expr(depth + 1)?;
                let e = if term == 0x05 {
                    let (e, term2) = self.expr(depth + 1)?;
                    if term2 != 0x0b {
                        return self.err("else terminated by else");
                    }
                    e
                } else {
                    Vec::new()
                };
                If(bt, t, e)
            }
            0x0c => Br(self.uleb32()?),
            0x0d => BrIf(self.uleb32()?),
            0x0e => {
                let n = self.uleb32()? as usize;
                let mut targets = Vec::with_capacity(n);
                for _ in 0..n {
                    targets.push(self.uleb32()?);
                }
                BrTable(targets, self.uleb32()?)
            }
            0x0f => Return,
            0x10 => Call(self.uleb32()?),
            0x11 => {
                let t = self.uleb32()?;
                let tbl = self.byte()?;
                if tbl != 0 {
                    return self.err("MVP requires table index 0");
                }
                CallIndirect(t)
            }
            0x1a => Drop,
            0x1b => Select,
            0x20 => LocalGet(self.uleb32()?),
            0x21 => LocalSet(self.uleb32()?),
            0x22 => LocalTee(self.uleb32()?),
            0x23 => GlobalGet(self.uleb32()?),
            0x24 => GlobalSet(self.uleb32()?),
            0x28..=0x35 => {
                let memarg = self.memarg()?;
                let (ty, sub) = match op {
                    0x28 => (ValType::I32, None),
                    0x29 => (ValType::I64, None),
                    0x2a => (ValType::F32, None),
                    0x2b => (ValType::F64, None),
                    0x2c => (ValType::I32, Some((SubWidth::B8, true))),
                    0x2d => (ValType::I32, Some((SubWidth::B8, false))),
                    0x2e => (ValType::I32, Some((SubWidth::B16, true))),
                    0x2f => (ValType::I32, Some((SubWidth::B16, false))),
                    0x30 => (ValType::I64, Some((SubWidth::B8, true))),
                    0x31 => (ValType::I64, Some((SubWidth::B8, false))),
                    0x32 => (ValType::I64, Some((SubWidth::B16, true))),
                    0x33 => (ValType::I64, Some((SubWidth::B16, false))),
                    0x34 => (ValType::I64, Some((SubWidth::B32, true))),
                    _ => (ValType::I64, Some((SubWidth::B32, false))),
                };
                Load { ty, sub, memarg }
            }
            0x36..=0x3e => {
                let memarg = self.memarg()?;
                let (ty, sub) = match op {
                    0x36 => (ValType::I32, None),
                    0x37 => (ValType::I64, None),
                    0x38 => (ValType::F32, None),
                    0x39 => (ValType::F64, None),
                    0x3a => (ValType::I32, Some(SubWidth::B8)),
                    0x3b => (ValType::I32, Some(SubWidth::B16)),
                    0x3c => (ValType::I64, Some(SubWidth::B8)),
                    0x3d => (ValType::I64, Some(SubWidth::B16)),
                    _ => (ValType::I64, Some(SubWidth::B32)),
                };
                Store { ty, sub, memarg }
            }
            0x3f => {
                self.byte()?;
                MemorySize
            }
            0x40 => {
                self.byte()?;
                MemoryGrow
            }
            0x41 => I32Const(self.sleb()? as i32),
            0x42 => I64Const(self.sleb()?),
            0x43 => {
                let b = self.take(4)?;
                F32Const(u32::from_le_bytes(b.try_into().expect("4 bytes")))
            }
            0x44 => {
                let b = self.take(8)?;
                F64Const(u64::from_le_bytes(b.try_into().expect("8 bytes")))
            }
            0x45 => ITestop(NumWidth::X32),
            0x50 => ITestop(NumWidth::X64),
            0x46..=0x4f => IRelop(NumWidth::X32, IRELOPS[(op - 0x46) as usize]),
            0x51..=0x5a => IRelop(NumWidth::X64, IRELOPS[(op - 0x51) as usize]),
            0x5b..=0x60 => FRelop(NumWidth::X32, FRELOPS[(op - 0x5b) as usize]),
            0x61..=0x66 => FRelop(NumWidth::X64, FRELOPS[(op - 0x61) as usize]),
            0x67..=0x69 => IUnop(NumWidth::X32, IUNOPS[(op - 0x67) as usize]),
            0x79..=0x7b => IUnop(NumWidth::X64, IUNOPS[(op - 0x79) as usize]),
            0x6a..=0x78 => IBinop(NumWidth::X32, IBINOPS[(op - 0x6a) as usize]),
            0x7c..=0x8a => IBinop(NumWidth::X64, IBINOPS[(op - 0x7c) as usize]),
            0x8b..=0x91 => FUnop(NumWidth::X32, FUNOPS[(op - 0x8b) as usize]),
            0x99..=0x9f => FUnop(NumWidth::X64, FUNOPS[(op - 0x99) as usize]),
            0x92..=0x98 => FBinop(NumWidth::X32, FBINOPS[(op - 0x92) as usize]),
            0xa0..=0xa6 => FBinop(NumWidth::X64, FBINOPS[(op - 0xa0) as usize]),
            0xa7..=0xbf => Cvt(CVTOPS[(op - 0xa7) as usize]),
            _ => return self.err(format!("unknown opcode {op:#x}")),
        })
    }

    fn const_expr(&mut self) -> DResult<u64> {
        let op = self.byte()?;
        let v = match op {
            0x41 => self.sleb()? as i32 as u32 as u64,
            0x42 => self.sleb()? as u64,
            0x43 => u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")) as u64,
            0x44 => u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")),
            _ => return self.err("unsupported constant expression"),
        };
        if self.byte()? != 0x0b {
            return self.err("constant expression not terminated");
        }
        Ok(v)
    }
}

/// Decodes a binary module.
pub fn decode(bytes: &[u8]) -> Result<WasmModule, DecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return r.err("bad magic");
    }
    if r.take(4)? != VERSION {
        return r.err("unsupported version");
    }

    let mut m = WasmModule::default();
    let mut func_type_idxs: Vec<u32> = Vec::new();

    while r.pos < bytes.len() {
        let id = r.byte()?;
        let size = r.uleb32()? as usize;
        let end = r.pos + size;
        if end > bytes.len() {
            return r.err("section extends past end");
        }
        match id {
            0 => {
                // Custom section; we understand the function-names
                // subsection of "name" and skip everything else.
                let section_end = end;
                let name = r.name()?;
                if name == "name" {
                    while r.pos < section_end {
                        let sub_id = r.byte()?;
                        let sub_len = r.uleb32()? as usize;
                        let sub_end = r.pos + sub_len;
                        if sub_id == 1 {
                            let count = r.uleb32()?;
                            for _ in 0..count {
                                let idx = r.uleb32()?;
                                let fname = r.name()?;
                                let local = idx.wrapping_sub(m.num_imported_funcs());
                                if let Some(f) = m.funcs.get_mut(local as usize) {
                                    f.name = fname;
                                }
                            }
                        }
                        r.pos = sub_end;
                    }
                }
                r.pos = section_end;
            }
            1 => {
                let n = r.uleb32()?;
                for _ in 0..n {
                    if r.byte()? != 0x60 {
                        return r.err("expected func type");
                    }
                    let np = r.uleb32()? as usize;
                    let mut params = Vec::with_capacity(np);
                    for _ in 0..np {
                        params.push(r.valtype()?);
                    }
                    let nr = r.uleb32()? as usize;
                    let mut results = Vec::with_capacity(nr);
                    for _ in 0..nr {
                        results.push(r.valtype()?);
                    }
                    if results.len() > 1 {
                        return r.err("MVP allows one result");
                    }
                    m.types.push(FuncType { params, results });
                }
            }
            2 => {
                let n = r.uleb32()?;
                for _ in 0..n {
                    let module = r.name()?;
                    let field = r.name()?;
                    let kind = match r.byte()? {
                        0x00 => ImportKind::Func(r.uleb32()?),
                        0x02 => ImportKind::Memory(r.limits()?),
                        0x03 => {
                            let t = r.valtype()?;
                            let mutable = r.byte()? == 1;
                            ImportKind::Global(t, mutable)
                        }
                        b => return r.err(format!("unsupported import kind {b:#x}")),
                    };
                    m.imports.push(Import {
                        module,
                        field,
                        kind,
                    });
                }
            }
            3 => {
                let n = r.uleb32()?;
                for _ in 0..n {
                    func_type_idxs.push(r.uleb32()?);
                }
            }
            4 => {
                let n = r.uleb32()?;
                if n != 1 {
                    return r.err("MVP allows one table");
                }
                if r.byte()? != 0x70 {
                    return r.err("expected funcref table");
                }
                m.table = Some(r.limits()?);
            }
            5 => {
                let n = r.uleb32()?;
                if n != 1 {
                    return r.err("MVP allows one memory");
                }
                m.memory = Some(r.limits()?);
            }
            6 => {
                let n = r.uleb32()?;
                for _ in 0..n {
                    let ty = r.valtype()?;
                    let mutable = r.byte()? == 1;
                    let init = r.const_expr()?;
                    m.globals.push(Global { ty, mutable, init });
                }
            }
            7 => {
                let n = r.uleb32()?;
                for _ in 0..n {
                    let name = r.name()?;
                    let kind = match r.byte()? {
                        0x00 => ExportKind::Func(r.uleb32()?),
                        0x02 => {
                            r.uleb32()?;
                            ExportKind::Memory
                        }
                        0x03 => ExportKind::Global(r.uleb32()?),
                        b => return r.err(format!("unsupported export kind {b:#x}")),
                    };
                    m.exports.push(Export { name, kind });
                }
            }
            8 => {
                m.start = Some(r.uleb32()?);
            }
            9 => {
                let n = r.uleb32()?;
                for _ in 0..n {
                    if r.uleb32()? != 0 {
                        return r.err("MVP requires table 0");
                    }
                    let offset = r.const_expr()? as u32;
                    let cnt = r.uleb32()? as usize;
                    let mut funcs = Vec::with_capacity(cnt);
                    for _ in 0..cnt {
                        funcs.push(r.uleb32()?);
                    }
                    m.elems.push(ElemSegment { offset, funcs });
                }
            }
            10 => {
                let n = r.uleb32()? as usize;
                if n != func_type_idxs.len() {
                    return r.err("function and code section counts differ");
                }
                for ti in func_type_idxs.iter().copied() {
                    let body_size = r.uleb32()? as usize;
                    let body_end = r.pos + body_size;
                    let nruns = r.uleb32()? as usize;
                    let mut locals = Vec::new();
                    for _ in 0..nruns {
                        let count = r.uleb32()?;
                        let t = r.valtype()?;
                        for _ in 0..count {
                            locals.push(t);
                        }
                    }
                    let (body, term) = r.expr(0)?;
                    if term != 0x0b {
                        return r.err("function body terminated by else");
                    }
                    if r.pos != body_end {
                        return r.err("function body size mismatch");
                    }
                    m.funcs.push(FuncDef {
                        type_idx: ti,
                        locals,
                        body,
                        name: String::new(),
                    });
                }
            }
            11 => {
                let n = r.uleb32()?;
                for _ in 0..n {
                    if r.uleb32()? != 0 {
                        return r.err("MVP requires memory 0");
                    }
                    let offset = r.const_expr()? as u32;
                    let len = r.uleb32()? as usize;
                    let bytes = r.take(len)?.to_vec();
                    m.data.push(DataSegment { offset, bytes });
                }
            }
            _ => return r.err(format!("unknown section id {id}")),
        }
        if r.pos != end {
            return r.err(format!("section {id} size mismatch"));
        }
    }

    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{IBinop, NumWidth};
    use crate::module::FuncDef;

    #[test]
    fn uleb_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16384, u32::MAX as u64, u64::MAX] {
            let mut b = Vec::new();
            write_uleb(&mut b, v);
            let mut r = Reader { bytes: &b, pos: 0 };
            assert_eq!(r.uleb().unwrap(), v);
            assert_eq!(r.pos, b.len());
        }
    }

    #[test]
    fn sleb_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            64,
            -64,
            -65,
            i32::MAX as i64,
            i32::MIN as i64,
            i64::MAX,
            i64::MIN,
        ] {
            let mut b = Vec::new();
            write_sleb(&mut b, v);
            let mut r = Reader { bytes: &b, pos: 0 };
            assert_eq!(r.sleb().unwrap(), v, "value {v}");
            assert_eq!(r.pos, b.len());
        }
    }

    fn sample_module() -> WasmModule {
        let mut m = WasmModule::default();
        let t = m.intern_type(FuncType::new(
            vec![ValType::I32, ValType::I32],
            vec![ValType::I32],
        ));
        let tv = m.intern_type(FuncType::new(vec![], vec![]));
        m.imports.push(Import {
            module: "env".into(),
            field: "syscall".into(),
            kind: ImportKind::Func(t),
        });
        m.memory = Some(Limits {
            min: 2,
            max: Some(100),
        });
        m.table = Some(Limits { min: 4, max: None });
        m.globals.push(Global {
            ty: ValType::I32,
            mutable: true,
            init: 1024,
        });
        m.globals.push(Global {
            ty: ValType::F64,
            mutable: false,
            init: 2.5f64.to_bits(),
        });
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![ValType::I32, ValType::I32, ValType::F64],
            body: vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::IBinop(NumWidth::X32, IBinop::Add),
                Instr::Block(
                    BlockType::Value(ValType::I32),
                    vec![
                        Instr::I32Const(-5),
                        Instr::If(
                            BlockType::Value(ValType::I32),
                            vec![Instr::I32Const(1)],
                            vec![Instr::I32Const(2)],
                        ),
                    ],
                ),
                Instr::IBinop(NumWidth::X32, IBinop::Add),
            ],
            name: "add2".into(),
        });
        m.funcs.push(FuncDef {
            type_idx: tv,
            locals: vec![],
            body: vec![Instr::Loop(
                BlockType::Empty,
                vec![Instr::I32Const(0), Instr::BrIf(0)],
            )],
            name: "spin".into(),
        });
        m.exports.push(Export {
            name: "add2".into(),
            kind: ExportKind::Func(1),
        });
        m.exports.push(Export {
            name: "memory".into(),
            kind: ExportKind::Memory,
        });
        m.elems.push(ElemSegment {
            offset: 1,
            funcs: vec![1, 2],
        });
        m.data.push(DataSegment {
            offset: 8,
            bytes: b"hello world".to_vec(),
        });
        m
    }

    #[test]
    fn module_roundtrip() {
        let m = sample_module();
        let bytes = encode(&m);
        let m2 = decode(&bytes).expect("decodes");
        assert_eq!(m, m2);
    }

    #[test]
    fn header_checked() {
        assert!(decode(b"\0asX\x01\0\0\0").is_err());
        assert!(decode(b"\0asm\x02\0\0\0").is_err());
        assert!(decode(b"\0asm\x01\0\0\0").unwrap().funcs.is_empty());
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&sample_module());
        for cut in [9, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_memory_op_roundtrips() {
        let mut m = WasmModule::default();
        let t = m.intern_type(FuncType::new(vec![], vec![]));
        m.memory = Some(Limits { min: 1, max: None });
        let mut body = Vec::new();
        let loads: Vec<Instr> = vec![
            (ValType::I32, None),
            (ValType::I64, None),
            (ValType::F32, None),
            (ValType::F64, None),
            (ValType::I32, Some((SubWidth::B8, true))),
            (ValType::I32, Some((SubWidth::B8, false))),
            (ValType::I32, Some((SubWidth::B16, true))),
            (ValType::I32, Some((SubWidth::B16, false))),
            (ValType::I64, Some((SubWidth::B8, true))),
            (ValType::I64, Some((SubWidth::B8, false))),
            (ValType::I64, Some((SubWidth::B16, true))),
            (ValType::I64, Some((SubWidth::B16, false))),
            (ValType::I64, Some((SubWidth::B32, true))),
            (ValType::I64, Some((SubWidth::B32, false))),
        ]
        .into_iter()
        .map(|(ty, sub)| Instr::Load {
            ty,
            sub,
            memarg: MemArg::natural(sub.map(|(w, _)| w.bytes()).unwrap_or(ty.bytes()), 4),
        })
        .collect();
        for l in &loads {
            body.push(Instr::I32Const(0));
            body.push(l.clone());
            body.push(Instr::Drop);
        }
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![],
            body,
            name: String::new(),
        });
        let m2 = decode(&encode(&m)).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn all_numeric_families_roundtrip() {
        let mut m = WasmModule::default();
        let t = m.intern_type(FuncType::new(vec![], vec![]));
        let mut body: Vec<Instr> = Vec::new();
        for w in [NumWidth::X32, NumWidth::X64] {
            for op in IBINOPS {
                body.push(if w == NumWidth::X32 {
                    Instr::I32Const(1)
                } else {
                    Instr::I64Const(1)
                });
                body.push(if w == NumWidth::X32 {
                    Instr::I32Const(1)
                } else {
                    Instr::I64Const(1)
                });
                body.push(Instr::IBinop(w, op));
                body.push(Instr::Drop);
            }
        }
        for op in CVTOPS {
            let (from, _) = op.signature();
            body.push(match from {
                ValType::I32 => Instr::I32Const(0),
                ValType::I64 => Instr::I64Const(0),
                ValType::F32 => Instr::F32Const(0),
                ValType::F64 => Instr::F64Const(0),
            });
            body.push(Instr::Cvt(op));
            body.push(Instr::Drop);
        }
        m.funcs.push(FuncDef {
            type_idx: t,
            locals: vec![],
            body,
            name: String::new(),
        });
        let m2 = decode(&encode(&m)).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn code_and_func_counts_must_agree() {
        let m = sample_module();
        let mut bytes = encode(&m);
        // Corrupt the function-section count byte (find section 3).
        let mut pos = 8;
        loop {
            let id = bytes[pos];
            // Section sizes here are single-byte ulebs for this module.
            let size = bytes[pos + 1] as usize;
            if id == 3 {
                bytes[pos + 2] = 9; // Wrong count.
                break;
            }
            pos += 2 + size;
        }
        assert!(decode(&bytes).is_err());
    }
}
