//! Module structure.

use crate::instr::Instr;
use crate::types::{FuncType, ValType};

/// Size of a linear-memory page (64 KiB).
pub const PAGE_SIZE: u32 = 65536;

/// Min/max limits for memories and tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Limits {
    /// Initial size (pages for memory, entries for tables).
    pub min: u32,
    /// Optional maximum.
    pub max: Option<u32>,
}

/// What an import provides.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportKind {
    /// A function with the given type index.
    Func(u32),
    /// A memory.
    Memory(Limits),
    /// A global.
    Global(ValType, bool),
}

/// One import.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Module namespace (e.g. `"env"`).
    pub module: String,
    /// Field name (e.g. `"__syscall"`).
    pub field: String,
    /// The imported entity.
    pub kind: ImportKind,
}

/// A locally defined function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Index into [`WasmModule::types`].
    pub type_idx: u32,
    /// Types of declared locals (excluding parameters).
    pub locals: Vec<ValType>,
    /// The body.
    pub body: Vec<Instr>,
    /// Optional debug name.
    pub name: String,
}

/// A module-defined global.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Global {
    /// The global's value type.
    pub ty: ValType,
    /// Whether the global is mutable.
    pub mutable: bool,
    /// Constant initializer (bit pattern for floats).
    pub init: u64,
}

/// What an export exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportKind {
    /// A function index.
    Func(u32),
    /// The memory.
    Memory,
    /// A global index.
    Global(u32),
}

/// One export.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    /// Export name.
    pub name: String,
    /// Exported entity.
    pub kind: ExportKind,
}

/// An element segment initializing the function table.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemSegment {
    /// Constant table offset.
    pub offset: u32,
    /// Function indices placed at `offset..`.
    pub funcs: Vec<u32>,
}

/// A data segment initializing linear memory.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Constant memory offset.
    pub offset: u32,
    /// Bytes.
    pub bytes: Vec<u8>,
}

/// A complete WebAssembly module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WasmModule {
    /// The type section.
    pub types: Vec<FuncType>,
    /// Imports (function imports occupy the front of the function index
    /// space, as in the spec).
    pub imports: Vec<Import>,
    /// Locally defined functions.
    pub funcs: Vec<FuncDef>,
    /// Function table size, if present.
    pub table: Option<Limits>,
    /// Element segments.
    pub elems: Vec<ElemSegment>,
    /// Linear memory limits, if present.
    pub memory: Option<Limits>,
    /// Globals.
    pub globals: Vec<Global>,
    /// Exports.
    pub exports: Vec<Export>,
    /// Start function.
    pub start: Option<u32>,
    /// Data segments.
    pub data: Vec<DataSegment>,
}

impl WasmModule {
    /// Number of imported functions (offset of local function indices).
    pub fn num_imported_funcs(&self) -> u32 {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Func(_)))
            .count() as u32
    }

    /// Type of the function at index `idx` in the function index space.
    pub fn func_type(&self, idx: u32) -> Option<&FuncType> {
        let n = self.num_imported_funcs();
        if idx < n {
            let mut k = 0;
            for imp in &self.imports {
                if let ImportKind::Func(ti) = imp.kind {
                    if k == idx {
                        return self.types.get(ti as usize);
                    }
                    k += 1;
                }
            }
            None
        } else {
            let def = self.funcs.get((idx - n) as usize)?;
            self.types.get(def.type_idx as usize)
        }
    }

    /// The local definition of function index `idx`, if not imported.
    pub fn local_func(&self, idx: u32) -> Option<&FuncDef> {
        let n = self.num_imported_funcs();
        if idx < n {
            None
        } else {
            self.funcs.get((idx - n) as usize)
        }
    }

    /// Finds an exported function by name.
    pub fn exported_func(&self, name: &str) -> Option<u32> {
        self.exports.iter().find_map(|e| match e.kind {
            ExportKind::Func(i) if e.name == name => Some(i),
            _ => None,
        })
    }

    /// Adds a type, deduplicating, and returns its index.
    pub fn intern_type(&mut self, ty: FuncType) -> u32 {
        if let Some(i) = self.types.iter().position(|t| *t == ty) {
            i as u32
        } else {
            self.types.push(ty);
            (self.types.len() - 1) as u32
        }
    }

    /// Total instruction count across all function bodies.
    pub fn code_size(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| crate::instr::body_size(&f.body))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module_with_import() -> WasmModule {
        let mut m = WasmModule::default();
        let t0 = m.intern_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        let t1 = m.intern_type(FuncType::new(vec![], vec![]));
        m.imports.push(Import {
            module: "env".into(),
            field: "syscall".into(),
            kind: ImportKind::Func(t0),
        });
        m.funcs.push(FuncDef {
            type_idx: t1,
            locals: vec![],
            body: vec![],
            name: "main".into(),
        });
        m.exports.push(Export {
            name: "main".into(),
            kind: ExportKind::Func(1),
        });
        m
    }

    #[test]
    fn function_index_space_includes_imports() {
        let m = module_with_import();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.func_type(0).unwrap().params, vec![ValType::I32]);
        assert!(m.func_type(1).unwrap().params.is_empty());
        assert!(m.local_func(0).is_none());
        assert_eq!(m.local_func(1).unwrap().name, "main");
        assert_eq!(m.func_type(2), None);
    }

    #[test]
    fn intern_type_dedupes() {
        let mut m = WasmModule::default();
        let a = m.intern_type(FuncType::new(vec![ValType::I32], vec![]));
        let b = m.intern_type(FuncType::new(vec![ValType::I32], vec![]));
        let c = m.intern_type(FuncType::new(vec![ValType::I64], vec![]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.types.len(), 2);
    }

    #[test]
    fn exported_func_lookup() {
        let m = module_with_import();
        assert_eq!(m.exported_func("main"), Some(1));
        assert_eq!(m.exported_func("missing"), None);
    }
}
