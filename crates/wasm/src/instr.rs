//! The MVP instruction set.
//!
//! Instructions are grouped by operator family (integer unary/binary/
//! relational, float unary/binary/relational, conversions) exactly as the
//! specification groups its validation and execution rules; this keeps the
//! validator, interpreter, and JIT backends free of 170-arm matches.

use crate::types::ValType;

/// Width selector for integer operator families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum NumWidth {
    X32,
    X64,
}

impl NumWidth {
    /// The corresponding integer value type.
    pub fn int_ty(self) -> ValType {
        match self {
            NumWidth::X32 => ValType::I32,
            NumWidth::X64 => ValType::I64,
        }
    }

    /// The corresponding float value type.
    pub fn float_ty(self) -> ValType {
        match self {
            NumWidth::X32 => ValType::F32,
            NumWidth::X64 => ValType::F64,
        }
    }
}

/// Integer unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IUnop {
    Clz,
    Ctz,
    Popcnt,
}

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IBinop {
    Add,
    Sub,
    Mul,
    DivS,
    DivU,
    RemS,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Rotl,
    Rotr,
}

/// Integer relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IRelop {
    Eq,
    Ne,
    LtS,
    LtU,
    GtS,
    GtU,
    LeS,
    LeU,
    GeS,
    GeU,
}

/// Float unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FUnop {
    Abs,
    Neg,
    Ceil,
    Floor,
    Trunc,
    Nearest,
    Sqrt,
}

/// Float binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FBinop {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Copysign,
}

/// Float relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FRelop {
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
}

/// Conversion operators (all MVP conversions, one variant each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CvtOp {
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,
}

impl CvtOp {
    /// (operand type, result type) of the conversion.
    pub fn signature(self) -> (ValType, ValType) {
        use CvtOp::*;
        use ValType::*;
        match self {
            I32WrapI64 => (I64, I32),
            I32TruncF32S | I32TruncF32U => (F32, I32),
            I32TruncF64S | I32TruncF64U => (F64, I32),
            I64ExtendI32S | I64ExtendI32U => (I32, I64),
            I64TruncF32S | I64TruncF32U => (F32, I64),
            I64TruncF64S | I64TruncF64U => (F64, I64),
            F32ConvertI32S | F32ConvertI32U => (I32, F32),
            F32ConvertI64S | F32ConvertI64U => (I64, F32),
            F32DemoteF64 => (F64, F32),
            F64ConvertI32S | F64ConvertI32U => (I32, F64),
            F64ConvertI64S | F64ConvertI64U => (I64, F64),
            F64PromoteF32 => (F32, F64),
            I32ReinterpretF32 => (F32, I32),
            I64ReinterpretF64 => (F64, I64),
            F32ReinterpretI32 => (I32, F32),
            F64ReinterpretI64 => (I64, F64),
        }
    }
}

/// Alignment and offset immediate of a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemArg {
    /// log2 of the alignment hint.
    pub align: u32,
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
}

impl MemArg {
    /// A memarg with natural alignment for an access of `bytes` bytes.
    pub fn natural(bytes: u32, offset: u32) -> MemArg {
        MemArg {
            align: bytes.trailing_zeros(),
            offset,
        }
    }
}

/// Block result type (MVP: empty or a single value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockType {
    /// No result.
    Empty,
    /// One result of the given type.
    Value(ValType),
}

impl BlockType {
    /// The result type, if any.
    pub fn result(self) -> Option<ValType> {
        match self {
            BlockType::Empty => None,
            BlockType::Value(t) => Some(t),
        }
    }
}

/// Sub-word load width and signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SubWidth {
    B8,
    B16,
    B32,
}

impl SubWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            SubWidth::B8 => 1,
            SubWidth::B16 => 2,
            SubWidth::B32 => 4,
        }
    }
}

/// One MVP instruction. Control structures are nested, as in the text
/// format and the specification's abstract syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `unreachable`.
    Unreachable,
    /// `nop`.
    Nop,
    /// `block (result?) ... end`.
    Block(BlockType, Vec<Instr>),
    /// `loop (result?) ... end`.
    Loop(BlockType, Vec<Instr>),
    /// `if (result?) ... else ... end`.
    If(BlockType, Vec<Instr>, Vec<Instr>),
    /// `br depth`.
    Br(u32),
    /// `br_if depth`.
    BrIf(u32),
    /// `br_table targets default`.
    BrTable(Vec<u32>, u32),
    /// `return`.
    Return,
    /// `call func_idx`.
    Call(u32),
    /// `call_indirect type_idx` (table 0).
    CallIndirect(u32),
    /// `drop`.
    Drop,
    /// `select`.
    Select,
    /// `local.get idx`.
    LocalGet(u32),
    /// `local.set idx`.
    LocalSet(u32),
    /// `local.tee idx`.
    LocalTee(u32),
    /// `global.get idx`.
    GlobalGet(u32),
    /// `global.set idx`.
    GlobalSet(u32),
    /// A load; `sub` selects sub-word width and sign extension for integer
    /// loads (`None` = full-width).
    Load {
        /// Result type.
        ty: ValType,
        /// Sub-word width and signedness (integer loads only).
        sub: Option<(SubWidth, bool)>,
        /// Alignment/offset immediate.
        memarg: MemArg,
    },
    /// A store; `sub` selects sub-word width for integer stores.
    Store {
        /// Operand type.
        ty: ValType,
        /// Sub-word width (integer stores only).
        sub: Option<SubWidth>,
        /// Alignment/offset immediate.
        memarg: MemArg,
    },
    /// `memory.size`.
    MemorySize,
    /// `memory.grow`.
    MemoryGrow,
    /// `i32.const`.
    I32Const(i32),
    /// `i64.const`.
    I64Const(i64),
    /// `f32.const` (bit pattern, for NaN determinism).
    F32Const(u32),
    /// `f64.const` (bit pattern).
    F64Const(u64),
    /// `i32.eqz` / `i64.eqz`.
    ITestop(NumWidth),
    /// Integer comparison.
    IRelop(NumWidth, IRelop),
    /// Float comparison.
    FRelop(NumWidth, FRelop),
    /// Integer unary operator.
    IUnop(NumWidth, IUnop),
    /// Integer binary operator.
    IBinop(NumWidth, IBinop),
    /// Float unary operator.
    FUnop(NumWidth, FUnop),
    /// Float binary operator.
    FBinop(NumWidth, FBinop),
    /// A conversion.
    Cvt(CvtOp),
}

impl Instr {
    /// Recursively counts instructions, including nested blocks (a crude
    /// code-size metric used by compile-time models and tests).
    pub fn count(&self) -> usize {
        match self {
            Instr::Block(_, body) | Instr::Loop(_, body) => {
                1 + body.iter().map(Instr::count).sum::<usize>()
            }
            Instr::If(_, t, e) => {
                1 + t.iter().map(Instr::count).sum::<usize>()
                    + e.iter().map(Instr::count).sum::<usize>()
            }
            _ => 1,
        }
    }
}

/// Counts instructions in a body.
pub fn body_size(body: &[Instr]) -> usize {
    body.iter().map(Instr::count).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cvt_signatures_are_consistent() {
        use CvtOp::*;
        assert_eq!(I32WrapI64.signature(), (ValType::I64, ValType::I32));
        assert_eq!(F64PromoteF32.signature(), (ValType::F32, ValType::F64));
        assert_eq!(I32ReinterpretF32.signature(), (ValType::F32, ValType::I32));
    }

    #[test]
    fn memarg_natural_alignment() {
        assert_eq!(MemArg::natural(4, 0).align, 2);
        assert_eq!(MemArg::natural(8, 16).align, 3);
        assert_eq!(MemArg::natural(1, 0).align, 0);
    }

    #[test]
    fn instruction_counting() {
        let body = vec![
            Instr::I32Const(1),
            Instr::Block(
                BlockType::Empty,
                vec![
                    Instr::Nop,
                    Instr::If(BlockType::Empty, vec![Instr::Nop], vec![]),
                ],
            ),
        ];
        // 1 + (1 + 1 + (1 + 1)) = 5.
        assert_eq!(body_size(&body), 5);
    }

    #[test]
    fn blocktype_result() {
        assert_eq!(BlockType::Empty.result(), None);
        assert_eq!(BlockType::Value(ValType::F32).result(), Some(ValType::F32));
    }
}
