//! Recursive-descent parser.
//!
//! Grammar sketch (C-like, semicolon-terminated):
//!
//! ```text
//! program   := (const | global | array | table | func)*
//! const     := "const" IDENT "=" expr ";"
//! global    := "global" ty IDENT ("=" expr)? ";"
//! array     := "array" elemty IDENT "[" expr "]" ";"
//!            | "array" elemty IDENT "=" "[" expr,* "]" ";"
//!            | "array" elemty IDENT "=" STRING ";"
//! table     := "table" IDENT "=" "[" IDENT,* "]" ";"
//! func      := "fn" IDENT "(" (IDENT ":" ty),* ")" ("->" ty)? block
//! stmt      := "var" IDENT ":" ty ("=" expr)? ";"
//!            | "if" "(" expr ")" block ("else" (block | if))?
//!            | "while" "(" expr ")" block
//!            | "do" block "while" "(" expr ")" ";"
//!            | "for" "(" simple? ";" expr? ";" simple? ")" block
//!            | "break" ";" | "continue" ";"
//!            | "return" expr? ";"
//!            | simple ";"
//! simple    := IDENT "=" expr | IDENT OP= expr
//!            | IDENT "[" expr "]" "=" expr | IDENT "[" expr "]" OP= expr
//!            | expr
//! ```
//!
//! Expressions use C precedence; `&&`/`||` short-circuit. `ty(expr)` is a
//! conversion. `name[i](args)` is an indirect call through table `name`.

use crate::ast::{
    ArrayDef, ArrayInit, BinOp, ConstDef, ElemTy, Expr, ExprKind, Func, GlobalDef, Intrinsic,
    Program, Stmt, TableDef, Ty, UnOp,
};
use crate::lexer::{lex, LexError, SpannedTok, Tok};
use core::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            msg: e.msg,
            line: e.line,
        }
    }
}

type PResult<T> = Result<T, ParseError>;

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

fn scalar_ty(name: &str) -> Option<Ty> {
    Some(match name {
        "i32" => Ty::I32,
        "i64" => Ty::I64,
        "u32" => Ty::U32,
        "u64" => Ty::U64,
        "f32" => Ty::F32,
        "f64" => Ty::F64,
        _ => return None,
    })
}

fn elem_ty(name: &str) -> Option<ElemTy> {
    Some(match name {
        "i8" => ElemTy::I8,
        "u8" => ElemTy::U8,
        "i16" => ElemTy::I16,
        "u16" => ElemTy::U16,
        other => ElemTy::Full(scalar_ty(other)?),
    })
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            msg: msg.into(),
            line: self.line(),
        })
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.next();
                Ok(())
            }
            other => self.err(format!("expected `{p}`, found {other}")),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_ty(&mut self) -> PResult<Ty> {
        let name = self.expect_ident()?;
        scalar_ty(&name).map_or_else(|| self.err(format!("unknown type `{name}`")), Ok)
    }

    // ----- expressions -------------------------------------------------

    fn parse_expr(&mut self) -> PResult<Expr> {
        self.parse_binary(0)
    }

    fn binop_at(&self, level: u8) -> Option<(BinOp, &'static str)> {
        let table: &[&[(&str, BinOp)]] = &[
            &[("||", BinOp::LogOr)],
            &[("&&", BinOp::LogAnd)],
            &[("|", BinOp::BitOr)],
            &[("^", BinOp::BitXor)],
            &[("&", BinOp::BitAnd)],
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)],
        ];
        let ops = table.get(level as usize)?;
        if let Tok::Punct(p) = self.peek() {
            for (text, op) in ops.iter() {
                if text == p {
                    return Some((*op, text));
                }
            }
        }
        None
    }

    fn parse_binary(&mut self, level: u8) -> PResult<Expr> {
        if level > 9 {
            return self.parse_unary();
        }
        let mut lhs = self.parse_binary(level + 1)?;
        while let Some((op, _)) = self.binop_at(level) {
            let line = self.line();
            self.next();
            let rhs = self.parse_binary(level + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        let line = self.line();
        if self.eat_punct("-") {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
                line,
            });
        }
        if self.eat_punct("!") {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnOp::Not, Box::new(e)),
                line,
            });
        }
        if self.eat_punct("~") {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnOp::BitNot, Box::new(e)),
                line,
            });
        }
        self.parse_postfix()
    }

    fn parse_args(&mut self) -> PResult<Vec<Expr>> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.parse_expr()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(args)
    }

    fn parse_postfix(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.next();
                Ok(Expr {
                    kind: ExprKind::Int(v),
                    line,
                })
            }
            Tok::Float(v) => {
                self.next();
                Ok(Expr {
                    kind: ExprKind::Float(v),
                    line,
                })
            }
            Tok::Punct("(") => {
                self.next();
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.next();
                // Type conversion `ty(expr)`.
                if let Some(t) = scalar_ty(&name) {
                    if matches!(self.peek(), Tok::Punct("(")) {
                        self.next();
                        let e = self.parse_expr()?;
                        self.expect_punct(")")?;
                        return Ok(Expr {
                            kind: ExprKind::Cast(t, Box::new(e)),
                            line,
                        });
                    }
                }
                if matches!(self.peek(), Tok::Punct("(")) {
                    // Calls: syscall, intrinsic, or direct.
                    let args = self.parse_args()?;
                    if name == "syscall" {
                        if args.is_empty() || args.len() > 6 {
                            return self.err("syscall takes 1..=6 arguments");
                        }
                        return Ok(Expr {
                            kind: ExprKind::Syscall(args),
                            line,
                        });
                    }
                    if let Some(i) = Intrinsic::by_name(&name) {
                        return Ok(Expr {
                            kind: ExprKind::Intrinsic(i, args),
                            line,
                        });
                    }
                    return Ok(Expr {
                        kind: ExprKind::Call(name, args),
                        line,
                    });
                }
                if matches!(self.peek(), Tok::Punct("[")) {
                    self.next();
                    let idx = self.parse_expr()?;
                    self.expect_punct("]")?;
                    if matches!(self.peek(), Tok::Punct("(")) {
                        let args = self.parse_args()?;
                        return Ok(Expr {
                            kind: ExprKind::IndirectCall(name, Box::new(idx), args),
                            line,
                        });
                    }
                    return Ok(Expr {
                        kind: ExprKind::Index(name, Box::new(idx)),
                        line,
                    });
                }
                Ok(Expr {
                    kind: ExprKind::Var(name),
                    line,
                })
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }

    // ----- statements --------------------------------------------------

    fn parse_block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    /// Desugars `x OP= e` to `x = x OP e`.
    fn compound(op: &str) -> Option<BinOp> {
        Some(match op {
            "+=" => BinOp::Add,
            "-=" => BinOp::Sub,
            "*=" => BinOp::Mul,
            "/=" => BinOp::Div,
            "%=" => BinOp::Rem,
            "&=" => BinOp::BitAnd,
            "|=" => BinOp::BitOr,
            "^=" => BinOp::BitXor,
            "<<=" => BinOp::Shl,
            ">>=" => BinOp::Shr,
            _ => return None,
        })
    }

    /// Parses an assignment or expression statement (without semicolon).
    fn parse_simple(&mut self) -> PResult<Stmt> {
        let line = self.line();
        if let Tok::Ident(name) = self.peek().clone() {
            // `x = e`, `x OP= e`.
            if let Tok::Punct(p) = self.peek2().clone() {
                if p == "=" {
                    self.next();
                    self.next();
                    let value = self.parse_expr()?;
                    return Ok(Stmt::Assign { name, value, line });
                }
                if let Some(op) = Self::compound(p) {
                    self.next();
                    self.next();
                    let rhs = self.parse_expr()?;
                    let value = Expr {
                        kind: ExprKind::Binary(
                            op,
                            Box::new(Expr {
                                kind: ExprKind::Var(name.clone()),
                                line,
                            }),
                            Box::new(rhs),
                        ),
                        line,
                    };
                    return Ok(Stmt::Assign { name, value, line });
                }
                if p == "[" {
                    // Could be `a[i] = e`, `a[i] OP= e`, or an expression
                    // such as `tbl[i](args)`. Parse the postfix expression
                    // and inspect what follows.
                    let expr = self.parse_postfix()?;
                    if let ExprKind::Index(array, index) = expr.kind.clone() {
                        if self.eat_punct("=") {
                            let value = self.parse_expr()?;
                            return Ok(Stmt::StoreIndex {
                                array,
                                index: *index,
                                value,
                                line,
                            });
                        }
                        if let Tok::Punct(q) = self.peek().clone() {
                            if let Some(op) = Self::compound(q) {
                                self.next();
                                let rhs = self.parse_expr()?;
                                let value = Expr {
                                    kind: ExprKind::Binary(op, Box::new(expr), Box::new(rhs)),
                                    line,
                                };
                                return Ok(Stmt::StoreIndex {
                                    array,
                                    index: *index,
                                    value,
                                    line,
                                });
                            }
                        }
                    }
                    // Plain expression statement (e.g. indirect call) —
                    // continue parsing any trailing binary operators.
                    let full = self.continue_binary(expr)?;
                    return Ok(Stmt::Expr(full));
                }
            }
        }
        Ok(Stmt::Expr(self.parse_expr()?))
    }

    /// Continues binary-operator parsing after an already-parsed primary
    /// (used when statement parsing had to look ahead).
    fn continue_binary(&mut self, lhs: Expr) -> PResult<Expr> {
        // Re-run the precedence climb treating `lhs` as the deepest
        // primary: cheapest correct approach is to check for any operator
        // and rebuild.
        let mut e = lhs;
        loop {
            let mut matched = false;
            for level in (0..=9u8).rev() {
                if let Some((op, _)) = self.binop_at(level) {
                    let line = self.line();
                    self.next();
                    let rhs = self.parse_binary(level + 1)?;
                    e = Expr {
                        kind: ExprKind::Binary(op, Box::new(e), Box::new(rhs)),
                        line,
                    };
                    matched = true;
                    break;
                }
            }
            if !matched {
                return Ok(e);
            }
        }
    }

    fn parse_stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        if self.eat_kw("var") {
            let name = self.expect_ident()?;
            self.expect_punct(":")?;
            let ty = self.expect_ty()?;
            let init = if self.eat_punct("=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Var {
                name,
                ty,
                init,
                line,
            });
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then_body = self.parse_block()?;
            let else_body = if self.eat_kw("else") {
                if matches!(self.peek(), Tok::Ident(s) if s == "if") {
                    vec![self.parse_stmt()?]
                } else {
                    self.parse_block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then_body, else_body));
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = self.parse_block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_kw("do") {
            let body = self.parse_block()?;
            if !self.eat_kw("while") {
                return self.err("expected `while` after do-block");
            }
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile(body, cond));
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.parse_simple()?)
            };
            self.expect_punct(";")?;
            let cond = if matches!(self.peek(), Tok::Punct(";")) {
                Expr {
                    kind: ExprKind::Int(1),
                    line,
                }
            } else {
                self.parse_expr()?
            };
            self.expect_punct(";")?;
            let step = if matches!(self.peek(), Tok::Punct(")")) {
                None
            } else {
                Some(self.parse_simple()?)
            };
            self.expect_punct(")")?;
            let mut body = self.parse_block()?;
            // Desugar: { init; while (cond) { body; step; } }
            // NOTE: `continue` inside a desugared `for` re-tests the
            // condition without running the step, as documented in the
            // language notes; benchmarks avoid `continue` inside `for`.
            if let Some(s) = step {
                body.push(s);
            }
            let mut out = Vec::new();
            if let Some(i) = init {
                out.push(i);
            }
            out.push(Stmt::While(cond, body));
            return Ok(Stmt::If(
                Expr {
                    kind: ExprKind::Int(1),
                    line,
                },
                out,
                Vec::new(),
            ));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break(line));
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue(line));
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None, line));
            }
            let e = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e), line));
        }
        let s = self.parse_simple()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    // ----- top level ---------------------------------------------------

    fn parse_program(&mut self) -> PResult<Program> {
        let mut p = Program::default();
        loop {
            if matches!(self.peek(), Tok::Eof) {
                return Ok(p);
            }
            if self.eat_kw("const") {
                let name = self.expect_ident()?;
                self.expect_punct("=")?;
                let value = self.parse_expr()?;
                self.expect_punct(";")?;
                p.consts.push(ConstDef { name, value });
            } else if self.eat_kw("global") {
                let ty = self.expect_ty()?;
                let name = self.expect_ident()?;
                let init = if self.eat_punct("=") {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                p.globals.push(GlobalDef { name, ty, init });
            } else if self.eat_kw("array") {
                let line = self.line();
                let tname = self.expect_ident()?;
                let elem = elem_ty(&tname)
                    .map_or_else(|| self.err(format!("unknown element type `{tname}`")), Ok)?;
                let name = self.expect_ident()?;
                let init = if self.eat_punct("[") {
                    let size = self.parse_expr()?;
                    self.expect_punct("]")?;
                    ArrayInit::Size(size)
                } else {
                    self.expect_punct("=")?;
                    match self.peek().clone() {
                        Tok::Str(bytes) => {
                            self.next();
                            ArrayInit::Str(bytes)
                        }
                        Tok::Punct("[") => {
                            self.next();
                            let mut items = Vec::new();
                            if !self.eat_punct("]") {
                                loop {
                                    items.push(self.parse_expr()?);
                                    if self.eat_punct("]") {
                                        break;
                                    }
                                    self.expect_punct(",")?;
                                }
                            }
                            ArrayInit::List(items)
                        }
                        other => {
                            return self.err(format!("expected array initializer, found {other}"));
                        }
                    }
                };
                self.expect_punct(";")?;
                p.arrays.push(ArrayDef {
                    name,
                    elem,
                    init,
                    line,
                });
            } else if self.eat_kw("table") {
                let line = self.line();
                let name = self.expect_ident()?;
                self.expect_punct("=")?;
                self.expect_punct("[")?;
                let mut funcs = Vec::new();
                if !self.eat_punct("]") {
                    loop {
                        funcs.push(self.expect_ident()?);
                        if self.eat_punct("]") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                self.expect_punct(";")?;
                p.tables.push(TableDef { name, funcs, line });
            } else if self.eat_kw("fn") {
                let line = self.line();
                let name = self.expect_ident()?;
                self.expect_punct("(")?;
                let mut params = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        let pname = self.expect_ident()?;
                        self.expect_punct(":")?;
                        let ty = self.expect_ty()?;
                        params.push((pname, ty));
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                let ret = if self.eat_punct("->") {
                    Some(self.expect_ty()?)
                } else {
                    None
                };
                let body = self.parse_block()?;
                p.funcs.push(Func {
                    name,
                    params,
                    ret,
                    body,
                    line,
                });
            } else {
                return self.err(format!(
                    "expected top-level item (const/global/array/table/fn), found {}",
                    self.peek()
                ));
            }
        }
    }
}

/// Parses CLite source text into an AST.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("fn main() -> i32 { return 42; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert_eq!(p.funcs[0].ret, Some(Ty::I32));
    }

    #[test]
    fn parses_precedence() {
        let p = parse("fn f() -> i32 { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(Some(e), _) = &p.funcs[0].body[0] else {
            panic!("expected return");
        };
        // 1 + (2 * 3).
        let ExprKind::Binary(BinOp::Add, l, r) = &e.kind else {
            panic!("expected add at top: {e:?}");
        };
        assert!(matches!(l.kind, ExprKind::Int(1)));
        assert!(matches!(r.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_all_top_level_items() {
        let src = r#"
            const N = 4 * 4;
            global i32 counter = 0;
            global f64 total;
            array i32 A[N];
            array u8 msg = "hi\n";
            array i32 tbl = [1, 2, 3];
            table ops = [f, g];
            fn f(x: i32) -> i32 { return x; }
            fn g(x: i32) -> i32 { return x + 1; }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.consts.len(), 1);
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.arrays.len(), 3);
        assert_eq!(p.tables.len(), 1);
        assert_eq!(p.funcs.len(), 2);
        assert_eq!(p.tables[0].funcs, vec!["f".to_string(), "g".to_string()]);
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            fn f(n: i32) -> i32 {
                var s: i32 = 0;
                for (s = 0; n > 0; n -= 1) { s += n; }
                while (s > 100) { s -= 100; if (s == 50) { break; } else { continue; } }
                do { s += 1; } while (s < 10);
                return s;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn parses_indirect_call_and_index() {
        let src = r#"
            fn f() -> i32 {
                var x: i32 = ops[2](1, 2);
                A[x] = ops[0](x);
                A[x] += 1;
                return A[x + 1];
            }
        "#;
        let p = parse(src).unwrap();
        let body = &p.funcs[0].body;
        assert!(matches!(
            &body[0],
            Stmt::Var { init: Some(Expr { kind: ExprKind::IndirectCall(n, _, args), .. }, ), .. }
            if n == "ops" && args.len() == 2
        ));
        assert!(matches!(&body[1], Stmt::StoreIndex { .. }));
        assert!(matches!(&body[2], Stmt::StoreIndex { .. }));
    }

    #[test]
    fn parses_casts_and_intrinsics() {
        let src = "fn f(x: f64) -> i32 { return i32(sqrt(x) + f64(3)); }";
        let p = parse(src).unwrap();
        let Stmt::Return(Some(e), _) = &p.funcs[0].body[0] else {
            panic!();
        };
        assert!(matches!(e.kind, ExprKind::Cast(Ty::I32, _)));
    }

    #[test]
    fn parses_syscall() {
        let src = "fn f() { syscall(4, 1, 0, 16); }";
        let p = parse(src).unwrap();
        assert!(matches!(
            &p.funcs[0].body[0],
            Stmt::Expr(Expr { kind: ExprKind::Syscall(args), .. }) if args.len() == 4
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("fn f( { }").is_err());
        assert!(parse("const = 3;").is_err());
        assert!(parse("fn f() -> banana { }").is_err());
        assert!(parse("}").is_err());
    }

    #[test]
    fn error_carries_line() {
        let e = parse("fn f() {\n  var x: i32 = ;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn compound_assign_desugars() {
        let p = parse("fn f() { global_x <<= 2; }").unwrap();
        let Stmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!();
        };
        assert!(matches!(value.kind, ExprKind::Binary(BinOp::Shl, _, _)));
    }

    #[test]
    fn logical_ops_parse_lowest() {
        let p = parse("fn f(a: i32, b: i32) -> i32 { return a == 1 && b == 2 || a < b; }").unwrap();
        let Stmt::Return(Some(e), _) = &p.funcs[0].body[0] else {
            panic!();
        };
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::LogOr, _, _)));
    }
}
