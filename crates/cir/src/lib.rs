//! CLite: the C-like source language of the benchmark suite.
//!
//! The paper compiles C/C++ benchmarks with two toolchains — Clang to
//! native code and Emscripten to WebAssembly — and compares the results.
//! CLite plays the role of C here: a small, statically typed language with
//! exactly the constructs whose compilation strategy the paper analyses:
//!
//! - scalar types `i32 i64 u32 u64 f32 f64` (plus `i8 u8 i16 u16` array
//!   element types),
//! - statically allocated arrays in linear memory with explicit index
//!   arithmetic (the matmul case study's `C[i*NJ+j]` pattern),
//! - functions, recursion, and **function tables** (`table ops = [f, g]`,
//!   `ops[i](x)`) that compile to `call_indirect` — the source of the
//!   paper's §6.2.3 dynamic checks,
//! - loops (`for`/`while`/`do..while`), `if`/`else`, short-circuit `&&`
//!   and `||`,
//! - a `syscall(...)` primitive that both toolchains route to the Browsix
//!   kernel.
//!
//! The pipeline is: text → [`parser`] → [`ast`] → [`typecheck`] →
//! [`hir`] (typed, resolved, with a concrete linear-memory layout) →
//! consumed by `wasmperf-emcc`, `wasmperf-clanglite`, and the reference
//! [`interp`].

pub mod ast;
pub mod hir;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod typecheck;

pub use ast::Program;
pub use hir::{HFunc, HProgram, HTy};
pub use interp::{CliteHost, Interp, InterpError, NoSyscalls};
pub use parser::{parse, ParseError};
pub use typecheck::{lower, TypeError};

/// Parses and typechecks CLite source text into executable HIR.
///
/// Convenience for the common whole-pipeline path.
///
/// # Examples
///
/// ```
/// let src = "fn main() -> i32 { return 41 + 1; }";
/// let prog = wasmperf_cir::compile(src).unwrap();
/// assert_eq!(prog.funcs.len(), 1);
/// ```
pub fn compile(src: &str) -> Result<HProgram, String> {
    let ast = parse(src).map_err(|e| e.to_string())?;
    lower(&ast).map_err(|e| e.to_string())
}
