//! Type checking and lowering to HIR.
//!
//! Responsibilities:
//!
//! - evaluate `const` definitions and array sizes,
//! - fix the linear-memory layout (globals from [`GLOBAL_BASE`], arrays
//!   after them, initializer data as data segments),
//! - resolve names (locals → slots, globals/arrays → addresses, calls →
//!   function indices, tables → merged-table offsets),
//! - resolve signedness into explicit HIR operators (`u32 / u32` becomes
//!   `DivU`, `i32 >> n` becomes `ShrS`, ...),
//! - adapt integer/float literals to their context
//!   (`var x: i64 = 0;` works without a cast), and
//! - enforce the usual static rules (operand types match, conditions are
//!   `i32`, `break` only inside loops, non-void functions end in
//!   `return`, table members share one signature).

use crate::ast::{ArrayInit, BinOp, ElemTy, Expr, ExprKind, Intrinsic, Program, Stmt, Ty, UnOp};
use crate::hir::{HBinOp, HExpr, HFunc, HProgram, HSig, HStmt, HTy, HUnOp, MemObject, MemWidth};
use core::fmt;
use std::collections::HashMap;

/// First address used for program data; below this is reserved (null page
/// and runtime scratch).
pub const GLOBAL_BASE: u64 = 0x400;

/// A type-checking failure.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    /// Description.
    pub msg: String,
    /// 1-based source line (0 when not attributable).
    pub line: u32,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TypeError {}

type TResult<T> = Result<T, TypeError>;

fn err<T>(line: u32, msg: impl Into<String>) -> TResult<T> {
    Err(TypeError {
        msg: msg.into(),
        line,
    })
}

fn hty(t: Ty) -> HTy {
    match t {
        Ty::I32 | Ty::U32 => HTy::I32,
        Ty::I64 | Ty::U64 => HTy::I64,
        Ty::F32 => HTy::F32,
        Ty::F64 => HTy::F64,
    }
}

struct FuncInfo {
    idx: u32,
    params: Vec<Ty>,
    ret: Option<Ty>,
}

struct TableInfo {
    base: u32,
    sig_idx: u32,
    params: Vec<Ty>,
    ret: Option<Ty>,
    len: u32,
}

struct GlobalInfo {
    addr: u64,
    ty: Ty,
}

struct ArrayInfo {
    addr: u64,
    elem: ElemTy,
    len: u64,
}

struct Ctx {
    consts: HashMap<String, i64>,
    globals: HashMap<String, GlobalInfo>,
    arrays: HashMap<String, ArrayInfo>,
    funcs: HashMap<String, FuncInfo>,
    tables: HashMap<String, TableInfo>,
    sigs: Vec<HSig>,
}

impl Ctx {
    fn intern_sig(&mut self, sig: HSig) -> u32 {
        if let Some(i) = self.sigs.iter().position(|s| *s == sig) {
            i as u32
        } else {
            self.sigs.push(sig);
            (self.sigs.len() - 1) as u32
        }
    }
}

struct FuncCtx<'c> {
    ctx: &'c Ctx,
    locals: HashMap<String, (u32, Ty)>,
    local_tys: Vec<HTy>,
    ret: Option<Ty>,
    loop_depth: u32,
}

/// Truncates a folded value to the width of `ty` and re-extends it per
/// `ty`'s signedness, so every intermediate of a constant fold carries
/// exactly the bits a runtime computation at that type would.
fn const_norm(ty: Ty, v: i64) -> i64 {
    match ty {
        Ty::I32 => v as i32 as i64,
        Ty::U32 => v as u32 as i64,
        // Floats only reach const folding through integral constant
        // expressions; fold those at i64 like `const` definitions.
        Ty::I64 | Ty::U64 | Ty::F32 | Ty::F64 => v,
    }
}

/// Evaluates a constant integer expression (literals, consts, arithmetic)
/// **at type `ty`** — the same signed/width rules [`Interp`]'s `binop`
/// applies at run time, so a constant-folded initializer can never
/// disagree with the identical expression computed by the program.
///
/// Signedness matters for `Div`/`Rem`/`Shr`; width matters for wrapping
/// and for shift-count masking; and `i32::MIN / -1` (resp. `i64::MIN /
/// -1`), which traps at run time, is a compile error here. Untyped
/// contexts (`const` definitions, array sizes) fold at `i64`.
///
/// [`Interp`]: crate::interp::Interp
fn const_eval(e: &Expr, consts: &HashMap<String, i64>, ty: Ty) -> TResult<i64> {
    let wide = !matches!(ty, Ty::I32 | Ty::U32);
    let unsigned = ty.is_unsigned();
    match &e.kind {
        ExprKind::Int(v) => Ok(const_norm(ty, *v)),
        ExprKind::Var(name) => consts
            .get(name)
            .copied()
            .map(|v| const_norm(ty, v))
            .ok_or(())
            .or_else(|()| err(e.line, format!("`{name}` is not a constant"))),
        ExprKind::Unary(UnOp::Neg, inner) => Ok(const_norm(
            ty,
            const_eval(inner, consts, ty)?.wrapping_neg(),
        )),
        ExprKind::Unary(UnOp::BitNot, inner) => Ok(const_norm(ty, !const_eval(inner, consts, ty)?)),
        ExprKind::Binary(op, l, r) => {
            let a = const_eval(l, consts, ty)?;
            let b = const_eval(r, consts, ty)?;
            let v = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return err(e.line, "constant division by zero");
                    }
                    if unsigned {
                        if wide {
                            ((a as u64) / (b as u64)) as i64
                        } else {
                            ((a as u32) / (b as u32)) as i64
                        }
                    } else {
                        let min = if wide { i64::MIN } else { i32::MIN as i64 };
                        if a == min && b == -1 {
                            return err(e.line, "constant division overflows");
                        }
                        a / b
                    }
                }
                BinOp::Rem => {
                    if b == 0 {
                        return err(e.line, "constant modulo by zero");
                    }
                    if unsigned {
                        if wide {
                            ((a as u64) % (b as u64)) as i64
                        } else {
                            ((a as u32) % (b as u32)) as i64
                        }
                    } else {
                        // `MIN % -1` is 0, not a trap — match wrapping_rem.
                        a.wrapping_rem(b)
                    }
                }
                BinOp::Shl => {
                    // Shift counts mask modulo the type's width, as at
                    // run time.
                    if wide {
                        a.wrapping_shl(b as u32)
                    } else {
                        (a as i32).wrapping_shl(b as u32) as i64
                    }
                }
                BinOp::Shr => match (unsigned, wide) {
                    (true, true) => ((a as u64).wrapping_shr(b as u32)) as i64,
                    (true, false) => ((a as u32).wrapping_shr(b as u32)) as i64,
                    (false, true) => a.wrapping_shr(b as u32),
                    (false, false) => ((a as i32).wrapping_shr(b as u32)) as i64,
                },
                BinOp::BitAnd => a & b,
                BinOp::BitOr => a | b,
                BinOp::BitXor => a ^ b,
                _ => return err(e.line, "operator not allowed in constant expression"),
            };
            Ok(const_norm(ty, v))
        }
        _ => err(e.line, "expression is not constant"),
    }
}

fn elem_width(e: ElemTy) -> MemWidth {
    match e.bytes() {
        1 => MemWidth::W8,
        2 => MemWidth::W16,
        4 => MemWidth::W32,
        _ => MemWidth::W64,
    }
}

fn elem_signed(e: ElemTy) -> bool {
    matches!(e, ElemTy::I8 | ElemTy::I16) || matches!(e, ElemTy::Full(t) if !t.is_unsigned())
}

/// Bit pattern of a literal of type `ty`.
fn const_bits(ty: Ty, int: Option<i64>, float: Option<f64>) -> u64 {
    match ty {
        Ty::I32 | Ty::U32 => {
            let v = int.unwrap_or_else(|| float.expect("value") as i64);
            v as i32 as u32 as u64
        }
        Ty::I64 | Ty::U64 => {
            let v = int.unwrap_or_else(|| float.expect("value") as i64);
            v as u64
        }
        Ty::F32 => {
            let v = float.unwrap_or_else(|| int.expect("value") as f64);
            (v as f32).to_bits() as u64
        }
        Ty::F64 => {
            let v = float.unwrap_or_else(|| int.expect("value") as f64);
            v.to_bits()
        }
    }
}

impl<'c> FuncCtx<'c> {
    fn lower_cond(&mut self, e: &Expr) -> TResult<HExpr> {
        let (h, ty) = self.lower_expr(e, Some(Ty::I32))?;
        if !matches!(ty, Ty::I32 | Ty::U32) {
            return err(e.line, format!("condition must be i32, got {ty}"));
        }
        Ok(h)
    }

    /// Lowers an expression, optionally adapting literals to `expected`.
    /// Returns the HIR expression and its source-level type.
    fn lower_expr(&mut self, e: &Expr, expected: Option<Ty>) -> TResult<(HExpr, Ty)> {
        let line = e.line;
        match &e.kind {
            ExprKind::Int(v) => {
                let ty = expected.unwrap_or(Ty::I32);
                Ok((
                    HExpr::Const {
                        ty: hty(ty),
                        bits: const_bits(ty, Some(*v), None),
                    },
                    ty,
                ))
            }
            ExprKind::Float(v) => {
                let ty = match expected {
                    Some(t @ (Ty::F32 | Ty::F64)) => t,
                    _ => Ty::F64,
                };
                Ok((
                    HExpr::Const {
                        ty: hty(ty),
                        bits: const_bits(ty, None, Some(*v)),
                    },
                    ty,
                ))
            }
            ExprKind::Var(name) => {
                if let Some((idx, ty)) = self.locals.get(name) {
                    return Ok((
                        HExpr::Local {
                            idx: *idx,
                            ty: hty(*ty),
                        },
                        *ty,
                    ));
                }
                if let Some(&v) = self.ctx.consts.get(name) {
                    let ty = expected.unwrap_or(Ty::I32);
                    if !ty.is_int() {
                        return Ok((
                            HExpr::Const {
                                ty: hty(ty),
                                bits: const_bits(ty, Some(v), None),
                            },
                            ty,
                        ));
                    }
                    return Ok((
                        HExpr::Const {
                            ty: hty(ty),
                            bits: const_bits(ty, Some(v), None),
                        },
                        ty,
                    ));
                }
                if let Some(g) = self.ctx.globals.get(name) {
                    return Ok((
                        HExpr::Load {
                            ty: hty(g.ty),
                            width: MemWidth::of(hty(g.ty)),
                            signed: true,
                            addr: Box::new(HExpr::Const {
                                ty: HTy::I32,
                                bits: g.addr,
                            }),
                        },
                        g.ty,
                    ));
                }
                if let Some(a) = self.ctx.arrays.get(name) {
                    // Bare array name evaluates to its base address (like C
                    // array decay) — useful for syscalls taking buffers.
                    let _ = a;
                    return Ok((
                        HExpr::Const {
                            ty: HTy::I32,
                            bits: a.addr,
                        },
                        Ty::U32,
                    ));
                }
                err(line, format!("unknown variable `{name}`"))
            }
            ExprKind::Unary(op, inner) => {
                let (h, ty) = self.lower_expr(inner, expected)?;
                match op {
                    UnOp::Neg => Ok((
                        HExpr::Unary {
                            op: HUnOp::Neg,
                            ty: hty(ty),
                            arg: Box::new(h),
                        },
                        ty,
                    )),
                    UnOp::Not => {
                        if !ty.is_int() {
                            return err(line, "`!` requires an integer operand");
                        }
                        Ok((
                            HExpr::Unary {
                                op: HUnOp::Eqz,
                                ty: hty(ty),
                                arg: Box::new(h),
                            },
                            Ty::I32,
                        ))
                    }
                    UnOp::BitNot => {
                        if !ty.is_int() {
                            return err(line, "`~` requires an integer operand");
                        }
                        Ok((
                            HExpr::Unary {
                                op: HUnOp::BitNot,
                                ty: hty(ty),
                                arg: Box::new(h),
                            },
                            ty,
                        ))
                    }
                }
            }
            ExprKind::Binary(BinOp::LogAnd, l, r) | ExprKind::Binary(BinOp::LogOr, l, r) => {
                let is_and = matches!(e.kind, ExprKind::Binary(BinOp::LogAnd, _, _));
                let lh = self.lower_cond(l)?;
                let rh = self.lower_cond(r)?;
                Ok((
                    HExpr::ShortCircuit {
                        is_and,
                        lhs: Box::new(lh),
                        rhs: Box::new(rh),
                    },
                    Ty::I32,
                ))
            }
            ExprKind::Binary(op, l, r) => {
                // Literal operands adapt to the non-literal side.
                let l_lit = matches!(l.kind, ExprKind::Int(_) | ExprKind::Float(_));
                let r_lit = matches!(r.kind, ExprKind::Int(_) | ExprKind::Float(_));
                let operand_expected = if op.is_comparison() { None } else { expected };
                let (lh, rh, ty) = if l_lit && !r_lit {
                    let (rh, rty) = self.lower_expr(r, operand_expected)?;
                    let (lh, lty) = self.lower_expr(l, Some(rty))?;
                    // A literal only adapts within its kind: a float
                    // literal offered an integer context stays f64, and
                    // letting it through would type the operator as an
                    // integer op over a float constant — ill-typed HIR
                    // that miscompiles downstream.
                    if lty != rty {
                        return err(
                            line,
                            format!("operand types differ: {lty} vs {rty} (insert a cast)"),
                        );
                    }
                    (lh, rh, rty)
                } else {
                    let (lh, lty) = self.lower_expr(l, operand_expected)?;
                    let (rh, rty) = self.lower_expr(r, Some(lty))?;
                    if lty != rty {
                        return err(
                            line,
                            format!("operand types differ: {lty} vs {rty} (insert a cast)"),
                        );
                    }
                    (lh, rh, lty)
                };
                let unsigned = ty.is_unsigned();
                let float = !ty.is_int();
                let hop = match op {
                    BinOp::Add => HBinOp::Add,
                    BinOp::Sub => HBinOp::Sub,
                    BinOp::Mul => HBinOp::Mul,
                    BinOp::Div => {
                        if float || !unsigned {
                            HBinOp::DivS
                        } else {
                            HBinOp::DivU
                        }
                    }
                    BinOp::Rem => {
                        if float {
                            return err(line, "`%` requires integer operands");
                        } else if unsigned {
                            HBinOp::RemU
                        } else {
                            HBinOp::RemS
                        }
                    }
                    BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr
                        if float =>
                    {
                        return err(line, "bitwise operators require integer operands");
                    }
                    BinOp::BitAnd => HBinOp::And,
                    BinOp::BitOr => HBinOp::Or,
                    BinOp::BitXor => HBinOp::Xor,
                    BinOp::Shl => HBinOp::Shl,
                    BinOp::Shr => {
                        if unsigned {
                            HBinOp::ShrU
                        } else {
                            HBinOp::ShrS
                        }
                    }
                    BinOp::Eq => HBinOp::Eq,
                    BinOp::Ne => HBinOp::Ne,
                    BinOp::Lt => {
                        if float || !unsigned {
                            HBinOp::LtS
                        } else {
                            HBinOp::LtU
                        }
                    }
                    BinOp::Le => {
                        if float || !unsigned {
                            HBinOp::LeS
                        } else {
                            HBinOp::LeU
                        }
                    }
                    BinOp::Gt => {
                        if float || !unsigned {
                            HBinOp::GtS
                        } else {
                            HBinOp::GtU
                        }
                    }
                    BinOp::Ge => {
                        if float || !unsigned {
                            HBinOp::GeS
                        } else {
                            HBinOp::GeU
                        }
                    }
                    BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
                };
                let result_ty = if hop.is_cmp() { Ty::I32 } else { ty };
                Ok((
                    HExpr::Binary {
                        op: hop,
                        ty: hty(ty),
                        lhs: Box::new(lh),
                        rhs: Box::new(rh),
                    },
                    result_ty,
                ))
            }
            ExprKind::Index(name, idx) => {
                let a = self
                    .ctx
                    .arrays
                    .get(name)
                    .ok_or(())
                    .or_else(|()| err(line, format!("unknown array `{name}`")))?;
                let (addr, _) = self.element_addr(a, idx)?;
                Ok((
                    HExpr::Load {
                        ty: hty(a.elem.load_ty()),
                        width: elem_width(a.elem),
                        signed: elem_signed(a.elem),
                        addr: Box::new(addr),
                    },
                    a.elem.load_ty(),
                ))
            }
            ExprKind::Call(name, args) => {
                let f = self
                    .ctx
                    .funcs
                    .get(name)
                    .ok_or(())
                    .or_else(|()| err(line, format!("unknown function `{name}`")))?;
                if args.len() != f.params.len() {
                    return err(
                        line,
                        format!(
                            "`{name}` takes {} arguments, {} given",
                            f.params.len(),
                            args.len()
                        ),
                    );
                }
                let params = f.params.clone();
                let (idx, ret) = (f.idx, f.ret);
                let mut hargs = Vec::with_capacity(args.len());
                for (a, p) in args.iter().zip(params.iter()) {
                    let (h, ty) = self.lower_expr(a, Some(*p))?;
                    if ty != *p {
                        return err(a.line, format!("argument type {ty}, expected {p}"));
                    }
                    hargs.push(h);
                }
                let ret_ty = ret;
                if ret_ty.is_none() && expected.is_some() {
                    return err(line, format!("`{name}` returns no value"));
                }
                Ok((
                    HExpr::Call {
                        func: idx,
                        ret: ret_ty.map(hty),
                        args: hargs,
                    },
                    ret_ty.unwrap_or(Ty::I32),
                ))
            }
            ExprKind::IndirectCall(tname, idx, args) => {
                let t = self
                    .ctx
                    .tables
                    .get(tname)
                    .ok_or(())
                    .or_else(|()| err(line, format!("unknown table `{tname}`")))?;
                if args.len() != t.params.len() {
                    return err(
                        line,
                        format!(
                            "table `{tname}` functions take {} arguments, {} given",
                            t.params.len(),
                            args.len()
                        ),
                    );
                }
                let (base, sig_idx, params, ret) = (t.base, t.sig_idx, t.params.clone(), t.ret);
                let (ih, ity) = self.lower_expr(idx, Some(Ty::I32))?;
                if !matches!(ity, Ty::I32 | Ty::U32) {
                    return err(line, "table index must be i32");
                }
                let mut hargs = Vec::with_capacity(args.len());
                for (a, p) in args.iter().zip(params.iter()) {
                    let (h, ty) = self.lower_expr(a, Some(*p))?;
                    if ty != *p {
                        return err(a.line, format!("argument type {ty}, expected {p}"));
                    }
                    hargs.push(h);
                }
                Ok((
                    HExpr::CallIndirect {
                        sig: sig_idx,
                        table_base: base,
                        index: Box::new(ih),
                        ret: ret.map(hty),
                        args: hargs,
                    },
                    ret.unwrap_or(Ty::I32),
                ))
            }
            ExprKind::Cast(to, inner) => {
                let (h, from) = self.lower_expr(inner, None)?;
                if from == *to {
                    return Ok((h, *to));
                }
                let (hf, ht) = (hty(from), hty(*to));
                if hf == ht {
                    // Same machine type (sign reinterpret): no-op.
                    return Ok((h, *to));
                }
                // Int-to-int and int-to-float take the source's
                // signedness; float-to-int the destination's.
                let signed = if from.is_int() {
                    !from.is_unsigned()
                } else if to.is_int() {
                    !to.is_unsigned()
                } else {
                    true
                };
                Ok((
                    HExpr::Cast {
                        from: hf,
                        to: ht,
                        signed,
                        arg: Box::new(h),
                    },
                    *to,
                ))
            }
            ExprKind::Intrinsic(i, args) => self.lower_intrinsic(*i, args, line, expected),
            ExprKind::Syscall(args) => {
                let mut hargs = Vec::with_capacity(args.len());
                for a in args {
                    let (h, ty) = self.lower_expr(a, Some(Ty::I32))?;
                    if !matches!(ty, Ty::I32 | Ty::U32) {
                        return err(a.line, format!("syscall arguments must be i32, got {ty}"));
                    }
                    hargs.push(h);
                }
                Ok((HExpr::Syscall { args: hargs }, Ty::I32))
            }
        }
    }

    fn lower_intrinsic(
        &mut self,
        i: Intrinsic,
        args: &[Expr],
        line: u32,
        expected: Option<Ty>,
    ) -> TResult<(HExpr, Ty)> {
        let arity = match i {
            Intrinsic::Min | Intrinsic::Max | Intrinsic::Rotl | Intrinsic::Rotr => 2,
            _ => 1,
        };
        if args.len() != arity {
            return err(line, format!("intrinsic takes {arity} argument(s)"));
        }
        match i {
            Intrinsic::Sqrt
            | Intrinsic::Abs
            | Intrinsic::Floor
            | Intrinsic::Ceil
            | Intrinsic::Trunc
            | Intrinsic::Nearest => {
                let want = match expected {
                    Some(t @ (Ty::F32 | Ty::F64)) => Some(t),
                    _ => Some(Ty::F64),
                };
                let (h, ty) = self.lower_expr(&args[0], want)?;
                if ty.is_int() {
                    return err(line, "float intrinsic requires a float argument");
                }
                let op = match i {
                    Intrinsic::Sqrt => HUnOp::Sqrt,
                    Intrinsic::Abs => HUnOp::Abs,
                    Intrinsic::Floor => HUnOp::Floor,
                    Intrinsic::Ceil => HUnOp::Ceil,
                    Intrinsic::Trunc => HUnOp::TruncF,
                    _ => HUnOp::Nearest,
                };
                Ok((
                    HExpr::Unary {
                        op,
                        ty: hty(ty),
                        arg: Box::new(h),
                    },
                    ty,
                ))
            }
            Intrinsic::Min | Intrinsic::Max => {
                let (lh, lty) = self.lower_expr(&args[0], expected)?;
                let (rh, rty) = self.lower_expr(&args[1], Some(lty))?;
                if lty != rty {
                    return err(
                        line,
                        format!("min/max operand types differ: {lty} vs {rty}"),
                    );
                }
                if lty.is_int() {
                    return err(line, "min/max require float arguments");
                }
                Ok((
                    HExpr::Binary {
                        op: if i == Intrinsic::Min {
                            HBinOp::FMin
                        } else {
                            HBinOp::FMax
                        },
                        ty: hty(lty),
                        lhs: Box::new(lh),
                        rhs: Box::new(rh),
                    },
                    lty,
                ))
            }
            Intrinsic::Clz | Intrinsic::Ctz | Intrinsic::Popcnt => {
                let (h, ty) = self.lower_expr(&args[0], expected)?;
                if !ty.is_int() {
                    return err(line, "bit intrinsics require integer arguments");
                }
                let op = match i {
                    Intrinsic::Clz => HUnOp::Clz,
                    Intrinsic::Ctz => HUnOp::Ctz,
                    _ => HUnOp::Popcnt,
                };
                Ok((
                    HExpr::Unary {
                        op,
                        ty: hty(ty),
                        arg: Box::new(h),
                    },
                    ty,
                ))
            }
            Intrinsic::Rotl | Intrinsic::Rotr => {
                let (lh, lty) = self.lower_expr(&args[0], expected)?;
                let (rh, rty) = self.lower_expr(&args[1], Some(lty))?;
                if !lty.is_int() || lty != rty {
                    return err(line, "rotl/rotr require matching integer arguments");
                }
                Ok((
                    HExpr::Binary {
                        op: if i == Intrinsic::Rotl {
                            HBinOp::Rotl
                        } else {
                            HBinOp::Rotr
                        },
                        ty: hty(lty),
                        lhs: Box::new(lh),
                        rhs: Box::new(rh),
                    },
                    lty,
                ))
            }
        }
    }

    /// Builds the byte-address expression for `array[index]`, in the
    /// canonical `base + index*scale` shape backends pattern-match.
    fn element_addr(&mut self, a: &ArrayInfo, idx: &Expr) -> TResult<(HExpr, ElemTy)> {
        let elem = a.elem;
        let base = a.addr;
        let (ih, ity) = self.lower_expr(idx, Some(Ty::I32))?;
        if !matches!(ity, Ty::I32 | Ty::U32) {
            return err(idx.line, format!("array index must be i32, got {ity}"));
        }
        let scaled = if elem.bytes() == 1 {
            ih
        } else {
            HExpr::Binary {
                op: HBinOp::Mul,
                ty: HTy::I32,
                lhs: Box::new(ih),
                rhs: Box::new(HExpr::Const {
                    ty: HTy::I32,
                    bits: elem.bytes() as u64,
                }),
            }
        };
        let addr = HExpr::Binary {
            op: HBinOp::Add,
            ty: HTy::I32,
            lhs: Box::new(scaled),
            rhs: Box::new(HExpr::Const {
                ty: HTy::I32,
                bits: base,
            }),
        };
        Ok((addr, elem))
    }

    fn lower_stmts(&mut self, stmts: &[Stmt], out: &mut Vec<HStmt>) -> TResult<()> {
        for s in stmts {
            self.lower_stmt(s, out)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt, out: &mut Vec<HStmt>) -> TResult<()> {
        match s {
            Stmt::Var {
                name,
                ty,
                init,
                line,
            } => {
                if self.locals.contains_key(name) {
                    return err(*line, format!("duplicate local `{name}`"));
                }
                let idx = self.local_tys.len() as u32;
                self.local_tys.push(hty(*ty));
                self.locals.insert(name.clone(), (idx, *ty));
                if let Some(e) = init {
                    let (h, ety) = self.lower_expr(e, Some(*ty))?;
                    if ety != *ty {
                        return err(*line, format!("initializer has type {ety}, expected {ty}"));
                    }
                    out.push(HStmt::SetLocal { idx, value: h });
                }
                Ok(())
            }
            Stmt::Assign { name, value, line } => {
                if let Some((idx, ty)) = self.locals.get(name).copied() {
                    let (h, ety) = self.lower_expr(value, Some(ty))?;
                    if ety != ty {
                        return err(*line, format!("assigning {ety} to {ty} local"));
                    }
                    out.push(HStmt::SetLocal { idx, value: h });
                    return Ok(());
                }
                if let Some(g) = self.ctx.globals.get(name) {
                    let (addr, ty) = (g.addr, g.ty);
                    let (h, ety) = self.lower_expr(value, Some(ty))?;
                    if ety != ty {
                        return err(*line, format!("assigning {ety} to {ty} global"));
                    }
                    out.push(HStmt::Store {
                        ty: hty(ty),
                        width: MemWidth::of(hty(ty)),
                        addr: HExpr::Const {
                            ty: HTy::I32,
                            bits: addr,
                        },
                        value: h,
                    });
                    return Ok(());
                }
                err(*line, format!("unknown variable `{name}`"))
            }
            Stmt::StoreIndex {
                array,
                index,
                value,
                line,
            } => {
                let a = self
                    .ctx
                    .arrays
                    .get(array)
                    .ok_or(())
                    .or_else(|()| err(*line, format!("unknown array `{array}`")))?;
                let info = ArrayInfo {
                    addr: a.addr,
                    elem: a.elem,
                    len: a.len,
                };
                let (addr, elem) = self.element_addr(&info, index)?;
                let want = elem.load_ty();
                let (h, ety) = self.lower_expr(value, Some(want))?;
                if ety != want && hty(ety) != hty(want) {
                    return err(*line, format!("storing {ety} into {} array", elem));
                }
                out.push(HStmt::Store {
                    ty: hty(want),
                    width: elem_width(elem),
                    addr,
                    value: h,
                });
                Ok(())
            }
            Stmt::If(cond, then_s, else_s) => {
                // The parser's `for` desugar wraps in `if (1) ...`.
                if matches!(cond.kind, ExprKind::Int(1)) && else_s.is_empty() {
                    return self.lower_stmts(then_s, out);
                }
                let c = self.lower_cond(cond)?;
                let mut t = Vec::new();
                self.lower_stmts(then_s, &mut t)?;
                let mut e2 = Vec::new();
                self.lower_stmts(else_s, &mut e2)?;
                out.push(HStmt::If {
                    cond: c,
                    then_body: t,
                    else_body: e2,
                });
                Ok(())
            }
            Stmt::While(cond, body) => {
                let c = self.lower_cond(cond)?;
                self.loop_depth += 1;
                let mut b = Vec::new();
                self.lower_stmts(body, &mut b)?;
                self.loop_depth -= 1;
                out.push(HStmt::While { cond: c, body: b });
                Ok(())
            }
            Stmt::DoWhile(body, cond) => {
                self.loop_depth += 1;
                let mut b = Vec::new();
                self.lower_stmts(body, &mut b)?;
                self.loop_depth -= 1;
                let c = self.lower_cond(cond)?;
                out.push(HStmt::DoWhile { body: b, cond: c });
                Ok(())
            }
            Stmt::Break(line) => {
                if self.loop_depth == 0 {
                    return err(*line, "`break` outside a loop");
                }
                out.push(HStmt::Break);
                Ok(())
            }
            Stmt::Continue(line) => {
                if self.loop_depth == 0 {
                    return err(*line, "`continue` outside a loop");
                }
                out.push(HStmt::Continue);
                Ok(())
            }
            Stmt::Return(val, line) => {
                match (val, self.ret) {
                    (None, None) => out.push(HStmt::Return(None)),
                    (Some(e), Some(want)) => {
                        let (h, ty) = self.lower_expr(e, Some(want))?;
                        if ty != want && hty(ty) != hty(want) {
                            return err(*line, format!("returning {ty}, expected {want}"));
                        }
                        out.push(HStmt::Return(Some(h)));
                    }
                    (None, Some(t)) => return err(*line, format!("must return a {t}")),
                    (Some(_), None) => return err(*line, "void function returns a value"),
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                let (h, _) = self.lower_expr(e, None)?;
                out.push(HStmt::Expr(h));
                Ok(())
            }
        }
    }
}

impl BinOp {
    fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Checks whether a statement list definitely returns on all paths.
fn always_returns(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Return(..) => true,
        Stmt::If(_, t, e) => !e.is_empty() && always_returns(t) && always_returns(e),
        _ => false,
    })
}

/// Type-checks and lowers a parsed program.
pub fn lower(p: &Program) -> Result<HProgram, TypeError> {
    let mut ctx = Ctx {
        consts: HashMap::new(),
        globals: HashMap::new(),
        arrays: HashMap::new(),
        funcs: HashMap::new(),
        tables: HashMap::new(),
        sigs: Vec::new(),
    };

    for c in &p.consts {
        // `const` definitions are untyped; they fold at signed i64 and
        // adapt to their use sites like integer literals.
        let v = const_eval(&c.value, &ctx.consts, Ty::I64)?;
        if ctx.consts.insert(c.name.clone(), v).is_some() {
            return err(0, format!("duplicate const `{}`", c.name));
        }
    }

    // Layout: globals then arrays, starting at GLOBAL_BASE.
    let mut addr = GLOBAL_BASE;
    let mut objects = Vec::new();
    let mut data: Vec<(u64, Vec<u8>)> = Vec::new();

    for g in &p.globals {
        if ctx.globals.contains_key(&g.name) {
            return err(0, format!("duplicate global `{}`", g.name));
        }
        ctx.globals
            .insert(g.name.clone(), GlobalInfo { addr, ty: g.ty });
        if let Some(init) = &g.init {
            let bits = match init.kind {
                ExprKind::Float(f) => const_bits(g.ty, None, Some(f)),
                _ => const_bits(g.ty, Some(const_eval(init, &ctx.consts, g.ty)?), None),
            };
            let bytes = if g.ty.is_wide() {
                bits.to_le_bytes().to_vec()
            } else {
                (bits as u32).to_le_bytes().to_vec()
            };
            if bytes.iter().any(|&b| b != 0) {
                data.push((addr, bytes));
            }
        }
        objects.push(MemObject {
            name: g.name.clone(),
            addr,
            size: 8,
            elem: ElemTy::Full(g.ty),
        });
        addr += 8;
    }

    for a in &p.arrays {
        if ctx.arrays.contains_key(&a.name) {
            return err(a.line, format!("duplicate array `{}`", a.name));
        }
        addr = (addr + 15) & !15;
        let (len, init_bytes): (u64, Option<Vec<u8>>) = match &a.init {
            ArrayInit::Size(e) => {
                let n = const_eval(e, &ctx.consts, Ty::I64)?;
                if n <= 0 {
                    return err(a.line, format!("array `{}` has non-positive size", a.name));
                }
                (n as u64, None)
            }
            ArrayInit::List(items) => {
                let mut bytes = Vec::new();
                for item in items {
                    match a.elem {
                        ElemTy::Full(Ty::F32) => {
                            let v = match item.kind {
                                ExprKind::Float(f) => f,
                                _ => const_eval(item, &ctx.consts, Ty::I64)? as f64,
                            };
                            bytes.extend_from_slice(&(v as f32).to_le_bytes());
                        }
                        ElemTy::Full(Ty::F64) => {
                            let v = match item.kind {
                                ExprKind::Float(f) => f,
                                _ => const_eval(item, &ctx.consts, Ty::I64)? as f64,
                            };
                            bytes.extend_from_slice(&v.to_le_bytes());
                        }
                        _ => {
                            // Sub-word elements fold at i32 (integer
                            // promotion); full-width ones at their type.
                            let cty = match a.elem {
                                ElemTy::Full(t) => t,
                                _ => Ty::I32,
                            };
                            let v = const_eval(item, &ctx.consts, cty)?;
                            let n = a.elem.bytes() as usize;
                            bytes.extend_from_slice(&v.to_le_bytes()[..n]);
                        }
                    }
                }
                (items.len() as u64, Some(bytes))
            }
            ArrayInit::Str(s) => {
                if a.elem.bytes() != 1 {
                    return err(a.line, "string initializer requires a byte array");
                }
                (s.len() as u64, Some(s.clone()))
            }
        };
        let size = len * a.elem.bytes() as u64;
        if let Some(bytes) = init_bytes {
            data.push((addr, bytes));
        }
        ctx.arrays.insert(
            a.name.clone(),
            ArrayInfo {
                addr,
                elem: a.elem,
                len,
            },
        );
        objects.push(MemObject {
            name: a.name.clone(),
            addr,
            size,
            elem: a.elem,
        });
        addr += size;
    }

    // Function indices and signatures.
    for (i, f) in p.funcs.iter().enumerate() {
        if ctx.funcs.contains_key(&f.name) {
            return err(f.line, format!("duplicate function `{}`", f.name));
        }
        ctx.funcs.insert(
            f.name.clone(),
            FuncInfo {
                idx: i as u32,
                params: f.params.iter().map(|(_, t)| *t).collect(),
                ret: f.ret,
            },
        );
    }

    // Merge tables, checking signature uniformity.
    let mut merged_table: Vec<u32> = Vec::new();
    for t in &p.tables {
        if ctx.tables.contains_key(&t.name) {
            return err(t.line, format!("duplicate table `{}`", t.name));
        }
        if t.funcs.is_empty() {
            return err(t.line, format!("table `{}` is empty", t.name));
        }
        let base = merged_table.len() as u32;
        let mut sig: Option<(Vec<Ty>, Option<Ty>)> = None;
        for fname in &t.funcs {
            let f = ctx
                .funcs
                .get(fname)
                .ok_or(())
                .or_else(|()| err(t.line, format!("table references unknown `{fname}`")))?;
            match &sig {
                None => sig = Some((f.params.clone(), f.ret)),
                Some((params, ret)) => {
                    if *params != f.params || *ret != f.ret {
                        return err(
                            t.line,
                            format!("table `{}` members have mixed signatures", t.name),
                        );
                    }
                }
            }
            merged_table.push(f.idx);
        }
        let (params, ret) = sig.expect("non-empty table");
        let hsig = HSig {
            params: params.iter().map(|t| hty(*t)).collect(),
            ret: ret.map(hty),
        };
        let sig_idx = ctx.intern_sig(hsig);
        ctx.tables.insert(
            t.name.clone(),
            TableInfo {
                base,
                sig_idx,
                params,
                ret,
                len: t.funcs.len() as u32,
            },
        );
    }

    // Intern every function's signature too (call_indirect type checks
    // compare against these).
    let mut func_sigs = Vec::with_capacity(p.funcs.len());
    for f in &p.funcs {
        let hsig = HSig {
            params: f.params.iter().map(|(_, t)| hty(*t)).collect(),
            ret: f.ret.map(hty),
        };
        func_sigs.push(ctx.intern_sig(hsig));
    }

    // Lower function bodies.
    let mut funcs = Vec::with_capacity(p.funcs.len());
    for f in &p.funcs {
        let mut fcx = FuncCtx {
            ctx: &ctx,
            locals: HashMap::new(),
            local_tys: Vec::new(),
            ret: f.ret,
            loop_depth: 0,
        };
        for (i, (name, ty)) in f.params.iter().enumerate() {
            if fcx.locals.insert(name.clone(), (i as u32, *ty)).is_some() {
                return err(f.line, format!("duplicate parameter `{name}`"));
            }
            fcx.local_tys.push(hty(*ty));
        }
        let mut body = Vec::new();
        fcx.lower_stmts(&f.body, &mut body)?;
        if f.ret.is_some() && !always_returns(&f.body) {
            return err(
                f.line,
                format!(
                    "function `{}` may fall off the end without returning",
                    f.name
                ),
            );
        }
        funcs.push(HFunc {
            name: f.name.clone(),
            n_params: f.params.len() as u32,
            locals: fcx.local_tys,
            ret: f.ret.map(hty),
            body,
            line: f.line,
        });
    }

    // Memory size: data end plus heap slack, rounded to 64 KiB pages.
    let mem = (addr + 0x20000 + 0xffff) & !0xffff;

    // The table-info `len` field exists for future bounds diagnostics.
    let _ = ctx.tables.values().map(|t| t.len).sum::<u32>();

    Ok(HProgram {
        funcs,
        sigs: ctx.sigs,
        func_sigs,
        table: merged_table,
        memory_size: mem,
        data,
        objects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Result<HProgram, TypeError> {
        lower(&parse(src).expect("parses"))
    }

    #[test]
    fn lowers_minimal() {
        let h = lower_src("fn main() -> i32 { return 42; }").unwrap();
        assert_eq!(h.funcs.len(), 1);
        assert_eq!(h.funcs[0].ret, Some(HTy::I32));
        assert!(matches!(h.funcs[0].body[0], HStmt::Return(Some(_))));
    }

    #[test]
    fn signedness_resolved() {
        let h = lower_src(
            "fn f(a: u32, b: u32, c: i32, d: i32) -> i32 {
                var x: u32 = a / b;
                var y: i32 = c / d;
                return i32(x) + y;
            }",
        )
        .unwrap();
        let body = &h.funcs[0].body;
        let HStmt::SetLocal {
            value: HExpr::Binary { op: op1, .. },
            ..
        } = &body[0]
        else {
            panic!("{body:?}");
        };
        let HStmt::SetLocal {
            value: HExpr::Binary { op: op2, .. },
            ..
        } = &body[1]
        else {
            panic!();
        };
        assert_eq!(*op1, HBinOp::DivU);
        assert_eq!(*op2, HBinOp::DivS);
    }

    #[test]
    fn float_literal_never_adapts_to_int_context() {
        // A literal only adapts within its numeric kind: a float literal
        // offered an integer context must be rejected, not silently typed
        // as an integer op over a float constant (which miscompiled to
        // invalid wasm downstream).
        let err = lower_src("fn f(p: i32) -> i32 { return (0.0 + (~p)); }").unwrap_err();
        assert!(
            err.msg.contains("operand types differ"),
            "unexpected error: {}",
            err.msg
        );
    }

    #[test]
    fn literal_adapts_to_context() {
        let h = lower_src("fn f() -> i64 { var x: i64 = 5; return x + 1; }").unwrap();
        let HStmt::SetLocal {
            value: HExpr::Const { ty, .. },
            ..
        } = &h.funcs[0].body[0]
        else {
            panic!();
        };
        assert_eq!(*ty, HTy::I64);
    }

    #[test]
    fn mixed_types_require_cast() {
        let e = lower_src("fn f(a: i32, b: i64) -> i32 { return a + b; }").unwrap_err();
        assert!(e.msg.contains("differ"), "{e}");
        assert!(lower_src("fn f(a: i32, b: i64) -> i32 { return a + i32(b); }").is_ok());
    }

    #[test]
    fn globals_become_memory_accesses() {
        let h = lower_src(
            "global i32 g = 7;
             fn f() -> i32 { g = g + 1; return g; }",
        )
        .unwrap();
        let obj = h.object("g").unwrap();
        assert_eq!(obj.addr, GLOBAL_BASE);
        // Initializer became a data segment.
        assert_eq!(h.data[0].0, GLOBAL_BASE);
        assert_eq!(&h.data[0].1[..4], &7u32.to_le_bytes());
        let HStmt::Store {
            addr: HExpr::Const { bits, .. },
            ..
        } = &h.funcs[0].body[0]
        else {
            panic!();
        };
        assert_eq!(*bits, GLOBAL_BASE);
    }

    #[test]
    fn array_layout_and_indexing() {
        let h = lower_src(
            "const N = 10;
             array i32 A[N];
             array f64 B[4];
             fn f(i: i32) -> i32 { A[i] = 3; return A[i + 1]; }",
        )
        .unwrap();
        let a = h.object("A").unwrap();
        let b = h.object("B").unwrap();
        assert_eq!(a.size, 40);
        assert_eq!(b.size, 32);
        assert!(b.addr >= a.addr + 40);
        assert_eq!(a.addr % 16, 0);
        // Store lowers to addr = i*4 + base.
        let HStmt::Store { addr, .. } = &h.funcs[0].body[0] else {
            panic!();
        };
        let HExpr::Binary {
            op: HBinOp::Add,
            lhs,
            rhs,
            ..
        } = addr
        else {
            panic!("{addr:?}");
        };
        assert!(matches!(
            **lhs,
            HExpr::Binary {
                op: HBinOp::Mul,
                ..
            }
        ));
        assert!(matches!(**rhs, HExpr::Const { bits, .. } if bits == a.addr));
    }

    #[test]
    fn byte_arrays_use_subword_access() {
        let h = lower_src(
            "array u8 buf[16];
             array i16 s[4];
             fn f() -> i32 { buf[0] = 255; s[1] = -2; return buf[0] + s[1]; }",
        )
        .unwrap();
        let HStmt::Store { width, .. } = &h.funcs[0].body[0] else {
            panic!();
        };
        assert_eq!(*width, MemWidth::W8);
        let HStmt::Return(Some(HExpr::Binary { lhs, rhs, .. })) = &h.funcs[0].body[2] else {
            panic!();
        };
        assert!(
            matches!(
                **lhs,
                HExpr::Load {
                    width: MemWidth::W8,
                    signed: false,
                    ..
                }
            ),
            "{lhs:?}"
        );
        assert!(
            matches!(
                **rhs,
                HExpr::Load {
                    width: MemWidth::W16,
                    signed: true,
                    ..
                }
            ),
            "{rhs:?}"
        );
    }

    #[test]
    fn tables_merge_and_share_signature() {
        let h = lower_src(
            "table a = [f, g];
             table b = [g];
             fn f(x: i32) -> i32 { return x; }
             fn g(x: i32) -> i32 { return x + 1; }
             fn main() -> i32 { return a[0](1) + b[0](2); }",
        )
        .unwrap();
        assert_eq!(h.table, vec![0, 1, 1]);
        // Second indirect call uses table_base 2.
        let HStmt::Return(Some(HExpr::Binary { rhs, .. })) = &h.funcs[2].body[0] else {
            panic!();
        };
        assert!(matches!(**rhs, HExpr::CallIndirect { table_base: 2, .. }));
    }

    #[test]
    fn mixed_signature_table_rejected() {
        let e = lower_src(
            "table t = [f, g];
             fn f(x: i32) -> i32 { return x; }
             fn g(x: f64) -> i32 { return 0; }",
        )
        .unwrap_err();
        assert!(e.msg.contains("mixed signatures"), "{e}");
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = lower_src("fn f() { break; }").unwrap_err();
        assert!(e.msg.contains("outside a loop"), "{e}");
    }

    #[test]
    fn missing_return_rejected() {
        let e = lower_src("fn f(c: i32) -> i32 { if (c) { return 1; } }").unwrap_err();
        assert!(e.msg.contains("fall off"), "{e}");
        assert!(
            lower_src("fn f(c: i32) -> i32 { if (c) { return 1; } else { return 2; } }").is_ok()
        );
    }

    #[test]
    fn const_arithmetic() {
        let h = lower_src(
            "const A = 4;
             const B = A * 8 + 2;
             array u8 buf[B];
             fn main() -> i32 { return B; }",
        )
        .unwrap();
        assert_eq!(h.object("buf").unwrap().size, 34);
        let HStmt::Return(Some(HExpr::Const { bits, .. })) = &h.funcs[0].body[0] else {
            panic!();
        };
        assert_eq!(*bits, 34);
    }

    #[test]
    fn for_desugar_inlines() {
        let h = lower_src(
            "fn f() -> i32 {
                var s: i32 = 0;
                var i: i32 = 0;
                for (i = 0; i < 10; i += 1) { s += i; }
                return s;
            }",
        )
        .unwrap();
        // var, i=0 (decl init), i=0 (for init), while, return.
        assert!(h.funcs[0]
            .body
            .iter()
            .any(|s| matches!(s, HStmt::While { .. })));
    }

    #[test]
    fn array_decay_to_base_address() {
        let h = lower_src(
            "array u8 buf[64];
             fn f() -> i32 { return syscall(4, 1, buf, 64); }",
        )
        .unwrap();
        let buf_addr = h.object("buf").unwrap().addr;
        let HStmt::Return(Some(HExpr::Syscall { args })) = &h.funcs[0].body[0] else {
            panic!();
        };
        assert!(matches!(args[2], HExpr::Const { bits, .. } if bits == buf_addr));
    }

    #[test]
    fn string_array_initializer() {
        let h = lower_src(
            "array u8 msg = \"hey\";
             fn main() -> i32 { return msg[1]; }",
        )
        .unwrap();
        let m = h.object("msg").unwrap();
        assert_eq!(m.size, 3);
        assert!(h.data.iter().any(|(a, b)| *a == m.addr && b == b"hey"));
    }

    #[test]
    fn memory_size_covers_layout() {
        let h = lower_src("array f64 big[100000]; fn main() -> i32 { return 0; }").unwrap();
        let b = h.object("big").unwrap();
        assert!(h.memory_size >= b.addr + b.size);
        assert_eq!(h.memory_size % 0x10000, 0);
    }

    #[test]
    fn void_function_in_expression_rejected() {
        let e = lower_src(
            "fn v() { }
             fn f() -> i32 { return v() + 1; }",
        )
        .unwrap_err();
        assert!(e.msg.contains("returns no value"), "{e}");
    }

    #[test]
    fn short_circuit_lowering() {
        let h = lower_src("fn f(a: i32, b: i32) -> i32 { return a && b || 1; }").unwrap();
        let HStmt::Return(Some(HExpr::ShortCircuit {
            is_and: false, lhs, ..
        })) = &h.funcs[0].body[0]
        else {
            panic!();
        };
        assert!(matches!(**lhs, HExpr::ShortCircuit { is_and: true, .. }));
    }

    /// Bits of the first global (at `GLOBAL_BASE`) after lowering.
    fn first_global_bits(src: &str) -> u64 {
        let h = lower_src(src).unwrap();
        let mut bits = [0u8; 8];
        for (addr, bytes) in &h.data {
            if *addr == GLOBAL_BASE {
                bits[..bytes.len()].copy_from_slice(bytes);
            }
        }
        u64::from_le_bytes(bits)
    }

    #[test]
    fn const_fold_unsigned_rem_uses_unsigned_semantics() {
        // u32: 7 % (0-3 wrapped to 4294967293) = 7, not the signed 7 % -3 = 1.
        assert_eq!(first_global_bits("global u32 g = 7 % (0 - 3);"), 7);
        // Signed folding still applies for i32.
        assert_eq!(first_global_bits("global i32 g = 7 % (0 - 3);") as u32, 1);
    }

    #[test]
    fn const_fold_div_respects_signedness() {
        assert_eq!(
            first_global_bits("global u32 g = (0 - 8) / 2;") as u32,
            (u32::MAX - 7) / 2
        );
        assert_eq!(
            first_global_bits("global i32 g = (0 - 8) / 2;") as u32 as i32,
            -4
        );
    }

    #[test]
    fn const_fold_shift_masks_count_at_type_width() {
        // i32: count 33 masks to 1, as at run time — not a 64-bit shift
        // truncated afterwards (which would give 0).
        assert_eq!(first_global_bits("global i32 g = 1 << 33;") as u32, 2);
        // i64: count 33 is a genuine 33-bit shift.
        assert_eq!(first_global_bits("global i64 g = 1 << 33;"), 1 << 33);
    }

    #[test]
    fn const_fold_shr_respects_signedness() {
        // u32 >> is logical...
        assert_eq!(
            first_global_bits("global u32 g = (0 - 8) >> 1;") as u32,
            0x7FFF_FFFC
        );
        // ...i32 >> is arithmetic.
        assert_eq!(
            first_global_bits("global i32 g = (0 - 8) >> 1;") as u32 as i32,
            -4
        );
    }

    #[test]
    fn const_fold_min_over_minus_one_is_an_error() {
        // i32::MIN / -1 traps at run time; in a constant context it must
        // be rejected, not wrapped.
        let e = lower_src("global i32 g = (0 - 2147483647 - 1) / (0 - 1);").unwrap_err();
        assert!(e.msg.contains("overflow"), "{e}");
        let e = lower_src("global i64 g = (0 - 9223372036854775807 - 1) / (0 - 1);").unwrap_err();
        assert!(e.msg.contains("overflow"), "{e}");
    }

    #[test]
    fn const_definitions_fold_at_i64() {
        assert_eq!(
            first_global_bits("const N = 1 << 40; global i64 g = N;"),
            1 << 40
        );
    }

    #[test]
    fn folded_globals_match_runtime_computation() {
        // The divergence the typed fold exists to prevent: a global's
        // folded initializer must equal the identical expression computed
        // at run time, for every signedness/width combination.
        let cases = [
            ("u32", "(0 - 7) % 3"),
            ("u32", "(0 - 8) >> 2"),
            ("i32", "(0 - 8) >> 2"),
            ("u32", "3000000000 / 7"),
            ("i32", "(1 << 33) + 5"),
            ("u64", "(0 - 1) / 3"),
            ("i64", "(0 - 123456789012345) % 1000003"),
        ];
        for (ty, expr) in cases {
            let src = format!(
                "global {ty} g = {expr};
                 fn main() -> i32 {{
                     var a: {ty} = {expr};
                     if (a == g) {{ return 1; }}
                     return 0;
                 }}"
            );
            let prog = crate::compile(&src).unwrap();
            let mut i = crate::Interp::new(&prog, crate::NoSyscalls);
            assert_eq!(
                i.run("main", &[]).unwrap(),
                Some(1),
                "fold/runtime divergence for {ty}: {expr}"
            );
        }
    }
}
