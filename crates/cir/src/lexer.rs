//! Hand-written lexer.

use core::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (already unescaped).
    Str(Vec<u8>),
    /// Punctuation / operator, e.g. `"+"`, `"<<"`, `"+="`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Float(v) => write!(f, "float {v}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Multi-character operators, longest first.
const PUNCTS: [&str; 34] = [
    "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "->", "(", ")", "{", "}", "[", "]", ";", ",", ":", "+", "-", "*", "/", "%",
    "=",
];
const SINGLE_PUNCTS: [&str; 5] = ["<", ">", "&", "|", "^"];
const OTHER_PUNCTS: [&str; 2] = ["!", "~"];

/// Tokenizes `src`.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let err = |msg: String, line: u32| LexError { msg, line };

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err("unterminated block comment".into(), line));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'"' => {
                i += 1;
                let mut s = Vec::new();
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            return Err(err("unterminated string".into(), line));
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes
                                .get(i + 1)
                                .ok_or_else(|| err("dangling escape".into(), line))?;
                            s.push(match esc {
                                b'n' => b'\n',
                                b't' => b'\t',
                                b'r' => b'\r',
                                b'0' => 0,
                                b'\\' => b'\\',
                                b'"' => b'"',
                                other => {
                                    return Err(err(
                                        format!("unknown escape \\{}", *other as char),
                                        line,
                                    ));
                                }
                            });
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b);
                            i += 1;
                        }
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
            }
            b'\'' => {
                // Character literal -> integer token.
                let (v, consumed) = match (bytes.get(i + 1), bytes.get(i + 2)) {
                    (Some(b'\\'), Some(&esc)) => {
                        let v = match esc {
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'r' => b'\r',
                            b'0' => 0,
                            b'\\' => b'\\',
                            b'\'' => b'\'',
                            other => {
                                return Err(err(
                                    format!("unknown escape \\{}", other as char),
                                    line,
                                ));
                            }
                        };
                        (v, 4)
                    }
                    (Some(&ch), _) if ch != b'\'' => (ch, 3),
                    _ => return Err(err("empty char literal".into(), line)),
                };
                if bytes.get(i + consumed - 1) != Some(&b'\'') {
                    return Err(err("unterminated char literal".into(), line));
                }
                out.push(SpannedTok {
                    tok: Tok::Int(v as i64),
                    line,
                });
                i += consumed;
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && bytes.get(i + 1) == Some(&b'x') {
                    i += 2;
                    let hstart = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hstart {
                        return Err(err("empty hex literal".into(), line));
                    }
                    let text = &src[hstart..i];
                    let v = u64::from_str_radix(text, 16)
                        .map_err(|_| err(format!("bad hex literal {text}"), line))?;
                    out.push(SpannedTok {
                        tok: Tok::Int(v as i64),
                        line,
                    });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let is_float = bytes.get(i) == Some(&b'.')
                        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                        || matches!(bytes.get(i), Some(b'e') | Some(b'E'))
                            && (bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                                || matches!(bytes.get(i + 1), Some(b'-') | Some(b'+')));
                    if is_float {
                        if bytes.get(i) == Some(&b'.') {
                            i += 1;
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                i += 1;
                            }
                        }
                        if matches!(bytes.get(i), Some(b'e') | Some(b'E')) {
                            i += 1;
                            if matches!(bytes.get(i), Some(b'-') | Some(b'+')) {
                                i += 1;
                            }
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                i += 1;
                            }
                        }
                        let text = &src[start..i];
                        let v: f64 = text
                            .parse()
                            .map_err(|_| err(format!("bad float literal {text}"), line))?;
                        out.push(SpannedTok {
                            tok: Tok::Float(v),
                            line,
                        });
                    } else {
                        let text = &src[start..i];
                        let v: i64 = text
                            .parse()
                            .map_err(|_| err(format!("bad int literal {text}"), line))?;
                        out.push(SpannedTok {
                            tok: Tok::Int(v),
                            line,
                        });
                    }
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                let rest = &src[i..];
                let all = PUNCTS
                    .iter()
                    .chain(SINGLE_PUNCTS.iter())
                    .chain(OTHER_PUNCTS.iter());
                let mut matched = None;
                for p in all {
                    if rest.starts_with(p) && matched.is_none_or(|m: &str| p.len() > m.len()) {
                        matched = Some(*p);
                    }
                }
                match matched {
                    Some(p) => {
                        out.push(SpannedTok {
                            tok: Tok::Punct(p),
                            line,
                        });
                        i += p.len();
                    }
                    None => {
                        return Err(err(format!("unexpected character `{}`", c as char), line));
                    }
                }
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_identifiers_and_ints() {
        assert_eq!(
            toks("foo 42 0xff"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Int(42),
                Tok::Int(255),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats() {
        assert_eq!(
            toks("1.5 2e3 1.25e-2"),
            vec![
                Tok::Float(1.5),
                Tok::Float(2000.0),
                Tok::Float(0.0125),
                Tok::Eof
            ]
        );
        // An integer followed by a method-less dot stays an integer.
        assert_eq!(toks("3"), vec![Tok::Int(3), Tok::Eof]);
    }

    #[test]
    fn lexes_multichar_operators_greedily() {
        assert_eq!(
            toks("a<<=b && c <= d << e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct("&&"),
                Tok::Ident("c".into()),
                Tok::Punct("<="),
                Tok::Ident("d".into()),
                Tok::Punct("<<"),
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks(r#""hi\n\0""#),
            vec![Tok::Str(b"hi\n\0".to_vec()), Tok::Eof]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn char_literals() {
        assert_eq!(
            toks("'a' '\\n'"),
            vec![Tok::Int(97), Tok::Int(10), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let ts = lex("a // comment\nb /* multi\nline */ c").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn bad_character_reports_line() {
        let e = lex("x\n  @").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
