//! Reference interpreter for HIR.
//!
//! Executes typed programs directly, with the same arithmetic, memory, and
//! trap semantics the two compiler backends must implement. Used in
//! differential tests: for every benchmark, the output and final memory
//! checksums here must match the wasm interpreter, the native backend, and
//! every JIT profile.

use crate::hir::{HBinOp, HExpr, HProgram, HStmt, HTy, HUnOp, MemWidth};
use core::fmt;

/// An interpreter failure (trap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Integer division by zero.
    DivByZero,
    /// Signed division overflow or float-to-int range error.
    IntegerOverflow,
    /// Out-of-bounds memory access.
    OutOfBounds,
    /// Indirect call to an out-of-range table slot.
    BadIndirectCall,
    /// Indirect call signature mismatch.
    SigMismatch,
    /// Fuel exhausted.
    OutOfFuel,
    /// Call stack exhausted.
    StackExhausted,
    /// The syscall host reported an error.
    Host(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::DivByZero => write!(f, "integer divide by zero"),
            InterpError::IntegerOverflow => write!(f, "integer overflow"),
            InterpError::OutOfBounds => write!(f, "out of bounds memory access"),
            InterpError::BadIndirectCall => write!(f, "bad indirect call target"),
            InterpError::SigMismatch => write!(f, "indirect call signature mismatch"),
            InterpError::OutOfFuel => write!(f, "fuel exhausted"),
            InterpError::StackExhausted => write!(f, "call stack exhausted"),
            InterpError::Host(m) => write!(f, "host error: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Host for the `syscall` primitive.
pub trait CliteHost {
    /// Services a syscall. `args[0]` is the syscall number; the rest are
    /// its (up to 5) arguments. `mem` is the program's linear memory.
    fn syscall(&mut self, args: &[i32], mem: &mut [u8]) -> Result<i32, String>;
}

/// Host that rejects every syscall.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoSyscalls;

impl CliteHost for NoSyscalls {
    fn syscall(&mut self, args: &[i32], _mem: &mut [u8]) -> Result<i32, String> {
        Err(format!(
            "unexpected syscall {}",
            args.first().unwrap_or(&-1)
        ))
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<u64>),
}

const MAX_DEPTH: usize = 512;

/// The HIR interpreter.
pub struct Interp<'p, H: CliteHost> {
    prog: &'p HProgram,
    /// Linear memory.
    pub mem: Vec<u8>,
    host: H,
    fuel: u64,
    depth: usize,
    /// Memory stores performed so far (used to detect order-sensitive
    /// operand pairs).
    writes: u64,
    /// Set when the execution exercised behavior CLite defines but C
    /// does not, so the native pipeline may legitimately disagree:
    ///
    /// - `INT_MIN % -1` (CLite and wasm say 0; native `idiv` faults);
    /// - an indirect call whose index is out of range or whose callee
    ///   signature mismatches, even when an argument traps first
    ///   (native may materialize the bad pointer before the
    ///   arguments run);
    /// - a binary operation where one operand writes memory the other
    ///   operand reads (C leaves operand order unsequenced; native may
    ///   evaluate in either order).
    pub c_ub: bool,
}

type IResult<T> = Result<T, InterpError>;

impl<'p, H: CliteHost> Interp<'p, H> {
    /// Creates an interpreter with memory initialized from the program's
    /// data segments.
    pub fn new(prog: &'p HProgram, host: H) -> Interp<'p, H> {
        let mut mem = vec![0u8; prog.memory_size as usize];
        for (addr, bytes) in &prog.data {
            mem[*addr as usize..*addr as usize + bytes.len()].copy_from_slice(bytes);
        }
        Interp {
            prog,
            mem,
            host,
            fuel: u64::MAX,
            depth: 0,
            writes: 0,
            c_ub: false,
        }
    }

    /// Sets the step budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Shared access to the host.
    pub fn host(&self) -> &H {
        &self.host
    }

    /// Mutable access to the host.
    pub fn host_mut(&mut self) -> &mut H {
        &mut self.host
    }

    /// Runs function `name` with raw argument slots; returns the raw
    /// result, if the function has one.
    ///
    /// Runs on a dedicated large-stack thread (the interpreter recurses
    /// per call frame and nested statement).
    pub fn run(&mut self, name: &str, args: &[u64]) -> IResult<Option<u64>>
    where
        H: Send,
    {
        let idx = self
            .prog
            .func_by_name(name)
            .ok_or_else(|| InterpError::Host(format!("no function `{name}`")))?;
        std::thread::scope(|s| {
            std::thread::Builder::new()
                .name("clite-interp".into())
                .stack_size(128 << 20)
                .spawn_scoped(s, || self.call(idx, args))
                .expect("spawn interpreter thread")
                .join()
                .expect("interpreter thread panicked")
        })
    }

    fn call(&mut self, func: u32, args: &[u64]) -> IResult<Option<u64>> {
        if self.depth >= MAX_DEPTH {
            return Err(InterpError::StackExhausted);
        }
        self.depth += 1;
        let f = &self.prog.funcs[func as usize];
        debug_assert_eq!(args.len(), f.n_params as usize);
        let mut locals = vec![0u64; f.locals.len()];
        locals[..args.len()].copy_from_slice(args);
        let flow = self.exec_block(&f.body, &mut locals);
        self.depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(None),
            Flow::Break | Flow::Continue => unreachable!("checked by typecheck"),
        }
    }

    fn exec_block(&mut self, stmts: &[HStmt], locals: &mut Vec<u64>) -> IResult<Flow> {
        for s in stmts {
            match self.exec_stmt(s, locals)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &HStmt, locals: &mut Vec<u64>) -> IResult<Flow> {
        if self.fuel == 0 {
            return Err(InterpError::OutOfFuel);
        }
        self.fuel -= 1;
        match s {
            HStmt::SetLocal { idx, value } => {
                let v = self.eval(value, locals)?;
                locals[*idx as usize] = v;
                Ok(Flow::Normal)
            }
            HStmt::Store {
                width, addr, value, ..
            } => {
                let a = self.eval(addr, locals)? as u32 as u64;
                let v = self.eval(value, locals)?;
                self.store(a, v, *width)?;
                Ok(Flow::Normal)
            }
            HStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, locals)? as u32;
                if c != 0 {
                    self.exec_block(then_body, locals)
                } else {
                    self.exec_block(else_body, locals)
                }
            }
            HStmt::While { cond, body } => {
                loop {
                    if self.fuel == 0 {
                        return Err(InterpError::OutOfFuel);
                    }
                    self.fuel -= 1;
                    if self.eval(cond, locals)? as u32 == 0 {
                        break;
                    }
                    match self.exec_block(body, locals)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            HStmt::DoWhile { body, cond } => {
                loop {
                    if self.fuel == 0 {
                        return Err(InterpError::OutOfFuel);
                    }
                    self.fuel -= 1;
                    match self.exec_block(body, locals)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    if self.eval(cond, locals)? as u32 == 0 {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            HStmt::Break => Ok(Flow::Break),
            HStmt::Continue => Ok(Flow::Continue),
            HStmt::Return(v) => {
                let val = match v {
                    Some(e) => Some(self.eval(e, locals)?),
                    None => None,
                };
                Ok(Flow::Return(val))
            }
            HStmt::Expr(e) => {
                self.eval(e, locals)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn load(&self, addr: u64, width: MemWidth, signed: bool, ty: HTy) -> IResult<u64> {
        let n = width.bytes() as usize;
        let a = addr as usize;
        if a + n > self.mem.len() {
            return Err(InterpError::OutOfBounds);
        }
        let mut buf = [0u8; 8];
        buf[..n].copy_from_slice(&self.mem[a..a + n]);
        let mut v = u64::from_le_bytes(buf);
        if signed && n < 8 {
            let bits = n as u32 * 8;
            let sext = ((v << (64 - bits)) as i64) >> (64 - bits);
            v = match ty {
                HTy::I32 => sext as i32 as u32 as u64,
                _ => sext as u64,
            };
        }
        Ok(v)
    }

    fn store(&mut self, addr: u64, v: u64, width: MemWidth) -> IResult<()> {
        let n = width.bytes() as usize;
        let a = addr as usize;
        if a + n > self.mem.len() {
            return Err(InterpError::OutOfBounds);
        }
        self.mem[a..a + n].copy_from_slice(&v.to_le_bytes()[..n]);
        self.writes += 1;
        Ok(())
    }

    fn eval(&mut self, e: &HExpr, locals: &mut Vec<u64>) -> IResult<u64> {
        if self.fuel == 0 {
            return Err(InterpError::OutOfFuel);
        }
        self.fuel -= 1;
        match e {
            HExpr::Const { bits, .. } => Ok(*bits),
            HExpr::Local { idx, .. } => Ok(locals[*idx as usize]),
            HExpr::Load {
                ty,
                width,
                signed,
                addr,
            } => {
                let a = self.eval(addr, locals)? as u32 as u64;
                self.load(a, *width, *signed, *ty)
            }
            HExpr::Unary { op, ty, arg } => {
                let v = self.eval(arg, locals)?;
                Ok(unop(*op, *ty, v))
            }
            HExpr::Binary { op, ty, lhs, rhs } => {
                let w0 = self.writes;
                let a = self.eval(lhs, locals)?;
                let w1 = self.writes;
                let b = self.eval(rhs, locals)?;
                // C leaves binary operands unsequenced: if one side
                // stored to memory the other side reads, native may
                // observe either order.
                if (w1 != w0 && reads_memory(rhs)) || (self.writes != w1 && reads_memory(lhs)) {
                    self.c_ub = true;
                }
                if *op == HBinOp::RemS {
                    let overflow = match ty {
                        HTy::I32 => a as u32 as i32 == i32::MIN && b as u32 as i32 == -1,
                        _ => a as i64 == i64::MIN && b as i64 == -1,
                    };
                    if overflow {
                        self.c_ub = true;
                    }
                }
                binop(*op, *ty, a, b)
            }
            HExpr::ShortCircuit { is_and, lhs, rhs } => {
                let a = self.eval(lhs, locals)? as u32;
                if *is_and {
                    if a == 0 {
                        return Ok(0);
                    }
                    Ok(u64::from(self.eval(rhs, locals)? as u32 != 0))
                } else {
                    if a != 0 {
                        return Ok(1);
                    }
                    Ok(u64::from(self.eval(rhs, locals)? as u32 != 0))
                }
            }
            HExpr::Cast {
                from,
                to,
                signed,
                arg,
            } => {
                let v = self.eval(arg, locals)?;
                cast(*from, *to, *signed, v)
            }
            HExpr::Call { func, args, .. } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, locals)?);
                }
                Ok(self.call(*func, &vals)?.unwrap_or(0))
            }
            HExpr::CallIndirect {
                sig,
                table_base,
                index,
                args,
                ..
            } => {
                // Operand order matches the machine pipelines: the index
                // expression evaluates first (source order), arguments
                // follow, and the table bounds / signature checks happen
                // at the call itself — wasm's call_indirect checks when
                // the call executes, and native dereferences the bare
                // pointer at the call, so a trapping argument wins over
                // a bad index on every engine.
                let i = self.eval(index, locals)? as u32;
                let slot = (*table_base + i) as usize;
                // A bad index or signature is C UB the moment native
                // materializes the call target — it may read past the
                // table before the arguments run — so flag it here even
                // though CLite itself only traps at the call below.
                match self.prog.table.get(slot) {
                    Some(f) if self.prog.func_sigs[*f as usize] == *sig => {}
                    _ => self.c_ub = true,
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, locals)?);
                }
                let func = *self
                    .prog
                    .table
                    .get(slot)
                    .ok_or(InterpError::BadIndirectCall)?;
                if self.prog.func_sigs[func as usize] != *sig {
                    return Err(InterpError::SigMismatch);
                }
                Ok(self.call(func, &vals)?.unwrap_or(0))
            }
            HExpr::Syscall { args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, locals)? as u32 as i32);
                }
                let r = self
                    .host
                    .syscall(&vals, &mut self.mem)
                    .map_err(InterpError::Host)?;
                // The kernel may have written buffers.
                self.writes += 1;
                Ok(r as u32 as u64)
            }
        }
    }
}

/// True if evaluating `e` may read linear memory (calls are treated as
/// reading: their bodies can load anything).
fn reads_memory(e: &HExpr) -> bool {
    match e {
        HExpr::Const { .. } | HExpr::Local { .. } => false,
        HExpr::Load { .. }
        | HExpr::Call { .. }
        | HExpr::CallIndirect { .. }
        | HExpr::Syscall { .. } => true,
        HExpr::Unary { arg, .. } | HExpr::Cast { arg, .. } => reads_memory(arg),
        HExpr::Binary { lhs, rhs, .. } | HExpr::ShortCircuit { lhs, rhs, .. } => {
            reads_memory(lhs) || reads_memory(rhs)
        }
    }
}

fn f_of(ty: HTy, bits: u64) -> f64 {
    match ty {
        HTy::F32 => f32::from_bits(bits as u32) as f64,
        _ => f64::from_bits(bits),
    }
}

fn f_to(ty: HTy, v: f64) -> u64 {
    match ty {
        HTy::F32 => (v as f32).to_bits() as u64,
        _ => v.to_bits(),
    }
}

fn unop(op: HUnOp, ty: HTy, v: u64) -> u64 {
    match (op, ty) {
        (HUnOp::Neg, HTy::I32) => (v as u32).wrapping_neg() as u64,
        (HUnOp::Neg, HTy::I64) => v.wrapping_neg(),
        (HUnOp::Neg, _) => f_to(ty, -f_of(ty, v)),
        (HUnOp::Eqz, HTy::I64) => u64::from(v == 0),
        (HUnOp::Eqz, _) => u64::from(v as u32 == 0),
        (HUnOp::BitNot, HTy::I32) => (!(v as u32)) as u64,
        (HUnOp::BitNot, _) => !v,
        (HUnOp::Clz, HTy::I32) => (v as u32).leading_zeros() as u64,
        (HUnOp::Clz, _) => v.leading_zeros() as u64,
        (HUnOp::Ctz, HTy::I32) => (v as u32).trailing_zeros() as u64,
        (HUnOp::Ctz, _) => v.trailing_zeros() as u64,
        (HUnOp::Popcnt, HTy::I32) => (v as u32).count_ones() as u64,
        (HUnOp::Popcnt, _) => v.count_ones() as u64,
        (HUnOp::Sqrt, _) => f_to(ty, f_of(ty, v).sqrt()),
        (HUnOp::Abs, _) => f_to(ty, f_of(ty, v).abs()),
        (HUnOp::Floor, _) => f_to(ty, f_of(ty, v).floor()),
        (HUnOp::Ceil, _) => f_to(ty, f_of(ty, v).ceil()),
        (HUnOp::TruncF, _) => f_to(ty, f_of(ty, v).trunc()),
        (HUnOp::Nearest, _) => {
            let x = f_of(ty, v);
            let r = x.round();
            let r = if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                r - x.signum()
            } else {
                r
            };
            f_to(ty, r)
        }
    }
}

fn binop(op: HBinOp, ty: HTy, a: u64, b: u64) -> IResult<u64> {
    use HBinOp::*;
    if matches!(ty, HTy::F32 | HTy::F64) {
        let (x, y) = (f_of(ty, a), f_of(ty, b));
        return Ok(match op {
            Add => f_to(ty, x + y),
            Sub => f_to(ty, x - y),
            Mul => f_to(ty, x * y),
            DivS => f_to(ty, x / y),
            // WebAssembly min/max semantics (NaN-propagating, -0 < +0):
            // the backends all lower to [`FAluOp::Min`]/[`Max`], so the
            // reference interpreter must match them bit-exactly.
            FMin => f_to(ty, wasmperf_isa::fpsem::wasm_min_f64(x, y)),
            FMax => f_to(ty, wasmperf_isa::fpsem::wasm_max_f64(x, y)),
            Eq => u64::from(x == y),
            Ne => u64::from(x != y),
            LtS => u64::from(x < y),
            LeS => u64::from(x <= y),
            GtS => u64::from(x > y),
            GeS => u64::from(x >= y),
            other => unreachable!("float {other:?}"),
        });
    }
    if ty == HTy::I32 {
        let (ua, ub) = (a as u32, b as u32);
        let (sa, sb) = (ua as i32, ub as i32);
        let r: u32 = match op {
            Add => ua.wrapping_add(ub),
            Sub => ua.wrapping_sub(ub),
            Mul => ua.wrapping_mul(ub),
            DivS => {
                if sb == 0 {
                    return Err(InterpError::DivByZero);
                }
                if sa == i32::MIN && sb == -1 {
                    return Err(InterpError::IntegerOverflow);
                }
                (sa / sb) as u32
            }
            DivU => {
                if ub == 0 {
                    return Err(InterpError::DivByZero);
                }
                ua / ub
            }
            RemS => {
                if sb == 0 {
                    return Err(InterpError::DivByZero);
                }
                sa.wrapping_rem(sb) as u32
            }
            RemU => {
                if ub == 0 {
                    return Err(InterpError::DivByZero);
                }
                ua % ub
            }
            And => ua & ub,
            Or => ua | ub,
            Xor => ua ^ ub,
            Shl => ua.wrapping_shl(ub),
            ShrS => sa.wrapping_shr(ub) as u32,
            ShrU => ua.wrapping_shr(ub),
            Rotl => ua.rotate_left(ub % 32),
            Rotr => ua.rotate_right(ub % 32),
            Eq => return Ok(u64::from(ua == ub)),
            Ne => return Ok(u64::from(ua != ub)),
            LtS => return Ok(u64::from(sa < sb)),
            LtU => return Ok(u64::from(ua < ub)),
            GtS => return Ok(u64::from(sa > sb)),
            GtU => return Ok(u64::from(ua > ub)),
            LeS => return Ok(u64::from(sa <= sb)),
            LeU => return Ok(u64::from(ua <= ub)),
            GeS => return Ok(u64::from(sa >= sb)),
            GeU => return Ok(u64::from(ua >= ub)),
            FMin | FMax => unreachable!("int min/max"),
        };
        return Ok(r as u64);
    }
    // I64.
    let (sa, sb) = (a as i64, b as i64);
    Ok(match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        DivS => {
            if sb == 0 {
                return Err(InterpError::DivByZero);
            }
            if sa == i64::MIN && sb == -1 {
                return Err(InterpError::IntegerOverflow);
            }
            (sa / sb) as u64
        }
        DivU => {
            if b == 0 {
                return Err(InterpError::DivByZero);
            }
            a / b
        }
        RemS => {
            if sb == 0 {
                return Err(InterpError::DivByZero);
            }
            sa.wrapping_rem(sb) as u64
        }
        RemU => {
            if b == 0 {
                return Err(InterpError::DivByZero);
            }
            a % b
        }
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Shl => a.wrapping_shl(b as u32),
        ShrS => sa.wrapping_shr(b as u32) as u64,
        ShrU => a.wrapping_shr(b as u32),
        Rotl => a.rotate_left((b % 64) as u32),
        Rotr => a.rotate_right((b % 64) as u32),
        Eq => u64::from(a == b),
        Ne => u64::from(a != b),
        LtS => u64::from(sa < sb),
        LtU => u64::from(a < b),
        GtS => u64::from(sa > sb),
        GtU => u64::from(a > b),
        LeS => u64::from(sa <= sb),
        LeU => u64::from(a <= b),
        GeS => u64::from(sa >= sb),
        GeU => u64::from(a >= b),
        FMin | FMax => unreachable!("int min/max"),
    })
}

fn cast(from: HTy, to: HTy, signed: bool, v: u64) -> IResult<u64> {
    Ok(match (from, to) {
        (HTy::I64, HTy::I32) => v as u32 as u64,
        (HTy::I32, HTy::I64) => {
            if signed {
                v as u32 as i32 as i64 as u64
            } else {
                v as u32 as u64
            }
        }
        (HTy::I32, HTy::F32 | HTy::F64) => {
            let x = if signed {
                v as u32 as i32 as f64
            } else {
                (v as u32) as f64
            };
            f_to(to, x)
        }
        (HTy::I64, HTy::F32 | HTy::F64) => {
            let x = if signed { v as i64 as f64 } else { v as f64 };
            f_to(to, x)
        }
        (HTy::F32 | HTy::F64, HTy::I32) => {
            let x = f_of(from, v);
            if x.is_nan() {
                return Err(InterpError::IntegerOverflow);
            }
            let t = x.trunc();
            if signed {
                if !(-2147483648.0..=2147483647.0).contains(&t) {
                    return Err(InterpError::IntegerOverflow);
                }
                t as i32 as u32 as u64
            } else {
                if !(0.0..=4294967295.0).contains(&t) {
                    return Err(InterpError::IntegerOverflow);
                }
                t as u32 as u64
            }
        }
        (HTy::F32 | HTy::F64, HTy::I64) => {
            let x = f_of(from, v);
            if x.is_nan() {
                return Err(InterpError::IntegerOverflow);
            }
            let t = x.trunc();
            if signed {
                if !(-9.223372036854776e18..=9.223372036854775e18).contains(&t) {
                    return Err(InterpError::IntegerOverflow);
                }
                t as i64 as u64
            } else {
                if !(0.0..=1.8446744073709552e19).contains(&t) {
                    return Err(InterpError::IntegerOverflow);
                }
                t as u64
            }
        }
        (HTy::F32, HTy::F64) => (f32::from_bits(v as u32) as f64).to_bits(),
        (HTy::F64, HTy::F32) => (f64::from_bits(v) as f32).to_bits() as u64,
        (a, b) if a == b => v,
        (a, b) => unreachable!("cast {a} -> {b}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, args: &[u64]) -> IResult<Option<u64>> {
        let prog = crate::compile(src).expect("compiles");
        let mut i = Interp::new(&prog, NoSyscalls);
        i.run("main", args)
    }

    #[test]
    fn computes_fibonacci_recursively() {
        let src = "
            fn fib(n: i32) -> i32 {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main(n: i32) -> i32 { return fib(n); }
        ";
        assert_eq!(run(src, &[10]).unwrap(), Some(55));
    }

    #[test]
    fn loops_and_arrays() {
        let src = "
            const N = 50;
            array i32 A[N];
            fn main() -> i32 {
                var i: i32 = 0;
                for (i = 0; i < N; i += 1) { A[i] = i * i; }
                var s: i32 = 0;
                for (i = 0; i < N; i += 1) { s += A[i]; }
                return s;
            }
        ";
        let expect: i64 = (0..50).map(|i| i * i).sum();
        assert_eq!(run(src, &[]).unwrap(), Some(expect as u64));
    }

    #[test]
    fn unsigned_vs_signed_division() {
        let src = "
            fn main() -> i32 {
                var a: u32 = 0 - 10;       // 4294967286
                var b: u32 = a / u32(3);   // unsigned
                var c: i32 = -10;
                var d: i32 = c / 3;        // signed -> -3
                return i32(b) + d;
            }
        ";
        let expect = (4294967286u32 / 3) as i32 + (-3);
        assert_eq!(run(src, &[]).unwrap(), Some(expect as u32 as u64));
    }

    #[test]
    fn float_arithmetic_and_casts() {
        let src = "
            fn main() -> i32 {
                var x: f64 = 2.0;
                var y: f64 = sqrt(x) * sqrt(x);
                var z: f32 = f32(y);
                return i32(z * 100.0);
            }
        ";
        let r = run(src, &[]).unwrap().unwrap();
        assert!((199..=201).contains(&(r as i64)), "{r}");
    }

    #[test]
    fn short_circuit_prevents_trap() {
        // RHS would divide by zero; && must not evaluate it.
        let src = "
            fn boom(x: i32) -> i32 { return 10 / x; }
            fn main(c: i32) -> i32 {
                if (c != 0 && boom(c) > 0) { return 1; }
                return 0;
            }
        ";
        assert_eq!(run(src, &[0]).unwrap(), Some(0));
        assert_eq!(run(src, &[5]).unwrap(), Some(1));
    }

    #[test]
    fn division_traps() {
        let src = "fn main(d: i32) -> i32 { return 7 / d; }";
        assert_eq!(run(src, &[0]).unwrap_err(), InterpError::DivByZero);
    }

    #[test]
    fn oob_array_access_traps() {
        let src = "
            array i32 A[4];
            fn main(i: i32) -> i32 { return A[i]; }
        ";
        // Way beyond memory but small enough that `index*4` does not wrap
        // 32-bit address arithmetic.
        assert_eq!(
            run(src, &[0x0fff_ffff]).unwrap_err(),
            InterpError::OutOfBounds
        );
    }

    #[test]
    fn indirect_calls_dispatch() {
        let src = "
            fn add(a: i32, b: i32) -> i32 { return a + b; }
            fn sub(a: i32, b: i32) -> i32 { return a - b; }
            table ops = [add, sub];
            fn main(i: i32) -> i32 { return ops[i](10, 4); }
        ";
        assert_eq!(run(src, &[0]).unwrap(), Some(14));
        assert_eq!(run(src, &[1]).unwrap(), Some(6));
    }

    #[test]
    fn globals_persist_across_calls() {
        let src = "
            global i32 counter = 100;
            fn bump() { counter += 1; }
            fn main() -> i32 {
                bump(); bump(); bump();
                return counter;
            }
        ";
        assert_eq!(run(src, &[]).unwrap(), Some(103));
    }

    #[test]
    fn do_while_executes_at_least_once() {
        let src = "
            fn main() -> i32 {
                var n: i32 = 0;
                do { n += 1; } while (0);
                return n;
            }
        ";
        assert_eq!(run(src, &[]).unwrap(), Some(1));
    }

    #[test]
    fn break_and_continue() {
        let src = "
            fn main() -> i32 {
                var i: i32 = 0;
                var s: i32 = 0;
                while (1) {
                    i += 1;
                    if (i > 10) { break; }
                    if (i % 2 == 0) { continue; }
                    s += i;  // odd numbers 1..9
                }
                return s;
            }
        ";
        assert_eq!(run(src, &[]).unwrap(), Some(25));
    }

    #[test]
    fn syscall_reaches_host() {
        struct Recorder(Vec<Vec<i32>>);
        impl CliteHost for Recorder {
            fn syscall(&mut self, args: &[i32], _mem: &mut [u8]) -> Result<i32, String> {
                self.0.push(args.to_vec());
                Ok(42)
            }
        }
        let prog = crate::compile("fn main() -> i32 { return syscall(4, 1, 2) + syscall(1, 0); }")
            .unwrap();
        let mut i = Interp::new(&prog, Recorder(Vec::new()));
        assert_eq!(i.run("main", &[]).unwrap(), Some(84));
        assert_eq!(i.host().0, vec![vec![4, 1, 2], vec![1, 0]]);
    }

    #[test]
    fn sub_word_arrays_roundtrip() {
        let src = "
            array u8 b[8];
            array i16 s[4];
            fn main() -> i32 {
                b[0] = 200;       // stays unsigned
                s[0] = 0 - 200;   // sign-extends on load
                return b[0] * 1000 + (0 - s[0]);
            }
        ";
        assert_eq!(run(src, &[]).unwrap(), Some(200200));
    }

    #[test]
    fn i64_arithmetic() {
        let src = "
            fn main() -> i32 {
                var x: i64 = 1;
                var i: i32 = 0;
                for (i = 0; i < 40; i += 1) { x *= 2; }
                return i32(x >> 35);
            }
        ";
        assert_eq!(run(src, &[]).unwrap(), Some(32));
    }

    #[test]
    fn fuel_exhaustion() {
        let prog = crate::compile("fn main() -> i32 { while (1) { } return 0; }").unwrap();
        let mut i = Interp::new(&prog, NoSyscalls);
        i.set_fuel(1000);
        assert_eq!(i.run("main", &[]).unwrap_err(), InterpError::OutOfFuel);
    }

    #[test]
    fn rotation_intrinsics() {
        let src = "fn main(x: u32) -> i32 { return i32(rotl(x, u32(8))); }";
        assert_eq!(run(src, &[0x1234_5678]).unwrap(), Some(0x3456_7812));
    }

    #[test]
    fn min_max_propagate_nan() {
        // min/max with a NaN operand must produce NaN (wasm semantics),
        // not silently select the non-NaN operand.
        let src = "
            fn main() -> i32 {
                var nan: f64 = 0.0 / 0.0;
                var a: f64 = min(nan, 1.0);
                var b: f64 = max(1.0, nan);
                var r: i32 = 0;
                if (a != a) { r += 1; }
                if (b != b) { r += 2; }
                return r;
            }
        ";
        assert_eq!(run(src, &[]).unwrap(), Some(3));
    }

    #[test]
    fn min_max_order_signed_zeros() {
        // min(+0, -0) = -0 and max(-0, +0) = +0; detect the sign of zero
        // through the sign of 1/z.
        let src = "
            fn main() -> i32 {
                var pz: f64 = 0.0;
                var nz: f64 = 0.0 * (0.0 - 1.0);
                var lo: f64 = min(pz, nz);
                var hi: f64 = max(nz, pz);
                var r: i32 = 0;
                if (1.0 / lo < 0.0) { r += 1; }
                if (1.0 / hi > 0.0) { r += 2; }
                return r;
            }
        ";
        assert_eq!(run(src, &[]).unwrap(), Some(3));
    }
}
