//! Typed, resolved intermediate representation.
//!
//! The type checker lowers the parser AST into this IR: names are resolved
//! (locals to slot indices, globals and arrays to linear-memory addresses,
//! functions and tables to indices), signedness is resolved into explicit
//! operator variants, and a concrete memory layout is fixed. Both compiler
//! backends and the reference interpreter consume this IR, which guarantees
//! they agree about program meaning by construction.

use crate::ast::ElemTy;
use core::fmt;

/// Runtime value types (the wasm value types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum HTy {
    I32,
    I64,
    F32,
    F64,
}

impl HTy {
    /// True for the integer types.
    pub fn is_int(self) -> bool {
        matches!(self, HTy::I32 | HTy::I64)
    }

    /// Size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            HTy::I32 | HTy::F32 => 4,
            HTy::I64 | HTy::F64 => 8,
        }
    }
}

impl fmt::Display for HTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HTy::I32 => "i32",
            HTy::I64 => "i64",
            HTy::F32 => "f32",
            HTy::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum MemWidth {
    W8,
    W16,
    W32,
    W64,
}

impl MemWidth {
    /// Size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::W8 => 1,
            MemWidth::W16 => 2,
            MemWidth::W32 => 4,
            MemWidth::W64 => 8,
        }
    }

    /// The natural width of a value type.
    pub fn of(ty: HTy) -> MemWidth {
        match ty {
            HTy::I32 | HTy::F32 => MemWidth::W32,
            HTy::I64 | HTy::F64 => MemWidth::W64,
        }
    }
}

/// Binary operators with signedness resolved.
///
/// For float operand types, the signed comparison/division variants are
/// used (`DivS`, `LtS`, ...); `FMin`/`FMax` apply to floats only, and
/// `Rotl`/`Rotr` to integers only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum HBinOp {
    Add,
    Sub,
    Mul,
    DivS,
    DivU,
    RemS,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Rotl,
    Rotr,
    FMin,
    FMax,
    Eq,
    Ne,
    LtS,
    LtU,
    GtS,
    GtU,
    LeS,
    LeU,
    GeS,
    GeU,
}

impl HBinOp {
    /// True for comparison operators (result type `i32`).
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            HBinOp::Eq
                | HBinOp::Ne
                | HBinOp::LtS
                | HBinOp::LtU
                | HBinOp::GtS
                | HBinOp::GtU
                | HBinOp::LeS
                | HBinOp::LeU
                | HBinOp::GeS
                | HBinOp::GeU
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum HUnOp {
    /// Integer or float negation (dispatch on type).
    Neg,
    /// `x == 0`, result i32.
    Eqz,
    /// Bitwise complement (int).
    BitNot,
    Clz,
    Ctz,
    Popcnt,
    /// Float square root.
    Sqrt,
    /// Float absolute value.
    Abs,
    Floor,
    Ceil,
    /// Float round-toward-zero.
    TruncF,
    /// Float round-half-to-even.
    Nearest,
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum HExpr {
    /// A constant, stored as raw bits.
    Const {
        /// Value type.
        ty: HTy,
        /// Bit pattern (integers zero-extended).
        bits: u64,
    },
    /// A local variable or parameter.
    Local {
        /// Slot index (parameters first).
        idx: u32,
        /// Value type.
        ty: HTy,
    },
    /// A memory load.
    Load {
        /// Result type.
        ty: HTy,
        /// Access width (sub-word loads extend).
        width: MemWidth,
        /// Sign-extend sub-word loads.
        signed: bool,
        /// Byte address.
        addr: Box<HExpr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: HUnOp,
        /// Operand type.
        ty: HTy,
        /// Operand.
        arg: Box<HExpr>,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: HBinOp,
        /// Operand type (result is `i32` for comparisons).
        ty: HTy,
        /// Left operand.
        lhs: Box<HExpr>,
        /// Right operand.
        rhs: Box<HExpr>,
    },
    /// Short-circuit `&&` / `||`; operands and result are `i32`.
    ShortCircuit {
        /// True for `&&`, false for `||`.
        is_and: bool,
        /// Left operand.
        lhs: Box<HExpr>,
        /// Right operand.
        rhs: Box<HExpr>,
    },
    /// A numeric conversion.
    Cast {
        /// Source type.
        from: HTy,
        /// Destination type.
        to: HTy,
        /// Signedness of the integer side.
        signed: bool,
        /// Operand.
        arg: Box<HExpr>,
    },
    /// A direct call.
    Call {
        /// Callee index into [`HProgram::funcs`].
        func: u32,
        /// Result type, if any.
        ret: Option<HTy>,
        /// Arguments.
        args: Vec<HExpr>,
    },
    /// An indirect call through the merged function table.
    CallIndirect {
        /// Signature index into [`HProgram::sigs`].
        sig: u32,
        /// Offset of the source table within the merged table.
        table_base: u32,
        /// Index expression (i32).
        index: Box<HExpr>,
        /// Result type, if any.
        ret: Option<HTy>,
        /// Arguments.
        args: Vec<HExpr>,
    },
    /// A kernel call; arguments and result are `i32`.
    Syscall {
        /// Arguments (syscall number first), at most 6.
        args: Vec<HExpr>,
    },
}

impl HExpr {
    /// The expression's result type (`None` only for void calls).
    pub fn ty(&self) -> Option<HTy> {
        match self {
            HExpr::Const { ty, .. } | HExpr::Local { ty, .. } | HExpr::Load { ty, .. } => Some(*ty),
            HExpr::Unary { op, ty, .. } => Some(match op {
                HUnOp::Eqz => HTy::I32,
                _ => *ty,
            }),
            HExpr::Binary { op, ty, .. } => Some(if op.is_cmp() { HTy::I32 } else { *ty }),
            HExpr::ShortCircuit { .. } => Some(HTy::I32),
            HExpr::Cast { to, .. } => Some(*to),
            HExpr::Call { ret, .. } | HExpr::CallIndirect { ret, .. } => *ret,
            HExpr::Syscall { .. } => Some(HTy::I32),
        }
    }
}

/// A typed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum HStmt {
    /// `local[idx] = value`.
    SetLocal {
        /// Slot index.
        idx: u32,
        /// New value.
        value: HExpr,
    },
    /// A memory store.
    Store {
        /// Value type of the operand.
        ty: HTy,
        /// Access width (sub-word stores truncate).
        width: MemWidth,
        /// Byte address.
        addr: HExpr,
        /// Stored value.
        value: HExpr,
    },
    /// Conditional.
    If {
        /// Condition (i32, nonzero = true).
        cond: HExpr,
        /// Then branch.
        then_body: Vec<HStmt>,
        /// Else branch.
        else_body: Vec<HStmt>,
    },
    /// Pre-tested loop.
    While {
        /// Condition.
        cond: HExpr,
        /// Body.
        body: Vec<HStmt>,
    },
    /// Post-tested loop.
    DoWhile {
        /// Body.
        body: Vec<HStmt>,
        /// Condition.
        cond: HExpr,
    },
    /// Exit the innermost loop.
    Break,
    /// Re-test the innermost loop.
    Continue,
    /// Return from the function.
    Return(Option<HExpr>),
    /// Evaluate for side effects, dropping any result.
    Expr(HExpr),
}

/// A function signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HSig {
    /// Parameter types.
    pub params: Vec<HTy>,
    /// Result type, if any.
    pub ret: Option<HTy>,
}

/// A typed function.
#[derive(Debug, Clone, PartialEq)]
pub struct HFunc {
    /// Source name.
    pub name: String,
    /// Number of parameters (the first locals).
    pub n_params: u32,
    /// All local slots (parameters first).
    pub locals: Vec<HTy>,
    /// Result type.
    pub ret: Option<HTy>,
    /// Body.
    pub body: Vec<HStmt>,
    /// 1-based source line of the definition (for source maps).
    pub line: u32,
}

/// A named linear-memory object (global scalar or array), for harness and
/// test inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct MemObject {
    /// Source name.
    pub name: String,
    /// Byte address.
    pub addr: u64,
    /// Total size in bytes.
    pub size: u64,
    /// Element type.
    pub elem: ElemTy,
}

/// A complete typed program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HProgram {
    /// Functions.
    pub funcs: Vec<HFunc>,
    /// Interned signatures (used by `call_indirect` checks).
    pub sigs: Vec<HSig>,
    /// Signature index of each function.
    pub func_sigs: Vec<u32>,
    /// The merged function table (function indices).
    pub table: Vec<u32>,
    /// Total linear-memory bytes the program needs.
    pub memory_size: u64,
    /// Initialized data segments.
    pub data: Vec<(u64, Vec<u8>)>,
    /// Named memory objects (globals and arrays), for inspection.
    pub objects: Vec<MemObject>,
}

impl HProgram {
    /// Finds a function index by name.
    pub fn func_by_name(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Finds a memory object by name.
    pub fn object(&self, name: &str) -> Option<&MemObject> {
        self.objects.iter().find(|o| o.name == name)
    }
}
