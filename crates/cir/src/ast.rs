//! Parser-level abstract syntax.

use core::fmt;

/// Scalar value types usable for locals, parameters, and globals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Ty {
    I32,
    I64,
    U32,
    U64,
    F32,
    F64,
}

impl Ty {
    /// True for the signed or unsigned integer types.
    pub fn is_int(self) -> bool {
        !matches!(self, Ty::F32 | Ty::F64)
    }

    /// True for the unsigned integer types.
    pub fn is_unsigned(self) -> bool {
        matches!(self, Ty::U32 | Ty::U64)
    }

    /// True for 64-bit-wide types.
    pub fn is_wide(self) -> bool {
        matches!(self, Ty::I64 | Ty::U64 | Ty::F64)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::U32 => "u32",
            Ty::U64 => "u64",
            Ty::F32 => "f32",
            Ty::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// Element types for arrays (adds sub-word integers to [`Ty`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ElemTy {
    I8,
    U8,
    I16,
    U16,
    Full(Ty),
}

impl ElemTy {
    /// Element size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            ElemTy::I8 | ElemTy::U8 => 1,
            ElemTy::I16 | ElemTy::U16 => 2,
            ElemTy::Full(t) => {
                if t.is_wide() {
                    8
                } else {
                    4
                }
            }
        }
    }

    /// The scalar type an element loads as.
    ///
    /// Sub-word elements promote to `i32` (as in C's integer promotions);
    /// whether the load zero- or sign-extends is determined separately by
    /// the element type's signedness.
    pub fn load_ty(self) -> Ty {
        match self {
            ElemTy::I8 | ElemTy::I16 | ElemTy::U8 | ElemTy::U16 => Ty::I32,
            ElemTy::Full(t) => t,
        }
    }
}

impl fmt::Display for ElemTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemTy::I8 => f.write_str("i8"),
            ElemTy::U8 => f.write_str("u8"),
            ElemTy::I16 => f.write_str("i16"),
            ElemTy::U16 => f.write_str("u16"),
            ElemTy::Full(t) => t.fmt(f),
        }
    }
}

/// Binary operators (C precedence, signedness resolved by the checker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    /// Logical not (`!`), yields i32 0/1.
    Not,
    /// Bitwise complement (`~`).
    BitNot,
}

/// Intrinsic (builtin) functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Intrinsic {
    Sqrt,
    Abs,
    Floor,
    Ceil,
    Trunc,
    Nearest,
    Min,
    Max,
    Clz,
    Ctz,
    Popcnt,
    Rotl,
    Rotr,
}

impl Intrinsic {
    /// Looks up an intrinsic by its source-level name.
    pub fn by_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sqrt" => Intrinsic::Sqrt,
            "abs" => Intrinsic::Abs,
            "floor" => Intrinsic::Floor,
            "ceil" => Intrinsic::Ceil,
            "trunc" => Intrinsic::Trunc,
            "nearest" => Intrinsic::Nearest,
            "min" => Intrinsic::Min,
            "max" => Intrinsic::Max,
            "clz" => Intrinsic::Clz,
            "ctz" => Intrinsic::Ctz,
            "popcnt" => Intrinsic::Popcnt,
            "rotl" => Intrinsic::Rotl,
            "rotr" => Intrinsic::Rotr,
            _ => return None,
        })
    }
}

/// An expression, with the source line for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression itself.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal (type decided by context; defaults to `i32`).
    Int(i64),
    /// Float literal (defaults to `f64`).
    Float(f64),
    /// A named local, parameter, global, or `const`.
    Var(String),
    /// `a OP b`.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `OP a`.
    Unary(UnOp, Box<Expr>),
    /// `name[index]` — array element read, or the callee part of an
    /// indirect call when `name` is a table.
    Index(String, Box<Expr>),
    /// `f(args...)` — direct call.
    Call(String, Vec<Expr>),
    /// `tbl[idx](args...)` — indirect call through a function table.
    IndirectCall(String, Box<Expr>, Vec<Expr>),
    /// `ty(expr)` — conversion.
    Cast(Ty, Box<Expr>),
    /// `intrinsic(args...)`.
    Intrinsic(Intrinsic, Vec<Expr>),
    /// `syscall(num, args...)` (up to 5 args), yields i32.
    Syscall(Vec<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name: ty = init;`
    Var {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Ty,
        /// Optional initializer (zero if absent).
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `name = value;`
    Assign {
        /// Target variable (local or global).
        name: String,
        /// New value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `arr[index] = value;`
    StoreIndex {
        /// Array name.
        array: String,
        /// Element index.
        index: Expr,
        /// Stored value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>),
    /// `do { .. } while (cond);`
    DoWhile(Vec<Stmt>, Expr),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// `return expr?;`
    Return(Option<Expr>, u32),
    /// An expression evaluated for side effects.
    Expr(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, Ty)>,
    /// Return type, if any.
    pub ret: Option<Ty>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// A global scalar variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Constant initializer expression.
    pub init: Option<Expr>,
}

/// How an array is initialized.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayInit {
    /// `array t name[SIZE];` — zero-initialized with a const size.
    Size(Expr),
    /// `array t name = [a, b, c];` — constant element list.
    List(Vec<Expr>),
    /// `array u8 name = "bytes";` — byte-string initializer.
    Str(Vec<u8>),
}

/// A statically allocated array in linear memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDef {
    /// Name.
    pub name: String,
    /// Element type.
    pub elem: ElemTy,
    /// Initializer / size.
    pub init: ArrayInit,
    /// Source line.
    pub line: u32,
}

/// A function table (`table name = [f, g, h];`).
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Name.
    pub name: String,
    /// Member function names (all must share one signature).
    pub funcs: Vec<String>,
    /// Source line.
    pub line: u32,
}

/// A compile-time integer constant (`const N = 4 * 16;`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDef {
    /// Name.
    pub name: String,
    /// Constant expression (must fold to an integer).
    pub value: Expr,
}

/// A whole CLite program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// `const` definitions, in order.
    pub consts: Vec<ConstDef>,
    /// Global scalars.
    pub globals: Vec<GlobalDef>,
    /// Arrays.
    pub arrays: Vec<ArrayDef>,
    /// Function tables.
    pub tables: Vec<TableDef>,
    /// Functions.
    pub funcs: Vec<Func>,
}
