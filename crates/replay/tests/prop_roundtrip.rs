//! Property test: any recording survives serialize → load → replay with
//! byte-identical results, traps, and counters — raw and reduced alike.

use proptest::prelude::*;
use std::sync::Arc;
use wasmperf_replay::{reduce, Recording, ReplayError, ReplayKernel, ReplayRecord};
use wasmperf_trace::MAX_ARGS;

/// A generated syscall record with a shape the replayer accepts: data
/// only on out-pointer syscalls, i386 numbers from the kernel's set.
fn record_strategy() -> impl Strategy<Value = ReplayRecord> {
    let plain = prop_oneof![
        Just(4i32),
        Just(5),
        Just(6),
        Just(19),
        Just(20),
        Just(33),
        Just(118)
    ];
    let with_data = prop_oneof![Just(3i32), Just(42), Just(106), Just(108)];
    prop_oneof![
        (plain, any::<i32>(), 0u64..10_000, 0u64..100_000).prop_map(
            |(nr, ret, payload, cycles)| ReplayRecord {
                nr,
                args: [0; MAX_ARGS],
                ret,
                payload,
                transport_cycles: cycles,
                service_cycles: 600,
                fs_cycles: cycles / 7,
                data: Vec::new(),
            }
        ),
        (with_data, proptest::collection::vec(any::<u8>(), 1..64)).prop_map(|(nr, data)| {
            ReplayRecord {
                nr,
                args: [0; MAX_ARGS],
                ret: data.len() as i32,
                payload: data.len() as u64,
                transport_cycles: 4000 + data.len() as u64 / 4,
                service_cycles: 600,
                fs_cycles: 0,
                data,
            }
        }),
    ]
}

fn recording_strategy() -> impl Strategy<Value = Recording> {
    const NAMES: [&str; 4] = ["io.rwmix", "gemm", "replay.t1", "x"];
    (
        0usize..NAMES.len(),
        proptest::collection::vec(record_strategy(), 0..40),
        any::<i32>(),
    )
        .prop_map(|(name, records, checksum)| Recording {
            name: NAMES[name].to_string(),
            size: "test".into(),
            source: "int main() { return 0; }".into(),
            inputs: vec![("/in".into(), vec![7u8; 32])],
            checksum,
            reduced: false,
            records,
        })
}

/// Everything observable from a replay: (ret, cycles) pairs, written
/// bytes, and the kernel's cycle/byte/syscall totals.
type Observed = (Vec<(i32, u64)>, Vec<Vec<u8>>, u64, u64, u64);

/// Replays `rec` by issuing exactly its recorded call sequence at fresh
/// addresses; returns everything observable.
fn drive(rec: &Recording) -> Observed {
    let mut k = ReplayKernel::new(Arc::new(rec.clone()));
    let mut rets = Vec::new();
    let mut datas = Vec::new();
    let mut mem = vec![0u8; 1 << 16];
    for r in &rec.records {
        // Synthesize a call matching the record: number and an
        // out-pointer at a fixed scratch address.
        let mut args = vec![r.nr, 0, 0, 0];
        match r.nr {
            3 => {
                args[2] = 0x8000;
                args[3] = r.data.len() as i32;
            }
            42 => args[1] = 0x8000,
            106 | 108 => args[2] = 0x8000,
            _ => {}
        }
        mem[0x8000..0x8000 + r.data.len().max(1)].fill(0);
        let out = k.syscall(&args, mem.as_mut_slice()).expect("no divergence");
        rets.push(out);
        datas.push(mem[0x8000..0x8000 + r.data.len()].to_vec());
    }
    k.finish().expect("complete replay");
    (
        rets,
        datas,
        k.stats.kernel_cycles,
        k.stats.bytes_marshalled,
        k.stats.syscalls,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_load_replay_is_identity(rec in recording_strategy()) {
        // Exclude exit-mid-stream shapes: generated records never use
        // nr 1, so the whole sequence replays.
        let loaded = Recording::from_jsonl(&rec.to_jsonl()).unwrap();
        prop_assert_eq!(&loaded, &rec);

        let reduced = reduce(&rec);
        let loaded_reduced = Recording::from_jsonl(&reduced.to_jsonl()).unwrap();
        prop_assert_eq!(&loaded_reduced, &reduced);

        // Content address is stable across the round trip and the
        // reduction.
        prop_assert_eq!(loaded.content_hash(), loaded_reduced.content_hash());

        // Replaying raw, loaded-raw, reduced, and loaded-reduced all
        // observe the same returns, bytes, and counters.
        let base = drive(&rec);
        prop_assert_eq!(&drive(&loaded), &base);
        prop_assert_eq!(&drive(&reduced), &base);
        prop_assert_eq!(&drive(&loaded_reduced), &base);
    }

    #[test]
    fn torn_tail_never_parses_silently(rec in recording_strategy(), cut in 1usize..40) {
        let text = rec.to_jsonl();
        let cut = cut.min(text.len() - 1);
        let torn = &text[..text.len() - cut];
        // However the file is cut — mid-line (bad JSON) or on a line
        // boundary (record-count mismatch) — the loader reports a
        // structural error rather than returning a shorter recording.
        if torn.len() < text.trim_end().len() {
            match Recording::from_jsonl(torn) {
                Err(ReplayError::Format { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
                Ok(loaded) => prop_assert!(false, "torn file parsed: {} records", loaded.records.len()),
            }
        }
    }
}

#[test]
fn empty_recording_round_trips_and_replays() {
    let rec = Recording {
        name: "gemm".into(),
        size: "test".into(),
        source: "int main() { return 3; }".into(),
        checksum: 3,
        ..Recording::default()
    };
    let loaded = Recording::from_jsonl(&rec.to_jsonl()).unwrap();
    assert_eq!(loaded, rec);
    let (rets, _, cycles, bytes, calls) = drive(&loaded);
    assert!(rets.is_empty());
    assert_eq!((cycles, bytes, calls), (0, 0, 0));
}
