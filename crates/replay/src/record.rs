//! Recording: run a program against the real Browsix kernel while
//! capturing the complete nondeterminism boundary.
//!
//! [`Recorder`] wraps a live [`Kernel`] with strace enabled and a memory
//! tap: every byte the kernel writes into process memory while answering
//! a syscall (a `read` payload, a `pipe` fd pair, a `stat` struct) is
//! captured alongside the strace record. Zipping the two streams yields a
//! [`Recording`] — everything a later replay needs to answer the same
//! syscall sequence with the same bytes, return values, and charged
//! cycles, without a filesystem.
//!
//! Recording is observation-only: the recorder delegates every call to
//! the unmodified kernel, so a recorded run is byte-identical to an
//! un-recorded one (proven by `tests/replay_equivalence.rs`).

use crate::format::{Recording, ReplayError, ReplayRecord};
use wasmperf_browsix::kernel::ProcMem;
use wasmperf_browsix::{AppendPolicy, Kernel};
use wasmperf_cpu::{HostEnv, HostOutcome, Memory};
use wasmperf_isa::TrapKind;
use wasmperf_trace::{syscall_name, StraceLog};

/// Where (if anywhere) the kernel writes process memory answering syscall
/// `nr`: the index of the out-pointer in the full argument vector
/// (`args[0]` being the number). This is the contract that makes
/// recordings engine-portable — replay rewrites the same bytes at the
/// *incoming* call's address, which differs across pipelines while the
/// data does not.
pub(crate) fn out_ptr_arg(nr: i32) -> Option<usize> {
    match nr {
        3 => Some(2),         // read(fd, buf, len) -> buf
        42 => Some(1),        // pipe(fds) -> fds
        106 | 108 => Some(2), // stat(path, buf) / fstat(fd, buf) -> buf
        _ => None,
    }
}

/// A [`ProcMem`] wrapper that logs every successful kernel write.
struct TapMem<'a, M: ProcMem + ?Sized> {
    inner: &'a mut M,
    writes: Vec<(u32, Vec<u8>)>,
}

impl<M: ProcMem + ?Sized> ProcMem for TapMem<'_, M> {
    fn read_mem(&self, addr: u32, len: u32) -> Result<Vec<u8>, ()> {
        self.inner.read_mem(addr, len)
    }

    fn write_mem(&mut self, addr: u32, data: &[u8]) -> Result<(), ()> {
        self.inner.write_mem(addr, data)?;
        self.writes.push((addr, data.to_vec()));
        Ok(())
    }
}

/// A live kernel plus the captured per-syscall write stream.
pub struct Recorder {
    /// The real kernel servicing the run (strace enabled).
    pub kernel: Kernel,
    /// Captured memory writes, one entry per serviced syscall.
    data: Vec<Vec<u8>>,
    /// First unreplayable condition seen, if any.
    error: Option<String>,
}

impl Recorder {
    /// A recorder around a fresh kernel with strace enabled.
    pub fn new(policy: AppendPolicy) -> Recorder {
        let mut kernel = Kernel::new(policy);
        kernel.strace = Some(StraceLog::default());
        Recorder {
            kernel,
            data: Vec::new(),
            error: None,
        }
    }

    /// Services one syscall through the live kernel, capturing what it
    /// wrote into process memory.
    pub(crate) fn record_call<M: ProcMem + ?Sized>(
        &mut self,
        args: &[i32],
        mem: &mut M,
    ) -> (i32, u64) {
        let mut tap = TapMem {
            inner: mem,
            writes: Vec::new(),
        };
        let (ret, cycles) = self.kernel.syscall(args, &mut tap);
        let nr = args.first().copied().unwrap_or(-1);
        let data = match tap.writes.len() {
            0 => Vec::new(),
            1 => {
                let (addr, bytes) = tap.writes.pop().unwrap();
                let expected = out_ptr_arg(nr).map(|i| args.get(i).copied().unwrap_or(0) as u32);
                if expected == Some(addr) {
                    bytes
                } else {
                    self.fail(format!(
                        "{}({nr}) wrote {} bytes at {addr:#x}, not at its out-pointer argument",
                        syscall_name(nr),
                        bytes.len()
                    ));
                    bytes
                }
            }
            n => {
                self.fail(format!(
                    "{}({nr}) performed {n} memory writes; the record format holds one",
                    syscall_name(nr)
                ));
                Vec::new()
            }
        };
        self.data.push(data);
        (ret, cycles)
    }

    fn fail(&mut self, message: String) {
        if self.error.is_none() {
            self.error = Some(message);
        }
    }

    /// Assembles the recording from the strace log and the captured write
    /// stream. `name`/`size` label the workload; `inputs` are the staged
    /// files (kept in raw recordings for provenance); `checksum` is the
    /// finished run's return value.
    pub fn into_recording(
        self,
        name: &str,
        size: &str,
        source: &str,
        inputs: Vec<(String, Vec<u8>)>,
        checksum: i32,
    ) -> Result<Recording, ReplayError> {
        if let Some(message) = self.error {
            return Err(ReplayError::Unreplayable { message });
        }
        let log = self.kernel.strace.unwrap_or_default();
        if log.records.len() != self.data.len() {
            return Err(ReplayError::Unreplayable {
                message: format!(
                    "strace saw {} syscalls but the tap saw {}",
                    log.records.len(),
                    self.data.len()
                ),
            });
        }
        let records = log
            .records
            .into_iter()
            .zip(self.data)
            .map(|(r, data)| ReplayRecord {
                nr: r.nr,
                args: r.args,
                ret: r.ret,
                payload: r.payload,
                transport_cycles: r.transport_cycles,
                service_cycles: r.service_cycles,
                fs_cycles: r.fs_cycles,
                data,
            })
            .collect();
        Ok(Recording {
            name: name.to_string(),
            size: size.to_string(),
            source: source.to_string(),
            inputs,
            checksum,
            reduced: false,
            records,
        })
    }
}

// The three host-interface impls mirror the live kernel's exactly, so
// swapping a Recorder in changes nothing the program can observe.

impl HostEnv for Recorder {
    fn call(
        &mut self,
        _id: u32,
        args: &[u64; 6],
        mem: &mut Memory,
    ) -> Result<HostOutcome, TrapKind> {
        let iargs: Vec<i32> = args.iter().map(|&v| v as u32 as i32).collect();
        let (ret, cycles) = self.record_call(&iargs, mem);
        if let Some(code) = self.kernel.exit_code {
            return Ok(HostOutcome::Exit {
                code,
                kernel_cycles: cycles,
            });
        }
        Ok(HostOutcome::Ret {
            value: ret as u32 as u64,
            kernel_cycles: cycles,
        })
    }
}

impl wasmperf_cir::CliteHost for Recorder {
    fn syscall(&mut self, args: &[i32], mem: &mut [u8]) -> Result<i32, String> {
        let (ret, _) = self.record_call(args, mem);
        if let Some(code) = self.kernel.exit_code {
            return Err(format!("exit({code})"));
        }
        Ok(ret)
    }
}

impl wasmperf_wasm::ImportHost for Recorder {
    fn call(
        &mut self,
        _module: &str,
        _field: &str,
        args: &[wasmperf_wasm::Value],
        mem: &mut Vec<u8>,
    ) -> Result<Option<wasmperf_wasm::Value>, wasmperf_wasm::WasmTrap> {
        let iargs: Vec<i32> = args.iter().map(wasmperf_wasm::Value::unwrap_i32).collect();
        let (ret, _) = self.record_call(&iargs, mem.as_mut_slice());
        if let Some(code) = self.kernel.exit_code {
            return Err(wasmperf_wasm::WasmTrap::Host(format!("exit({code})")));
        }
        Ok(Some(wasmperf_wasm::Value::I32(ret)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_a_write_read_sequence() {
        let mut rec = Recorder::new(AppendPolicy::Chunked4K);
        let mut mem = vec![0u8; 65536];
        mem[0x100..0x105].copy_from_slice(b"/f\0\0\0");
        mem[0x200..0x204].copy_from_slice(b"abcd");

        use wasmperf_browsix::kernel::flags;
        let fd = {
            let (ret, _) = rec.record_call(
                &[5, 0x100, flags::O_CREAT | flags::O_RDWR, 0],
                mem.as_mut_slice(),
            );
            ret
        };
        assert!(fd >= 0);
        let (w, _) = rec.record_call(&[4, fd, 0x200, 4], mem.as_mut_slice());
        assert_eq!(w, 4);
        let (s, _) = rec.record_call(&[19, fd, 0, 0], mem.as_mut_slice());
        assert_eq!(s, 0);
        let (r, _) = rec.record_call(&[3, fd, 0x300, 4], mem.as_mut_slice());
        assert_eq!(r, 4);
        assert_eq!(&mem[0x300..0x304], b"abcd");
        rec.record_call(&[1, 0], mem.as_mut_slice());

        let recording = rec
            .into_recording("t", "test", "int main(){}", Vec::new(), 0)
            .unwrap();
        assert_eq!(recording.records.len(), 5);
        let read = &recording.records[3];
        assert_eq!(read.nr, 3);
        assert_eq!(read.data, b"abcd");
        assert!(read.cycles() > 0);
        // Non-writing syscalls carry no data.
        assert!(recording.records[0].data.is_empty());
        assert!(recording.records[1].data.is_empty());
    }

    #[test]
    fn captures_pipe_and_fstat_out_structs() {
        let mut rec = Recorder::new(AppendPolicy::Chunked4K);
        let mut mem = vec![0u8; 65536];
        let (ret, _) = rec.record_call(&[42, 0x400], mem.as_mut_slice());
        assert_eq!(ret, 0);
        let (ret, _) = rec.record_call(&[108, 1, 0x500], mem.as_mut_slice());
        assert_eq!(ret, 0);
        let recording = rec
            .into_recording("t", "test", "int main(){}", Vec::new(), 0)
            .unwrap();
        assert_eq!(recording.records[0].data.len(), 8); // two i32 fds
        assert_eq!(recording.records[1].data.len(), 16); // stat struct
    }
}
