//! Trace reduction: shrink a raw recording without changing what it
//! replays.
//!
//! Reduction is lossy only about *observation-only* content — things the
//! replay kernel never consults:
//!
//! - staged input files are dropped (replay answers every `read` from the
//!   records, never from a filesystem);
//! - per-record argument vectors are zeroed (replay writes payload bytes
//!   at the *incoming* call's addresses, matched positionally by syscall
//!   number);
//! - at encode time, identical payload byte strings are deduplicated into
//!   a shared blob table, and repeated call patterns (up to period 8) are
//!   collapsed into `loop` lines.
//!
//! Everything replay behavior depends on survives byte for byte, which is
//! why [`Recording::content_hash`] is identical before and after — and
//! why the `--verify` mode of the CLI can prove raw and reduced replays
//! byte-identical.

use crate::format::Recording;
use wasmperf_trace::MAX_ARGS;

/// Produces the reduced form of a recording. Idempotent; the content
/// hash is unchanged.
pub fn reduce(rec: &Recording) -> Recording {
    let mut out = rec.clone();
    out.reduced = true;
    out.inputs.clear();
    for r in &mut out.records {
        r.args = [0; MAX_ARGS];
    }
    out
}

/// Reduction ratio: raw serialized bytes over reduced serialized bytes.
pub fn ratio(raw: &Recording, reduced: &Recording) -> f64 {
    let a = raw.to_jsonl().len() as f64;
    let b = reduced.to_jsonl().len().max(1) as f64;
    a / b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{ReplayRecord, SCHEMA_VERSION};

    fn raw() -> Recording {
        let rec = |nr: i32, ret: i32, data: Vec<u8>| ReplayRecord {
            nr,
            args: [7, 0x4000, 1024, 0, 0],
            ret,
            payload: data.len() as u64,
            transport_cycles: 4000,
            service_cycles: 600,
            fs_cycles: 0,
            data,
        };
        let mut records = vec![rec(5, 3, vec![])];
        for _ in 0..50 {
            records.push(rec(3, 1024, vec![0xab; 1024]));
            records.push(rec(4, 1024, vec![]));
        }
        records.push(rec(1, 0, vec![]));
        Recording {
            name: "loopy".into(),
            size: "test".into(),
            source: "int main() { return 0; }".into(),
            inputs: vec![("/in".into(), vec![0xab; 51200])],
            checksum: 0,
            reduced: false,
            records,
        }
    }

    #[test]
    fn reduce_preserves_replay_content() {
        let a = raw();
        let b = reduce(&a);
        assert!(b.reduced);
        assert!(b.inputs.is_empty());
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.nr, y.nr);
            assert_eq!(x.ret, y.ret);
            assert_eq!(x.data, y.data);
            assert_eq!(x.cycles(), y.cycles());
        }
        // Idempotent.
        assert_eq!(reduce(&b), b);
    }

    #[test]
    fn reduction_shrinks_repetitive_recordings_substantially() {
        let a = raw();
        let b = reduce(&a);
        let r = ratio(&a, &b);
        assert!(r > 10.0, "reduction ratio only {r:.1}x");
        // And the reduced text still decodes to the same records.
        let back = Recording::from_jsonl(&b.to_jsonl()).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.content_hash(), a.content_hash());
    }

    #[test]
    fn reduced_header_is_versioned() {
        let text = reduce(&raw()).to_jsonl();
        let head = text.lines().next().unwrap();
        assert!(head.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
        assert!(head.contains("\"reduced\":true"));
    }
}
