//! Replay: answer a program's syscalls from a recording instead of a
//! live kernel.
//!
//! [`ReplayKernel`] is a `Kernel`-shaped sibling of the Browsix kernel:
//! it implements the same three host interfaces (`HostEnv`, `CliteHost`,
//! `ImportHost`), but each syscall is answered from the next record —
//! same return value, same payload bytes written into process memory,
//! same charged kernel cycles — with no filesystem behind it. Because the
//! syscall *stream* (numbers, returns, payload bytes) is identical across
//! engines while buffer *addresses* differ, the replay kernel writes each
//! record's data at the incoming call's out-pointer, matched positionally
//! by syscall number.
//!
//! Any mismatch between the program and the recording — different
//! syscall number, calls past the end of the recording, a bad pointer —
//! is a **divergence**: the run traps deterministically with a message
//! naming the record index and the syscall names involved.

use std::sync::Arc;

use crate::format::{Recording, ReplayError};
use crate::record::out_ptr_arg;
use wasmperf_browsix::kernel::ProcMem;
use wasmperf_browsix::{KernelStats, KernelTiming};
use wasmperf_cpu::{HostEnv, HostOutcome, Memory};
use wasmperf_isa::TrapKind;
use wasmperf_trace::{syscall_name, StraceLog, SyscallRecord, MAX_ARGS};

/// A kernel that answers every syscall from a [`Recording`].
pub struct ReplayKernel {
    rec: Arc<Recording>,
    /// Next record to serve.
    cursor: usize,
    /// Aggregate statistics, mirroring the live kernel's accounting so
    /// `RunResult` counters match the recorded run's exactly.
    pub stats: KernelStats,
    /// Exit code once the recorded `exit` is replayed.
    pub exit_code: Option<i32>,
    /// Optional strace log, synthesized from the records as they are
    /// served (with the *incoming* call's arguments).
    pub strace: Option<StraceLog>,
    /// First divergence seen; sticky — every later call fails with it.
    divergence: Option<String>,
    /// Timing model, used only to reconstruct the chunk-count statistic.
    timing: KernelTiming,
}

impl ReplayKernel {
    /// A replay kernel positioned at the start of `rec`.
    pub fn new(rec: Arc<Recording>) -> ReplayKernel {
        ReplayKernel {
            rec,
            cursor: 0,
            stats: KernelStats::default(),
            exit_code: None,
            strace: None,
            divergence: None,
            timing: KernelTiming::default(),
        }
    }

    /// The first divergence, if the replayed program strayed from the
    /// recording.
    pub fn divergence(&self) -> Option<&str> {
        self.divergence.as_deref()
    }

    fn diverge(&mut self, message: String) -> String {
        let message = format!("{} [recording {}]", message, self.rec.name);
        if self.divergence.is_none() {
            self.divergence = Some(message.clone());
        }
        message
    }

    /// Serves one syscall from the recording.
    pub fn syscall<M: ProcMem + ?Sized>(
        &mut self,
        args: &[i32],
        mem: &mut M,
    ) -> Result<(i32, u64), String> {
        if let Some(d) = &self.divergence {
            return Err(d.clone());
        }
        let nr = args.first().copied().unwrap_or(-1);
        let idx = self.cursor;
        let Some(r) = self.rec.records.get(idx) else {
            let total = self.rec.records.len();
            return Err(self.diverge(format!(
                "syscall #{idx} {}({nr}): recording ended after {total} records",
                syscall_name(nr)
            )));
        };
        if r.nr != nr {
            let (want, got) = (syscall_name(r.nr), syscall_name(nr));
            let (rnr, rret) = (r.nr, r.ret);
            return Err(self.diverge(format!(
                "syscall #{idx}: program called {got}({nr}), recording has {want}({rnr}) = {rret}"
            )));
        }
        if !r.data.is_empty() {
            let Some(ptr_idx) = out_ptr_arg(nr) else {
                let name = syscall_name(nr);
                let len = r.data.len();
                return Err(self.diverge(format!(
                    "syscall #{idx} {name}({nr}): record carries {len} data bytes but the call has no out-pointer"
                )));
            };
            let addr = args.get(ptr_idx).copied().unwrap_or(0) as u32;
            if mem.write_mem(addr, &r.data).is_err() {
                let name = syscall_name(nr);
                let len = r.data.len();
                return Err(self.diverge(format!(
                    "syscall #{idx} {name}({nr}): EFAULT writing {len} replay bytes at {addr:#x}"
                )));
            }
        }

        // Charge exactly what the live kernel charged, and keep its
        // aggregate accounting (including the derived chunk count, which
        // is a pure function of payload and the timing model).
        let cycles = r.cycles();
        let start_cycles = self.stats.kernel_cycles;
        self.stats.syscalls += 1;
        self.stats.kernel_cycles += cycles;
        self.stats.transport_cycles += r.transport_cycles;
        self.stats.service_cycles += r.service_cycles;
        self.stats.fs_copy_cycles += r.fs_cycles;
        self.stats.bytes_marshalled += r.payload;
        self.stats.chunk_messages += r.payload.div_ceil(self.timing.aux_buffer_bytes).max(1) - 1;

        if self.strace.is_some() {
            let mut rec_args = [0i32; MAX_ARGS];
            for (slot, &arg) in rec_args.iter_mut().zip(args.iter().skip(1)) {
                *slot = arg;
            }
            let record = SyscallRecord {
                nr,
                args: rec_args,
                ret: r.ret,
                payload: r.payload,
                cycles,
                transport_cycles: r.transport_cycles,
                service_cycles: r.service_cycles,
                fs_cycles: r.fs_cycles,
                start_cycles,
            };
            if let Some(log) = self.strace.as_mut() {
                log.records.push(record);
            }
        }

        if nr == 1 {
            self.exit_code = Some(args.get(1).copied().unwrap_or(0));
        }
        self.cursor += 1;
        Ok((r.ret, cycles))
    }

    /// Verifies the replay consumed the recording exactly: no divergence
    /// and every record served.
    pub fn finish(&self) -> Result<(), ReplayError> {
        if let Some(message) = &self.divergence {
            return Err(ReplayError::Divergence {
                message: message.clone(),
            });
        }
        if self.cursor != self.rec.records.len() {
            return Err(ReplayError::Divergence {
                message: format!(
                    "program made {} of {} recorded syscalls [recording {}]",
                    self.cursor,
                    self.rec.records.len(),
                    self.rec.name
                ),
            });
        }
        Ok(())
    }
}

impl HostEnv for ReplayKernel {
    fn call(
        &mut self,
        _id: u32,
        args: &[u64; 6],
        mem: &mut Memory,
    ) -> Result<HostOutcome, TrapKind> {
        let iargs: Vec<i32> = args.iter().map(|&v| v as u32 as i32).collect();
        // The divergence message is retrievable from the host after the
        // run; the trap itself is the deterministic abort.
        let (ret, cycles) = self.syscall(&iargs, mem).map_err(|_| TrapKind::Abort)?;
        if let Some(code) = self.exit_code {
            return Ok(HostOutcome::Exit {
                code,
                kernel_cycles: cycles,
            });
        }
        Ok(HostOutcome::Ret {
            value: ret as u32 as u64,
            kernel_cycles: cycles,
        })
    }
}

impl wasmperf_cir::CliteHost for ReplayKernel {
    fn syscall(&mut self, args: &[i32], mem: &mut [u8]) -> Result<i32, String> {
        let (ret, _) = ReplayKernel::syscall(self, args, mem)?;
        if let Some(code) = self.exit_code {
            return Err(format!("exit({code})"));
        }
        Ok(ret)
    }
}

impl wasmperf_wasm::ImportHost for ReplayKernel {
    fn call(
        &mut self,
        _module: &str,
        _field: &str,
        args: &[wasmperf_wasm::Value],
        mem: &mut Vec<u8>,
    ) -> Result<Option<wasmperf_wasm::Value>, wasmperf_wasm::WasmTrap> {
        let iargs: Vec<i32> = args.iter().map(wasmperf_wasm::Value::unwrap_i32).collect();
        let (ret, _) = ReplayKernel::syscall(self, &iargs, mem.as_mut_slice())
            .map_err(wasmperf_wasm::WasmTrap::Host)?;
        if let Some(code) = self.exit_code {
            return Err(wasmperf_wasm::WasmTrap::Host(format!("exit({code})")));
        }
        Ok(Some(wasmperf_wasm::Value::I32(ret)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Recorder;
    use wasmperf_browsix::kernel::flags;
    use wasmperf_browsix::AppendPolicy;

    /// Drives the same syscall sequence against a live recorder and then
    /// against the resulting recording.
    fn record_sequence() -> Recording {
        let mut rec = Recorder::new(AppendPolicy::Chunked4K);
        let mut mem = vec![0u8; 65536];
        mem[0x100..0x103].copy_from_slice(b"/f\0");
        mem[0x200..0x204].copy_from_slice(b"abcd");
        let (fd, _) = rec.record_call(
            &[5, 0x100, flags::O_CREAT | flags::O_RDWR, 0],
            mem.as_mut_slice(),
        );
        rec.record_call(&[4, fd, 0x200, 4], mem.as_mut_slice());
        rec.record_call(&[19, fd, 0, 0], mem.as_mut_slice());
        rec.record_call(&[3, fd, 0x300, 4], mem.as_mut_slice());
        rec.record_call(&[6, fd, 0, 0], mem.as_mut_slice());
        rec.record_call(&[1, 7], mem.as_mut_slice());
        rec.into_recording("seq", "test", "int main(){}", Vec::new(), 7)
            .unwrap()
    }

    #[test]
    fn replay_reproduces_returns_data_and_cycles() {
        let recording = record_sequence();
        let total = recording.total_cycles();
        let mut k = ReplayKernel::new(Arc::new(recording.clone()));
        k.strace = Some(StraceLog::default());
        // Same logical calls, different buffer addresses (another
        // engine's layout).
        let mut mem = vec![0u8; 65536];
        let (fd, _) = k
            .syscall(&[5, 0x9100, 0x42, 0], mem.as_mut_slice())
            .unwrap();
        assert_eq!(fd, recording.records[0].ret);
        let (w, _) = k.syscall(&[4, fd, 0x9200, 4], mem.as_mut_slice()).unwrap();
        assert_eq!(w, 4);
        k.syscall(&[19, fd, 0, 0], mem.as_mut_slice()).unwrap();
        let (r, c) = k.syscall(&[3, fd, 0x9300, 4], mem.as_mut_slice()).unwrap();
        assert_eq!(r, 4);
        assert_eq!(&mem[0x9300..0x9304], b"abcd"); // data at the NEW address
        assert_eq!(c, recording.records[3].cycles());
        k.syscall(&[6, fd, 0, 0], mem.as_mut_slice()).unwrap();
        k.syscall(&[1, 7], mem.as_mut_slice()).unwrap();
        assert_eq!(k.exit_code, Some(7));
        k.finish().unwrap();
        assert_eq!(k.stats.kernel_cycles, total);
        assert_eq!(k.stats.syscalls, 6);
        let log = k.strace.unwrap();
        assert_eq!(log.total_cycles(), total);
        assert_eq!(log.records[3].args[1], 0x9300);
    }

    #[test]
    fn wrong_syscall_is_a_sticky_divergence() {
        let recording = record_sequence();
        let mut k = ReplayKernel::new(Arc::new(recording));
        let mut mem = vec![0u8; 4096];
        let err = k.syscall(&[20], mem.as_mut_slice()).unwrap_err();
        assert!(err.contains("getpid(20)"), "{err}");
        assert!(err.contains("open(5)"), "{err}");
        assert!(err.contains("#0"), "{err}");
        // Sticky: the right call now fails too.
        let err2 = k.syscall(&[5, 0, 0, 0], mem.as_mut_slice()).unwrap_err();
        assert_eq!(err, err2);
        assert!(k.finish().is_err());
    }

    #[test]
    fn running_past_the_recording_diverges() {
        let recording = Recording {
            name: "empty".into(),
            size: "test".into(),
            source: String::new(),
            checksum: 0,
            ..Recording::default()
        };
        let mut k = ReplayKernel::new(Arc::new(recording));
        let mut mem = vec![0u8; 64];
        let err = k.syscall(&[4, 1, 0, 0], mem.as_mut_slice()).unwrap_err();
        assert!(err.contains("ended after 0 records"), "{err}");
    }

    #[test]
    fn incomplete_replay_fails_finish() {
        let recording = record_sequence();
        let n = recording.records.len();
        let mut k = ReplayKernel::new(Arc::new(recording));
        let mut mem = vec![0u8; 4096];
        k.syscall(&[5, 0, 0x42, 0], mem.as_mut_slice()).unwrap();
        let err = k.finish().unwrap_err();
        match err {
            ReplayError::Divergence { message } => {
                assert!(message.contains(&format!("1 of {n}")), "{message}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_recording_diverges_deterministically() {
        let mut recording = record_sequence();
        recording.records.pop();
        let mut k = ReplayKernel::new(Arc::new(recording));
        let mut mem = vec![0u8; 65536];
        k.syscall(&[5, 0x100, 0x42, 0], mem.as_mut_slice()).unwrap();
        k.syscall(&[4, 0, 0x200, 4], mem.as_mut_slice()).unwrap();
        k.syscall(&[19, 0, 0, 0], mem.as_mut_slice()).unwrap();
        k.syscall(&[3, 0, 0x300, 4], mem.as_mut_slice()).unwrap();
        k.syscall(&[6, 0, 0, 0], mem.as_mut_slice()).unwrap();
        let err = k.syscall(&[1, 7], mem.as_mut_slice()).unwrap_err();
        assert!(err.contains("ended after 5 records"), "{err}");
    }

    #[test]
    fn reduced_recordings_replay_identically() {
        let raw = record_sequence();
        let reduced = crate::reduce(&raw);
        let run = |rec: Recording| {
            let mut k = ReplayKernel::new(Arc::new(rec));
            let mut mem = vec![0u8; 65536];
            let mut rets = Vec::new();
            for args in [
                vec![5, 0x100, 0x42, 0],
                vec![4, 3, 0x200, 4],
                vec![19, 3, 0, 0],
                vec![3, 3, 0x300, 4],
                vec![6, 3, 0, 0],
                vec![1, 7],
            ] {
                rets.push(k.syscall(&args, mem.as_mut_slice()).unwrap());
            }
            k.finish().unwrap();
            (rets, mem[0x300..0x304].to_vec(), k.stats, k.exit_code)
        };
        assert_eq!(run(raw), run(reduced));
    }
}
