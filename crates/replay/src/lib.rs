//! wasmperf-replay: record–reduce–replay for realistic standalone
//! benchmarks (Wasm-R3 style).
//!
//! The paper's suite is SPEC/polybench-style kernels; real applications
//! are syscall-heavy and phase-shifting. This crate captures any run's
//! complete nondeterminism boundary into a versioned, content-addressed
//! recording ([`record`]), shrinks it without changing what it replays
//! ([`reduce`]), and replays it deterministically on every pipeline by
//! answering each syscall from the recording while charging the original
//! cost-model cycles ([`replay`]).
//!
//! The determinism contract (see `docs/REPLAY.md`): the syscall *stream*
//! — numbers, returns, payload bytes, charged cycles — is identical
//! across engines; only buffer addresses differ. So a recording captured
//! on one pipeline replays on all of them, and a replayed run's kernel
//! counters equal the recorded run's exactly.

#![warn(missing_docs)]

pub mod format;
pub mod record;
pub mod reduce;
pub mod replay;

pub use format::{Recording, ReplayError, ReplayRecord, SCHEMA_VERSION};
pub use record::Recorder;
pub use reduce::{ratio, reduce};
pub use replay::ReplayKernel;

use std::path::Path;

/// File extension for recordings.
pub const EXTENSION: &str = "replay";

/// Loads a recording from a `.replay` file.
pub fn load(path: &Path) -> Result<Recording, ReplayError> {
    let text = std::fs::read_to_string(path).map_err(|e| ReplayError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    Recording::from_jsonl(&text)
}

/// Writes a recording to a `.replay` file.
pub fn save(rec: &Recording, path: &Path) -> Result<(), ReplayError> {
    std::fs::write(path, rec.to_jsonl()).map_err(|e| ReplayError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Loads every `*.replay` file in a directory, sorted by file name for
/// deterministic ordering. A missing directory is an empty corpus, not
/// an error; a malformed file is an error naming the file.
pub fn load_dir(dir: &Path) -> Result<Vec<Recording>, ReplayError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()),
    };
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|x| x == EXTENSION).unwrap_or(false))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in &paths {
        out.push(load(p).map_err(|e| match e {
            ReplayError::Format { line, message } => ReplayError::Format {
                line,
                message: format!("{}: {message}", p.display()),
            },
            other => other,
        })?);
    }
    Ok(out)
}
