//! The versioned, content-addressed `.replay` recording format.
//!
//! A recording is JSONL (one JSON object per line, rendered by the
//! workspace codec in `wasmperf-trace`): a header line, the program
//! source, optionally the staged input files, and then the run's complete
//! nondeterminism boundary — one record per Browsix syscall carrying the
//! arguments, return value, payload bytes the kernel wrote into process
//! memory, and the cost-model cycle split. Everything a replay kernel
//! needs to answer the same syscall sequence with the same bytes and the
//! same charged cycles, on any pipeline.
//!
//! Two encodings share the format:
//!
//! - **raw** (`"reduced":false`): one `syscall` line per record, inputs
//!   included, arguments verbatim;
//! - **reduced** (`"reduced":true`): payload bytes deduplicated into a
//!   `blob` table, repeated call patterns collapsed into `loop` lines,
//!   and observation-only content (staged inputs, argument vectors, which
//!   replay never consults) dropped.
//!
//! Both decode to the same [`Recording`] (reduced records carry zeroed
//! args) and replay byte-identically; [`Recording::content_hash`]
//! deliberately skips the observation-only fields so a raw recording and
//! its reduction share one content address.

use wasmperf_trace::hash::{hex64, parse_hex64, Fnv};
use wasmperf_trace::json::Json;
use wasmperf_trace::MAX_ARGS;

/// Version stamp of the recording format. The loader rejects any other
/// version outright — misparsing a recording silently would poison every
/// downstream byte-identity check.
pub const SCHEMA_VERSION: u32 = 1;

/// Errors from loading, recording, or replaying a recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The file declares a schema version this build does not speak.
    Version {
        /// Version found in the header.
        found: u64,
        /// Version this build supports.
        supported: u32,
    },
    /// A structural problem at a specific line (bad JSON, missing field,
    /// torn tail write, record-count or content-hash mismatch).
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The run cannot be captured as a replayable recording (e.g. a
    /// syscall wrote process memory somewhere the replayer cannot
    /// reproduce from the record alone).
    Unreplayable {
        /// What went wrong.
        message: String,
    },
    /// A replayed program diverged from the recording.
    Divergence {
        /// What went wrong, with the record index and syscall names.
        message: String,
    },
    /// Filesystem-level failure reading or writing a recording.
    Io {
        /// The path involved.
        path: String,
        /// The OS error.
        message: String,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Version { found, supported } => write!(
                f,
                "recording schema_version {found} is not supported \
                 (this build reads version {supported}); re-record with a \
                 matching wasmperf-replay"
            ),
            ReplayError::Format { line, message } => {
                write!(f, "recording line {line}: {message}")
            }
            ReplayError::Unreplayable { message } => {
                write!(f, "run is not replayable: {message}")
            }
            ReplayError::Divergence { message } => {
                write!(f, "replay divergence: {message}")
            }
            ReplayError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// One recorded syscall: everything the replay kernel needs to answer it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayRecord {
    /// Syscall number.
    pub nr: i32,
    /// Arguments as recorded (zeroed in reduced recordings; replay
    /// answers at the *incoming* call's addresses, so these are
    /// observation-only).
    pub args: [i32; MAX_ARGS],
    /// Return value (negative errno on failure).
    pub ret: i32,
    /// Payload bytes marshalled through the auxiliary buffer.
    pub payload: u64,
    /// Transport component of the charged kernel cycles.
    pub transport_cycles: u64,
    /// In-kernel service component.
    pub service_cycles: u64,
    /// Filesystem buffer-growth copying component.
    pub fs_cycles: u64,
    /// Bytes the kernel wrote into process memory answering this call
    /// (`read` payload, `pipe` fd pair, `stat`/`fstat` struct) — empty
    /// for calls that write nothing.
    pub data: Vec<u8>,
}

impl ReplayRecord {
    /// Total kernel cycles charged for this call — the three cost-model
    /// components, which sum exactly by the kernel's invariant.
    pub fn cycles(&self) -> u64 {
        self.transport_cycles + self.service_cycles + self.fs_cycles
    }
}

/// A complete recording of one run's nondeterminism boundary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Recording {
    /// Benchmark name the recording was captured from.
    pub name: String,
    /// Workload size tag ("test" / "ref").
    pub size: String,
    /// The CLite source of the recorded program (replay re-compiles it on
    /// every pipeline; only the syscall boundary is canned).
    pub source: String,
    /// Input files staged before the recorded run. Observation-only:
    /// replay answers reads from the records, never from these. Dropped
    /// by reduction.
    pub inputs: Vec<(String, Vec<u8>)>,
    /// The recorded run's checksum (program return value) — replays on
    /// every engine must reproduce it.
    pub checksum: i32,
    /// Whether this recording has been through [`crate::reduce`].
    pub reduced: bool,
    /// The syscall records, in service order.
    pub records: Vec<ReplayRecord>,
}

impl Recording {
    /// The recording's content address: an FNV-1a hash over everything
    /// replay behavior depends on — name, size, source, checksum, and
    /// each record's number, return, payload, cycle split, and data
    /// bytes. Observation-only content (argument vectors, staged inputs,
    /// the `reduced` flag) is excluded, so a raw recording and its
    /// reduction share the same address and hit the same farm cache
    /// entries.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_str(&self.name)
            .write_str(&self.size)
            .write_str(&self.source)
            .write_u64(self.checksum as u32 as u64)
            .write_u64(self.records.len() as u64);
        for r in &self.records {
            h.write_u64(r.nr as u32 as u64)
                .write_u64(r.ret as u32 as u64)
                .write_u64(r.payload)
                .write_u64(r.transport_cycles)
                .write_u64(r.service_cycles)
                .write_u64(r.fs_cycles)
                .write_u64(r.data.len() as u64)
                .write(&r.data);
        }
        h.finish()
    }

    /// Total kernel cycles across all records.
    pub fn total_cycles(&self) -> u64 {
        self.records.iter().map(ReplayRecord::cycles).sum()
    }

    /// Serializes to the JSONL text format. Raw recordings emit one
    /// `syscall` line per record; reduced recordings emit a blob table
    /// plus `call`/`loop` lines (see [`crate::reduce`]).
    pub fn to_jsonl(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        lines.push(
            Json::Obj(vec![
                ("type".into(), Json::Str("header".into())),
                ("format".into(), Json::Str("wasmperf-replay".into())),
                ("schema_version".into(), Json::u64(SCHEMA_VERSION as u64)),
                ("name".into(), Json::Str(self.name.clone())),
                ("size".into(), Json::Str(self.size.clone())),
                ("checksum".into(), Json::Num(self.checksum as f64)),
                ("records".into(), Json::u64(self.records.len() as u64)),
                ("reduced".into(), Json::Bool(self.reduced)),
                ("content_hash".into(), Json::Str(hex64(self.content_hash()))),
            ])
            .render(),
        );
        lines.push(
            Json::Obj(vec![
                ("type".into(), Json::Str("source".into())),
                ("text".into(), Json::Str(self.source.clone())),
            ])
            .render(),
        );
        if self.reduced {
            encode_reduced(&self.records, &mut lines);
        } else {
            for (path, data) in &self.inputs {
                lines.push(
                    Json::Obj(vec![
                        ("type".into(), Json::Str("input".into())),
                        ("path".into(), Json::Str(path.clone())),
                        ("data".into(), Json::Str(hex_bytes(data))),
                    ])
                    .render(),
                );
            }
            for r in &self.records {
                let args: Vec<Json> = r.args.iter().map(|&a| Json::Num(a as f64)).collect();
                lines.push(
                    Json::Obj(vec![
                        ("type".into(), Json::Str("syscall".into())),
                        ("nr".into(), Json::Num(r.nr as f64)),
                        ("args".into(), Json::Arr(args)),
                        ("ret".into(), Json::Num(r.ret as f64)),
                        ("payload".into(), Json::u64(r.payload)),
                        ("transport".into(), Json::u64(r.transport_cycles)),
                        ("service".into(), Json::u64(r.service_cycles)),
                        ("fs".into(), Json::u64(r.fs_cycles)),
                        ("data".into(), Json::Str(hex_bytes(&r.data))),
                    ])
                    .render(),
                );
            }
        }
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Parses the JSONL text format, verifying the schema version, the
    /// header's record count (truncation detection: a torn tail line
    /// fails JSON parsing, a cleanly missing tail fails the count), and
    /// the content hash.
    pub fn from_jsonl(text: &str) -> Result<Recording, ReplayError> {
        let fmt = |line: usize, message: String| ReplayError::Format { line, message };

        let mut rec = Recording::default();
        let mut header: Option<(u64, u64)> = None; // (records, content_hash)
        let mut blobs: Vec<Vec<u8>> = Vec::new();
        let mut last_line = 0usize;

        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            if raw.trim().is_empty() {
                continue;
            }
            last_line = line;
            let v = Json::parse(raw).map_err(|e| fmt(line, format!("bad JSON ({e})")))?;
            let ty = v
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| fmt(line, "missing \"type\" field".into()))?;
            match ty {
                "header" => {
                    if header.is_some() {
                        return Err(fmt(line, "duplicate header".into()));
                    }
                    let format = v.get("format").and_then(Json::as_str).unwrap_or("");
                    if format != "wasmperf-replay" {
                        return Err(fmt(
                            line,
                            format!("not a wasmperf-replay file (format {format:?})"),
                        ));
                    }
                    let version = v
                        .get("schema_version")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fmt(line, "header missing schema_version".into()))?;
                    if version != SCHEMA_VERSION as u64 {
                        return Err(ReplayError::Version {
                            found: version,
                            supported: SCHEMA_VERSION,
                        });
                    }
                    rec.name = req_str(&v, "name", line)?;
                    rec.size = req_str(&v, "size", line)?;
                    rec.checksum = req_i32(&v, "checksum", line)?;
                    rec.reduced = matches!(v.get("reduced"), Some(Json::Bool(true)));
                    let count = v
                        .get("records")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fmt(line, "header missing records count".into()))?;
                    let hash = v
                        .get("content_hash")
                        .and_then(Json::as_str)
                        .and_then(parse_hex64)
                        .ok_or_else(|| fmt(line, "header missing content_hash".into()))?;
                    header = Some((count, hash));
                }
                _ if header.is_none() => {
                    return Err(fmt(line, format!("expected header line first, got {ty:?}")));
                }
                "source" => rec.source = req_str(&v, "text", line)?,
                "input" => {
                    let path = req_str(&v, "path", line)?;
                    let data = req_hex(&v, "data", line)?;
                    rec.inputs.push((path, data));
                }
                "syscall" => {
                    let mut r = parse_record(&v, line, &blobs)?;
                    let args = v
                        .get("args")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| fmt(line, "syscall missing args".into()))?;
                    if args.len() != MAX_ARGS {
                        return Err(fmt(
                            line,
                            format!("expected {MAX_ARGS} args, got {}", args.len()),
                        ));
                    }
                    for (slot, a) in r.args.iter_mut().zip(args) {
                        *slot = a
                            .as_f64()
                            .ok_or_else(|| fmt(line, "non-numeric arg".into()))?
                            as i64 as i32;
                    }
                    rec.records.push(r);
                }
                "blob" => blobs.push(req_hex(&v, "data", line)?),
                "call" => rec.records.push(parse_record(&v, line, &blobs)?),
                "loop" => {
                    let count = v
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fmt(line, "loop missing count".into()))?;
                    let body = v
                        .get("body")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| fmt(line, "loop missing body".into()))?;
                    let mut once = Vec::with_capacity(body.len());
                    for item in body {
                        once.push(parse_record(item, line, &blobs)?);
                    }
                    for _ in 0..count {
                        rec.records.extend(once.iter().cloned());
                    }
                }
                other => return Err(fmt(line, format!("unknown line type {other:?}"))),
            }
        }

        let (count, hash) = header.ok_or_else(|| fmt(1, "empty file: no header line".into()))?;
        if rec.records.len() as u64 != count {
            return Err(fmt(
                last_line,
                format!(
                    "truncated recording: header declares {count} records, file contains {}",
                    rec.records.len()
                ),
            ));
        }
        let actual = rec.content_hash();
        if actual != hash {
            return Err(fmt(
                last_line,
                format!(
                    "content hash mismatch: header {} vs recomputed {}",
                    hex64(hash),
                    hex64(actual)
                ),
            ));
        }
        Ok(rec)
    }
}

/// Parses one record object: a raw `syscall` line, a reduced `call` line,
/// or a `loop` body item. Reduced lines omit zero/empty fields and point
/// at the blob table instead of carrying data inline.
fn parse_record(v: &Json, line: usize, blobs: &[Vec<u8>]) -> Result<ReplayRecord, ReplayError> {
    let fmt = |message: String| ReplayError::Format { line, message };
    let nr = req_i32(v, "nr", line)?;
    let opt_u64 = |key: &str| -> Result<u64, ReplayError> {
        match v.get(key) {
            None => Ok(0),
            Some(n) => n
                .as_u64()
                .ok_or_else(|| fmt(format!("field {key:?} is not an integer"))),
        }
    };
    let ret = match v.get("ret") {
        None => 0,
        Some(n) => n
            .as_f64()
            .ok_or_else(|| fmt("field \"ret\" is not a number".into()))? as i64
            as i32,
    };
    let data = match (v.get("blob"), v.get("data")) {
        (Some(b), _) => {
            let idx = b
                .as_u64()
                .ok_or_else(|| fmt("blob index is not an integer".into()))?
                as usize;
            blobs
                .get(idx)
                .ok_or_else(|| {
                    fmt(format!(
                        "blob index {idx} out of range ({} blobs)",
                        blobs.len()
                    ))
                })?
                .clone()
        }
        (None, Some(Json::Str(s))) => {
            unhex_bytes(s).ok_or_else(|| fmt("bad hex in data field".into()))?
        }
        (None, Some(_)) => return Err(fmt("data field is not a string".into())),
        (None, None) => Vec::new(),
    };
    Ok(ReplayRecord {
        nr,
        args: [0; MAX_ARGS],
        ret,
        payload: opt_u64("payload")?,
        transport_cycles: opt_u64("transport")?,
        service_cycles: opt_u64("service")?,
        fs_cycles: opt_u64("fs")?,
        data,
    })
}

/// Encodes reduced records: blob table first (deduplicated payload
/// bytes, indexed by first use), then call/loop lines.
fn encode_reduced(records: &[ReplayRecord], lines: &mut Vec<String>) {
    // Blob table: index by first use, one entry per distinct non-empty
    // data payload.
    let mut blobs: Vec<&[u8]> = Vec::new();
    let mut blob_of = Vec::with_capacity(records.len());
    for r in records {
        if r.data.is_empty() {
            blob_of.push(None);
        } else {
            let idx = match blobs.iter().position(|b| *b == r.data.as_slice()) {
                Some(i) => i,
                None => {
                    blobs.push(&r.data);
                    blobs.len() - 1
                }
            };
            blob_of.push(Some(idx));
        }
    }
    for b in &blobs {
        lines.push(
            Json::Obj(vec![
                ("type".into(), Json::Str("blob".into())),
                ("data".into(), Json::Str(hex_bytes(b))),
            ])
            .render(),
        );
    }

    let call_obj = |i: usize| -> Json {
        let r = &records[i];
        let mut fields = vec![
            ("type".into(), Json::Str("call".into())),
            ("nr".into(), Json::Num(r.nr as f64)),
        ];
        if r.ret != 0 {
            fields.push(("ret".into(), Json::Num(r.ret as f64)));
        }
        if r.payload != 0 {
            fields.push(("payload".into(), Json::u64(r.payload)));
        }
        if r.transport_cycles != 0 {
            fields.push(("transport".into(), Json::u64(r.transport_cycles)));
        }
        if r.service_cycles != 0 {
            fields.push(("service".into(), Json::u64(r.service_cycles)));
        }
        if r.fs_cycles != 0 {
            fields.push(("fs".into(), Json::u64(r.fs_cycles)));
        }
        if let Some(idx) = blob_of[i] {
            fields.push(("blob".into(), Json::u64(idx as u64)));
        }
        Json::Obj(fields)
    };
    // Two records are loop-foldable when they serialize identically
    // (same call answered the same way, same blob).
    let same = |a: usize, b: usize| records[a] == records[b] && blob_of[a] == blob_of[b];

    // Greedy loop collapse: at each position try periods 1..=MAX_PERIOD,
    // keep the one that elides the most lines.
    const MAX_PERIOD: usize = 8;
    let mut i = 0;
    while i < records.len() {
        let mut best: Option<(usize, usize, usize)> = None; // (savings, period, reps)
        for period in 1..=MAX_PERIOD.min(records.len() - i) {
            let mut reps = 1;
            while i + (reps + 1) * period <= records.len()
                && (0..period).all(|k| same(i + k, i + reps * period + k))
            {
                reps += 1;
            }
            if reps >= 2 {
                let savings = (reps - 1) * period;
                // Strictly-greater keeps the smallest period on ties.
                if best.map(|(s, _, _)| savings > s).unwrap_or(true) {
                    best = Some((savings, period, reps));
                }
            }
        }
        match best {
            Some((_, period, reps)) => {
                let body: Vec<Json> = (i..i + period).map(call_obj).collect();
                lines.push(
                    Json::Obj(vec![
                        ("type".into(), Json::Str("loop".into())),
                        ("count".into(), Json::u64(reps as u64)),
                        ("body".into(), Json::Arr(body)),
                    ])
                    .render(),
                );
                i += period * reps;
            }
            None => {
                lines.push(call_obj(i).render());
                i += 1;
            }
        }
    }
}

fn req_str(v: &Json, key: &str, line: usize) -> Result<String, ReplayError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ReplayError::Format {
            line,
            message: format!("missing string field {key:?}"),
        })
}

fn req_i32(v: &Json, key: &str, line: usize) -> Result<i32, ReplayError> {
    v.get(key)
        .and_then(Json::as_f64)
        .map(|n| n as i64 as i32)
        .ok_or_else(|| ReplayError::Format {
            line,
            message: format!("missing numeric field {key:?}"),
        })
}

fn req_hex(v: &Json, key: &str, line: usize) -> Result<Vec<u8>, ReplayError> {
    let s = req_str(v, key, line)?;
    unhex_bytes(&s).ok_or_else(|| ReplayError::Format {
        line,
        message: format!("bad hex in field {key:?}"),
    })
}

/// Lowercase hex encoding for payload bytes.
pub fn hex_bytes(data: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Inverse of [`hex_bytes`].
pub fn unhex_bytes(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(reduced: bool) -> Recording {
        let rec = |nr: i32, ret: i32, data: &[u8]| ReplayRecord {
            nr,
            args: if reduced {
                [0; MAX_ARGS]
            } else {
                [3, 0x2000, 64, 0, 0]
            },
            ret,
            payload: data.len() as u64,
            transport_cycles: 4000 + (data.len() as u64 * 2) / 8,
            service_cycles: 600,
            fs_cycles: 0,
            data: data.to_vec(),
        };
        Recording {
            name: "io.rwmix".into(),
            size: "test".into(),
            source: "int main() { return 42; }".into(),
            inputs: if reduced {
                Vec::new()
            } else {
                vec![("/in".into(), vec![1, 2, 3])]
            },
            checksum: -7,
            reduced,
            records: vec![
                rec(5, 3, &[]),
                rec(3, 4, &[9, 9, 9, 9]),
                rec(3, 4, &[9, 9, 9, 9]),
                rec(3, 4, &[9, 9, 9, 9]),
                rec(4, 4, &[]),
                rec(6, 0, &[]),
                rec(1, 0, &[]),
            ],
        }
    }

    #[test]
    fn raw_roundtrip_is_identity() {
        let rec = sample(false);
        let text = rec.to_jsonl();
        let back = Recording::from_jsonl(&text).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn reduced_roundtrip_is_identity() {
        let rec = sample(true);
        let text = rec.to_jsonl();
        assert!(text.contains("\"loop\""), "{text}");
        assert!(text.contains("\"blob\""), "{text}");
        let back = Recording::from_jsonl(&text).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn raw_and_reduced_share_a_content_hash() {
        // Same replay behavior, same address: args and inputs are
        // observation-only.
        assert_eq!(sample(false).content_hash(), sample(true).content_hash());
    }

    #[test]
    fn empty_recording_roundtrips() {
        let rec = Recording {
            name: "gemm".into(),
            size: "test".into(),
            source: "int main() { return 1; }".into(),
            checksum: 1,
            ..Recording::default()
        };
        let back = Recording::from_jsonl(&rec.to_jsonl()).unwrap();
        assert_eq!(rec, back);
        assert_eq!(back.records.len(), 0);
    }

    #[test]
    fn wrong_schema_version_is_rejected_clearly() {
        let rec = sample(false);
        let text = rec
            .to_jsonl()
            .replace("\"schema_version\":1", "\"schema_version\":99");
        let err = Recording::from_jsonl(&text).unwrap_err();
        assert_eq!(
            err,
            ReplayError::Version {
                found: 99,
                supported: SCHEMA_VERSION
            }
        );
        assert!(err.to_string().contains("re-record"), "{err}");
    }

    #[test]
    fn torn_tail_line_is_a_format_error() {
        let rec = sample(false);
        let text = rec.to_jsonl();
        let torn = &text[..text.len() - 20]; // mid-line cut
        let err = Recording::from_jsonl(torn).unwrap_err();
        match err {
            ReplayError::Format { message, .. } => {
                assert!(message.contains("bad JSON"), "{message}")
            }
            other => panic!("expected Format error, got {other:?}"),
        }
    }

    #[test]
    fn cleanly_missing_tail_is_truncation() {
        let rec = sample(false);
        let text = rec.to_jsonl();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop(); // drop one whole record line
        let err = Recording::from_jsonl(&lines.join("\n")).unwrap_err();
        match err {
            ReplayError::Format { message, .. } => {
                assert!(message.contains("truncated"), "{message}")
            }
            other => panic!("expected Format error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_the_content_hash() {
        let rec = sample(false);
        let text = rec.to_jsonl().replace("09090909", "09090908");
        let err = Recording::from_jsonl(&text).unwrap_err();
        match err {
            ReplayError::Format { message, .. } => {
                assert!(message.contains("content hash"), "{message}")
            }
            other => panic!("expected Format error, got {other:?}"),
        }
    }

    #[test]
    fn non_replay_json_is_rejected() {
        let err =
            Recording::from_jsonl("{\"type\":\"header\",\"format\":\"other\"}\n").unwrap_err();
        match err {
            ReplayError::Format { message, .. } => {
                assert!(message.contains("not a wasmperf-replay"), "{message}")
            }
            other => panic!("expected Format error, got {other:?}"),
        }
    }

    #[test]
    fn hex_roundtrip() {
        assert_eq!(
            unhex_bytes(&hex_bytes(&[0, 255, 16])),
            Some(vec![0, 255, 16])
        );
        assert_eq!(unhex_bytes("0"), None);
        assert_eq!(unhex_bytes("zz"), None);
    }
}
