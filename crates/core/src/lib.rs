//! wasmperf: the public facade for the WebAssembly-vs-native pipeline.
//!
//! This crate re-exports the whole stack and offers a one-stop
//! [`Pipeline`] API for the common workflow: take a CLite program, compile
//! it natively and for every browser engine, execute each build on the
//! performance-model CPU with a Browsix kernel, and compare.
//!
//! ```
//! use wasmperf_core::{Pipeline, EngineKind};
//!
//! let src = "
//!     fn main() -> i32 {
//!         var s: i32 = 0;
//!         var i: i32 = 0;
//!         for (i = 1; i <= 100; i += 1) { s += i * i; }
//!         return s;
//!     }";
//! let pipeline = Pipeline::new(src).unwrap();
//! let native = pipeline.run(EngineKind::Native).unwrap();
//! let chrome = pipeline.run(EngineKind::Chrome).unwrap();
//! assert_eq!(native.checksum, chrome.checksum);
//! assert!(chrome.counters.instructions_retired > native.counters.instructions_retired);
//! ```
//!
//! The individual subsystems remain available under their own names:
//! [`isa`], [`cpu`], [`wasm`], [`cir`], [`regalloc`], [`clanglite`],
//! [`emcc`], [`wasmjit`], [`browsix`], [`benchsuite`], [`harness`],
//! [`trace`].

pub use wasmperf_benchsuite as benchsuite;
pub use wasmperf_browsix as browsix;
pub use wasmperf_cir as cir;
pub use wasmperf_clanglite as clanglite;
pub use wasmperf_cpu as cpu;
pub use wasmperf_emcc as emcc;
pub use wasmperf_harness as harness;
pub use wasmperf_isa as isa;
pub use wasmperf_regalloc as regalloc;
pub use wasmperf_trace as trace;
pub use wasmperf_wasm as wasm;
pub use wasmperf_wasmjit as wasmjit;

use wasmperf_browsix::{AppendPolicy, Kernel};
use wasmperf_cpu::{Machine, PerfCounters};
use wasmperf_wasmjit::EngineProfile;

/// The engines a [`Pipeline`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Clang-like ahead-of-time native compilation.
    Native,
    /// Chrome-profile WebAssembly JIT.
    Chrome,
    /// Firefox-profile WebAssembly JIT.
    Firefox,
    /// Chrome running asm.js.
    ChromeAsmjs,
    /// Firefox running asm.js.
    FirefoxAsmjs,
}

/// Outcome of one pipeline execution.
#[derive(Debug, Clone)]
pub struct Execution {
    /// The program's returned value.
    pub checksum: i32,
    /// Performance counters (the `perf` view).
    pub counters: PerfCounters,
    /// Bytes written to stdout via the Browsix kernel.
    pub stdout: Vec<u8>,
    /// Emitted machine-code size in bytes.
    pub code_bytes: u64,
}

/// A compiled CLite program ready to run on any engine.
pub struct Pipeline {
    prog: wasmperf_cir::HProgram,
    /// Files staged into the kernel before each run.
    pub input_files: Vec<(String, Vec<u8>)>,
}

impl Pipeline {
    /// Parses and typechecks `source` (CLite).
    pub fn new(source: &str) -> Result<Pipeline, String> {
        Ok(Pipeline {
            prog: wasmperf_cir::compile(source)?,
            input_files: Vec::new(),
        })
    }

    /// Stages a file into the Browsix filesystem for subsequent runs.
    pub fn with_input(mut self, path: &str, data: Vec<u8>) -> Pipeline {
        self.input_files.push((path.to_string(), data));
        self
    }

    /// The typed program (for inspection).
    pub fn program(&self) -> &wasmperf_cir::HProgram {
        &self.prog
    }

    /// Compiles for `engine` and executes `main` under a fresh Browsix
    /// kernel.
    pub fn run(&self, engine: EngineKind) -> Result<Execution, String> {
        let module = match engine {
            EngineKind::Native => wasmperf_clanglite::compile(&self.prog, &Default::default()),
            _ => {
                let profile = match engine {
                    EngineKind::Chrome => EngineProfile::chrome(),
                    EngineKind::Firefox => EngineProfile::firefox(),
                    EngineKind::ChromeAsmjs => EngineProfile::chrome_asmjs(),
                    EngineKind::FirefoxAsmjs => EngineProfile::firefox_asmjs(),
                    EngineKind::Native => unreachable!(),
                };
                let wasm = wasmperf_emcc::compile(&self.prog);
                wasmperf_wasm::validate(&wasm).map_err(|e| e.to_string())?;
                wasmperf_wasmjit::compile(&wasm, &profile)?.module
            }
        };
        let mut kernel = Kernel::new(AppendPolicy::Chunked4K);
        for (path, data) in &self.input_files {
            kernel
                .fs
                .write_all(path, data)
                .map_err(|e| format!("staging {path}: {e:?}"))?;
        }
        let entry = module.entry.ok_or("program has no main")?;
        let mut machine = Machine::new(&module, kernel);
        let out = machine
            .run(entry, &[], 20_000_000_000)
            .map_err(|e| e.to_string())?;
        let kernel = machine.into_host();
        Ok(Execution {
            checksum: out.ret as u32 as i32,
            counters: out.counters,
            stdout: kernel.stdout,
            code_bytes: module.code_bytes(),
        })
    }

    /// Runs every engine and checks they agree on the checksum; returns
    /// the results keyed by engine.
    pub fn run_all(&self) -> Result<Vec<(EngineKind, Execution)>, String> {
        let engines = [
            EngineKind::Native,
            EngineKind::Chrome,
            EngineKind::Firefox,
            EngineKind::ChromeAsmjs,
            EngineKind::FirefoxAsmjs,
        ];
        let mut out = Vec::new();
        for e in engines {
            out.push((e, self.run(e)?));
        }
        let first = out[0].1.checksum;
        for (e, r) in &out {
            if r.checksum != first {
                return Err(format!("{e:?} disagrees: {} vs {first}", r.checksum));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs_all_engines_consistently() {
        let src = "
            array i32 A[128];
            fn main() -> i32 {
                var i: i32 = 0;
                var s: i32 = 0;
                for (i = 0; i < 128; i += 1) { A[i] = i * 7 % 11; }
                for (i = 0; i < 128; i += 1) { s = s * 31 + A[i]; }
                return s;
            }";
        let p = Pipeline::new(src).unwrap();
        let all = p.run_all().unwrap();
        assert_eq!(all.len(), 5);
        let native = &all[0].1;
        let chrome = &all[1].1;
        assert!(chrome.counters.cycles > native.counters.cycles);
        assert!(chrome.counters.instructions_retired > native.counters.instructions_retired);
    }

    #[test]
    fn inputs_are_staged() {
        let src = "
            array u8 buf[16];
            array u8 path = \"/in\\0\";
            fn main() -> i32 {
                var fd: i32 = syscall(5, path, 0, 0);
                var n: i32 = syscall(3, fd, buf, 16);
                return n * 1000 + buf[0];
            }";
        let p = Pipeline::new(src)
            .unwrap()
            .with_input("/in", b"abc".to_vec());
        let r = p.run(EngineKind::Native).unwrap();
        assert_eq!(r.checksum, 3 * 1000 + b'a' as i32);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Pipeline::new("fn main( {").is_err());
    }
}
