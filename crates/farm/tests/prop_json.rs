//! Property tests for the farm JSON codec: `parse(render(v)) == v` over
//! nested values, control characters, and non-BMP unicode — plus decoding
//! of the `\uXXXX`-escaped (UTF-16) form external producers send on the
//! wasmperf-serve wire protocol.

use proptest::prelude::*;
use std::fmt::Write as _;
use wasmperf_farm::Json;

/// Characters that exercise every escaping path: ASCII, the JSON escape
/// set, raw control characters, BMP unicode, and supplementary-plane
/// scalars (emoji, musical symbols).
fn arb_char() -> BoxedStrategy<char> {
    prop_oneof![
        (0x20u32..0x7f).prop_map(|c| char::from_u32(c).unwrap()),
        (0x00u32..0x20).prop_map(|c| char::from_u32(c).unwrap()),
        Just('"'),
        Just('\\'),
        Just('/'),
        (0xa0u32..0xd800).prop_map(|c| char::from_u32(c).unwrap()),
        (0xe000u32..0x1_0000).prop_map(|c| char::from_u32(c).unwrap()),
        (0x1_0000u32..0x2_0000).prop_map(|c| char::from_u32(c).unwrap()),
        Just('😀'),
    ]
    .boxed()
}

fn arb_string() -> BoxedStrategy<String> {
    proptest::collection::vec(arb_char(), 0..12)
        .prop_map(|cs| cs.into_iter().collect())
        .boxed()
}

/// Numbers the codec promises to round-trip: exact integers up to 2^53
/// and finite floats (rendered via `{:?}`, the shortest form that parses
/// back exactly).
fn arb_num() -> BoxedStrategy<f64> {
    prop_oneof![
        (-9_007_199_254_740_992i64..9_007_199_254_740_992).prop_map(|n| n as f64),
        (-1_000_000i64..1_000_000).prop_map(|n| n as f64 / 1024.0),
        any::<i64>().prop_map(|bits| {
            let f = f64::from_bits(bits as u64);
            if f.is_finite() {
                f
            } else {
                0.5
            }
        }),
    ]
    .boxed()
}

fn arb_json() -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        arb_num().prop_map(Json::Num),
        arb_string().prop_map(Json::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
            proptest::collection::vec((arb_string(), inner), 0..4).prop_map(Json::Obj),
        ]
        .boxed()
    })
    .boxed()
}

/// The string with every character spelled as `\uXXXX` escapes —
/// supplementary-plane scalars as UTF-16 surrogate pairs. This is the
/// form serde-style producers may put on the wire.
fn escape_utf16(s: &str) -> String {
    let mut out = String::with_capacity(2 + 6 * s.len());
    out.push('"');
    for unit in s.encode_utf16() {
        let _ = write!(out, "\\u{unit:04x}");
    }
    out.push('"');
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn render_parse_roundtrip(v in arb_json()) {
        let text = v.render();
        let parsed = Json::parse(&text);
        prop_assert!(parsed.is_ok(), "render produced unparseable `{text}`");
        prop_assert_eq!(parsed.unwrap(), v);
    }

    #[test]
    fn rendered_strings_are_single_line(v in arb_json()) {
        // The result store and access logs are JSONL: a rendered value
        // must never contain a raw newline (or any raw control char).
        let text = v.render();
        prop_assert!(!text.chars().any(|c| (c as u32) < 0x20), "{text}");
    }

    #[test]
    fn utf16_escaped_strings_decode_exactly(s in arb_string()) {
        // parse(\u-escaped s) == s, including surrogate pairs for every
        // non-BMP character — the satellite fix this test guards.
        let parsed = Json::parse(&escape_utf16(&s));
        prop_assert!(parsed.is_ok());
        prop_assert_eq!(parsed.unwrap(), Json::Str(s));
    }

    #[test]
    fn reparse_is_idempotent(v in arb_json()) {
        // render(parse(render(v))) == render(v): the wire form is a
        // fixed point, which is what byte-identity checks lean on.
        let once = v.render();
        let twice = Json::parse(&once).unwrap().render();
        prop_assert_eq!(once, twice);
    }
}

#[test]
fn emoji_roundtrip_both_forms() {
    // The concrete case from the issue: 😀 used to decode to two U+FFFD.
    let v = Json::Str("😀".into());
    assert_eq!(Json::parse(&v.render()).unwrap(), v);
    assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), v);
}
