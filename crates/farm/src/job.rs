//! The job model: every unit of farm work is a hashable [`JobSpec`].
//!
//! A job is one (benchmark, engine, size, append-policy, trial) execution.
//! The spec carries *content* identities — a hash of the benchmark source
//! and staged inputs, and a fingerprint of the full engine configuration —
//! rather than display names, so two ad-hoc benchmarks that share a name
//! (e.g. the Figure 8 `matmul` at different sizes) never collide, and two
//! engine profiles that differ in any knob always get distinct artifacts.

use crate::cache::ArtifactKey;
use crate::hash::Fnv;
use wasmperf_benchsuite::Size;
use wasmperf_browsix::AppendPolicy;

/// One schedulable unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Benchmark display name (for reporting only; identity is
    /// `source_hash`).
    pub bench: String,
    /// Engine display name (for reporting only; identity is
    /// `engine_fingerprint`).
    pub engine: String,
    /// FNV-1a over the benchmark's source, staged inputs, and declared
    /// outputs.
    pub source_hash: u64,
    /// FNV-1a over the engine's full configuration (register pools,
    /// tier, safety checks, compile options, ...).
    pub engine_fingerprint: u64,
    /// Workload size class.
    pub size: Size,
    /// Kernel append policy for the run.
    pub policy: AppendPolicy,
    /// Trial index (the simulator is deterministic, so repeated trials
    /// are synthesized by the seeded noise model; the index feeds the
    /// seed).
    pub trial: u32,
}

fn size_tag(size: Size) -> u64 {
    match size {
        Size::Test => 0,
        Size::Ref => 1,
    }
}

fn policy_tag(policy: AppendPolicy) -> u64 {
    match policy {
        AppendPolicy::ExactFit => 0,
        AppendPolicy::Chunked4K => 1,
    }
}

impl JobSpec {
    /// The job's stable 64-bit identity: the result-store key.
    pub fn key(&self) -> u64 {
        Fnv::new()
            .write_u64(self.source_hash)
            .write_u64(self.engine_fingerprint)
            .write_u64(size_tag(self.size))
            .write_u64(policy_tag(self.policy))
            .write_u64(self.trial as u64)
            .finish()
    }

    /// The compile-artifact identity: source × engine configuration.
    ///
    /// Deliberately independent of `size`-irrelevant runtime knobs
    /// (append policy, trial): the compiled module is shared across every
    /// run of the same source on the same engine configuration.
    pub fn artifact_key(&self) -> ArtifactKey {
        ArtifactKey {
            source: self.source_hash,
            config: self.engine_fingerprint,
        }
    }

    /// A seed for the measurement-noise model, keyed by the job identity
    /// (never by execution order) so parallel and serial farms render
    /// byte-identical tables.
    pub fn seed(&self, salt: u64) -> u64 {
        Fnv::new().write_u64(self.key()).write_u64(salt).finish()
    }

    /// Human-readable `bench/engine[#trial]` label for progress lines and
    /// failure reports.
    pub fn label(&self) -> String {
        if self.trial == 0 {
            format!("{}/{}", self.bench, self.engine)
        } else {
            format!("{}/{}#{}", self.bench, self.engine, self.trial)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            bench: "401.bzip2".into(),
            engine: "chrome".into(),
            source_hash: 0x1111,
            engine_fingerprint: 0x2222,
            size: Size::Test,
            policy: AppendPolicy::Chunked4K,
            trial: 0,
        }
    }

    #[test]
    fn key_ignores_display_names_but_not_content() {
        let a = spec();
        let mut renamed = spec();
        renamed.bench = "alias".into();
        renamed.engine = "other".into();
        assert_eq!(a.key(), renamed.key(), "names are not identity");

        for f in [
            &mut |s: &mut JobSpec| s.source_hash ^= 1,
            &mut |s: &mut JobSpec| s.engine_fingerprint ^= 1,
            &mut |s: &mut JobSpec| s.size = Size::Ref,
            &mut |s: &mut JobSpec| s.policy = AppendPolicy::ExactFit,
            &mut |s: &mut JobSpec| s.trial = 1,
        ] as [&mut dyn FnMut(&mut JobSpec); 5]
        {
            let mut changed = spec();
            f(&mut changed);
            assert_ne!(a.key(), changed.key());
        }
    }

    #[test]
    fn artifact_key_is_shared_across_policy_and_trial() {
        let a = spec();
        let mut b = spec();
        b.policy = AppendPolicy::ExactFit;
        b.trial = 3;
        assert_eq!(a.artifact_key(), b.artifact_key());
        let mut c = spec();
        c.engine_fingerprint ^= 1;
        assert_ne!(a.artifact_key(), c.artifact_key());
    }

    #[test]
    fn seed_depends_on_spec_and_salt() {
        let a = spec();
        assert_eq!(a.seed(7), a.seed(7));
        assert_ne!(a.seed(7), a.seed(8));
        let mut b = spec();
        b.trial = 1;
        assert_ne!(a.seed(7), b.seed(7));
    }

    #[test]
    fn labels() {
        let mut s = spec();
        assert_eq!(s.label(), "401.bzip2/chrome");
        s.trial = 2;
        assert_eq!(s.label(), "401.bzip2/chrome#2");
    }
}
