//! The worker pool: N threads, one shared queue, panic isolation.
//!
//! [`run_jobs`] executes a batch of independent jobs on `workers` OS
//! threads (scoped — no detached threads, no `'static` bounds). Jobs are
//! claimed from an atomic cursor in submission order; results come back
//! **in submission order** regardless of which worker finished when, which
//! is one half of the farm's determinism story (the other half is that
//! jobs themselves are pure functions of their [`JobSpec`]).
//!
//! A job that returns `Err` or panics becomes a [`JobFailure`] for that
//! slot only — the pool keeps draining the queue, so one bad job cannot
//! take down a thousand-job run.
//!
//! [`JobSpec`]: crate::job::JobSpec

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Why a job slot has no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// The job's display label.
    pub label: String,
    /// The error message, or the panic payload for panicked jobs.
    pub message: String,
    /// True if the job panicked (as opposed to returning `Err`).
    pub panicked: bool,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.panicked { "panicked" } else { "failed" };
        write!(f, "job {} {kind}: {}", self.label, self.message)
    }
}

/// Per-slot outcome, in submission order.
pub type JobOutcome<R> = Result<R, JobFailure>;

/// What the pool did, for progress summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs completed by each worker (index = worker id).
    pub per_worker: Vec<usize>,
    /// Number of failed or panicked jobs.
    pub failures: usize,
}

impl PoolStats {
    /// Total jobs executed.
    pub fn total(&self) -> usize {
        self.per_worker.iter().sum()
    }
}

/// A progress event, delivered from worker threads as jobs finish.
#[derive(Debug, Clone, Copy)]
pub struct JobEvent<'a> {
    /// Worker id (0-based).
    pub worker: usize,
    /// Job index in the submitted batch.
    pub index: usize,
    /// The job's display label.
    pub label: &'a str,
    /// False if the job failed or panicked.
    pub ok: bool,
    /// Jobs finished so far (including this one), across all workers.
    pub completed: usize,
    /// Batch size.
    pub total: usize,
}

/// Progress callback type. Called from worker threads; must be `Sync`.
pub type ProgressFn<'a> = &'a (dyn Fn(JobEvent<'_>) + Sync);

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `jobs` on `workers` threads; see the module docs.
///
/// `label` names a job for failure reports and progress lines; `runner`
/// does the work. Both are shared by all workers and so must be `Sync`.
/// Errors are `String`s at this layer — callers with richer error types
/// stringify them (the pool must be able to report a panic, which has no
/// structured type, through the same channel).
pub fn run_jobs<J, R, FL, FR>(
    jobs: &[J],
    workers: usize,
    label: FL,
    runner: FR,
    progress: Option<ProgressFn<'_>>,
) -> (Vec<JobOutcome<R>>, PoolStats)
where
    J: Sync,
    R: Send,
    FL: Fn(&J) -> String + Sync,
    FR: Fn(&J) -> Result<R, String> + Sync,
{
    let workers = workers.clamp(1, jobs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<JobOutcome<R>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let per_worker: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let cursor = &cursor;
            let completed = &completed;
            let results = &results;
            let per_worker = &per_worker;
            let label = &label;
            let runner = &runner;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    return;
                }
                let job = &jobs[i];
                let outcome = match catch_unwind(AssertUnwindSafe(|| runner(job))) {
                    Ok(Ok(r)) => Ok(r),
                    Ok(Err(message)) => Err(JobFailure {
                        label: label(job),
                        message,
                        panicked: false,
                    }),
                    Err(payload) => Err(JobFailure {
                        label: label(job),
                        message: panic_message(payload),
                        panicked: true,
                    }),
                };
                let ok = outcome.is_ok();
                *results[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
                per_worker[w].fetch_add(1, Ordering::Relaxed);
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(report) = progress {
                    report(JobEvent {
                        worker: w,
                        index: i,
                        label: &label(job),
                        ok,
                        completed: done,
                        total: jobs.len(),
                    });
                }
            });
        }
    });

    let outcomes: Vec<JobOutcome<R>> = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every queued job produced an outcome")
        })
        .collect();
    let stats = PoolStats {
        failures: outcomes.iter().filter(|o| o.is_err()).count(),
        per_worker: per_worker
            .into_iter()
            .map(AtomicUsize::into_inner)
            .collect(),
    };
    (outcomes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn double(j: &u64) -> Result<u64, String> {
        match *j {
            13 => Err("unlucky".into()),
            99 => panic!("worker down"),
            v => Ok(v * 2),
        }
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs: Vec<u64> = (0..64).collect();
        let (outcomes, stats) = run_jobs(&jobs, 8, |j| j.to_string(), double, None);
        assert_eq!(outcomes.len(), 64);
        for (i, o) in outcomes.iter().enumerate() {
            if i == 13 {
                assert!(o.is_err());
            } else {
                assert_eq!(*o.as_ref().unwrap(), 2 * i as u64);
            }
        }
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.total(), 64);
        assert_eq!(stats.per_worker.len(), 8);
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_run() {
        let jobs: Vec<u64> = vec![1, 99, 3, 13, 5];
        let (outcomes, stats) = run_jobs(&jobs, 2, |j| format!("job-{j}"), double, None);
        assert_eq!(*outcomes[0].as_ref().unwrap(), 2);
        assert_eq!(*outcomes[2].as_ref().unwrap(), 6);
        assert_eq!(*outcomes[4].as_ref().unwrap(), 10);
        let panic = outcomes[1].as_ref().unwrap_err();
        assert!(panic.panicked);
        assert_eq!(panic.label, "job-99");
        assert_eq!(panic.message, "worker down");
        let fail = outcomes[3].as_ref().unwrap_err();
        assert!(!fail.panicked);
        assert_eq!(fail.message, "unlucky");
        assert_eq!(stats.failures, 2);
    }

    #[test]
    fn single_worker_is_fully_serial() {
        let jobs: Vec<u64> = (0..10).collect();
        let (outcomes, stats) = run_jobs(&jobs, 1, |j| j.to_string(), double, None);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(stats.per_worker, vec![10]);
    }

    #[test]
    fn worker_count_is_clamped_to_batch_size() {
        let jobs: Vec<u64> = vec![1, 2];
        let (_, stats) = run_jobs(&jobs, 64, |j| j.to_string(), double, None);
        assert_eq!(stats.per_worker.len(), 2);
        // Empty batch, zero workers: no hang, no panic.
        let (outcomes, stats) = run_jobs(&[], 0, |j: &u64| j.to_string(), double, None);
        assert!(outcomes.is_empty());
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn progress_events_cover_every_job() {
        let jobs: Vec<u64> = (0..32).collect();
        let seen = Mutex::new(Vec::new());
        let report = |e: JobEvent<'_>| {
            seen.lock().unwrap().push((e.index, e.ok));
            assert_eq!(e.total, 32);
            assert!(e.completed >= 1 && e.completed <= 32);
        };
        let (_, _) = run_jobs(&jobs, 4, |j| j.to_string(), double, Some(&report));
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        let expected: Vec<(usize, bool)> = (0..32).map(|i| (i, i != 13)).collect();
        assert_eq!(seen, expected);
    }
}
