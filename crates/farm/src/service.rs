//! The long-lived service pool: persistent workers, a bounded queue,
//! backpressure, and graceful drain.
//!
//! [`run_jobs`] is batch-shaped: scoped threads that live exactly as long
//! as one submitted batch. A network service needs the opposite shape —
//! workers that outlive any individual request, a queue that accepts jobs
//! one at a time from many connection threads, and an *admission bound*
//! so overload turns into an immediate, explicit rejection instead of an
//! ever-growing queue. [`ServicePool`] is that shape:
//!
//! - `workers` OS threads live for the pool's whole lifetime and execute
//!   jobs (boxed closures) in FIFO order;
//! - at most `capacity` jobs wait in the queue; [`ServicePool::submit`]
//!   returns [`SubmitError::Full`] instead of blocking when it is — the
//!   caller turns that into backpressure (HTTP 429);
//! - a job that panics takes down neither its worker nor the pool
//!   (the same isolation contract as [`run_jobs`]);
//! - [`ServicePool::drain`] closes admission, lets the workers finish
//!   every queued job, and joins them — graceful shutdown.
//!
//! [`run_jobs`]: crate::pool::run_jobs

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry later. Carries the depth
    /// (queued + executing) observed at rejection time.
    Full {
        /// Jobs queued or executing when the submission was rejected.
        depth: usize,
    },
    /// The pool is draining or drained; no new work is admitted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full { depth } => write!(f, "queue full (depth {depth})"),
            SubmitError::Closed => write!(f, "pool is draining"),
        }
    }
}

struct State {
    queue: VecDeque<Job>,
    /// False once drain has begun: no further admissions.
    open: bool,
    /// Jobs currently executing on a worker.
    active: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a job arrived or drain began.
    work: Condvar,
    capacity: usize,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A fixed set of persistent workers over one bounded FIFO queue.
pub struct ServicePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServicePool {
    /// Starts `workers` threads (≥ 1) over a queue admitting at most
    /// `capacity` (≥ 1) waiting jobs.
    pub fn new(workers: usize, capacity: usize) -> ServicePool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                open: true,
                active: 0,
            }),
            work: Condvar::new(),
            capacity: capacity.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ServicePool { shared, workers }
    }

    /// Admits one job, or rejects it without blocking. On success returns
    /// the pool depth (queued + executing) including this job.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<usize, SubmitError> {
        let mut st = self.shared.lock();
        if !st.open {
            return Err(SubmitError::Closed);
        }
        if st.queue.len() >= self.shared.capacity {
            return Err(SubmitError::Full {
                depth: st.queue.len() + st.active,
            });
        }
        st.queue.push_back(Box::new(job));
        let depth = st.queue.len() + st.active;
        drop(st);
        self.shared.work.notify_one();
        Ok(depth)
    }

    /// Jobs waiting in the queue (not yet executing).
    pub fn queued(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Jobs currently executing.
    pub fn active(&self) -> usize {
        self.shared.lock().active
    }

    /// Queued + executing.
    pub fn depth(&self) -> usize {
        let st = self.shared.lock();
        st.queue.len() + st.active
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Closes admission without consuming the pool: later submissions get
    /// [`SubmitError::Closed`], while already-queued jobs still run to
    /// completion. For pools shared behind an `Arc` (a server's exec
    /// service), this is the first half of a graceful drain; the workers
    /// are joined when the last handle drops.
    pub fn close(&self) {
        self.shared.lock().open = false;
        self.shared.work.notify_all();
    }

    /// Closes admission, runs every already-queued job to completion, and
    /// joins the workers.
    pub fn drain(mut self) {
        self.shared.lock().open = false;
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        // A dropped (not drained) pool still shuts down cleanly.
        self.shared.lock().open = false;
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.active += 1;
                    break job;
                }
                if !st.open {
                    return;
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Job panics are isolated; the submitting side observes them as a
        // dropped result channel.
        let _ = catch_unwind(AssertUnwindSafe(job));
        shared.lock().active -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = ServicePool::new(4, 64);
        let (tx, rx) = mpsc::channel();
        for i in 0..32u64 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i * 2).unwrap()).unwrap();
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort();
        assert_eq!(got, (0..32).map(|i| i * 2).collect::<Vec<_>>());
        pool.drain();
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let pool = ServicePool::new(1, 2);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();
        // ...fill the queue to capacity...
        pool.submit(|| {}).unwrap();
        pool.submit(|| {}).unwrap();
        // ...and the next submission is shed, not blocked.
        match pool.submit(|| {}) {
            Err(SubmitError::Full { depth }) => assert_eq!(depth, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        block_tx.send(()).unwrap();
        pool.drain();
    }

    #[test]
    fn drain_completes_every_queued_job() {
        let pool = ServicePool::new(2, 128);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.drain();
        assert_eq!(done.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn closed_pool_rejects_submissions() {
        let pool = ServicePool::new(1, 4);
        // Drain consumes the pool; probe Closed via a second handle is
        // impossible, so exercise the internal flag directly.
        pool.shared.lock().open = false;
        assert_eq!(pool.submit(|| {}), Err(SubmitError::Closed));
    }

    #[test]
    fn a_panicking_job_kills_neither_worker_nor_pool() {
        let pool = ServicePool::new(1, 16);
        pool.submit(|| panic!("job down")).unwrap();
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7u32).unwrap()).unwrap();
        // The single worker survived the panic and ran the next job.
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 7);
        pool.drain();
    }

    #[test]
    fn depth_tracks_queued_and_active() {
        let pool = ServicePool::new(1, 8);
        assert_eq!(pool.depth(), 0);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();
        assert_eq!(pool.active(), 1);
        pool.submit(|| {}).unwrap();
        assert_eq!(pool.queued(), 1);
        assert_eq!(pool.depth(), 2);
        block_tx.send(()).unwrap();
        pool.drain();
    }
}
