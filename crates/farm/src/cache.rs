//! The content-addressed artifact cache.
//!
//! Compiled artifacts (native modules, JIT outputs) are keyed by
//! [`ArtifactKey`] — (source hash, engine-configuration hash) — and shared
//! behind `Arc`, so each (benchmark, engine) pair is compiled **exactly
//! once** per process no matter how many trials, experiments, or worker
//! threads ask for it. Concurrent requests for the same key block on a
//! per-key slot while one builder runs; requests for different keys never
//! contend beyond the brief map lookup.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Identity of a compiled artifact: what was compiled × how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// FNV-1a of the benchmark content (source + inputs + outputs).
    pub source: u64,
    /// FNV-1a of the full engine configuration.
    pub config: u64,
}

/// Build/hit counters, for the "compiled exactly once" accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of builder invocations that completed successfully.
    pub builds: u64,
    /// Number of requests served from an already-built artifact.
    pub hits: u64,
}

type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// A concurrent, content-addressed, build-once cache.
pub struct ArtifactCache<V> {
    slots: Mutex<HashMap<ArtifactKey, Slot<V>>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl<V> Default for ArtifactCache<V> {
    fn default() -> Self {
        ArtifactCache {
            slots: Mutex::new(HashMap::new()),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }
}

impl<V> ArtifactCache<V> {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the artifact for `key`, invoking `build` only if no
    /// successful build for `key` has completed yet.
    ///
    /// Concurrent callers with the same key serialize on the key's slot:
    /// one builds, the rest wait and receive the same `Arc`. A failed
    /// build leaves the slot empty, so a later request retries. A
    /// *panicked* build poisons only its own slot; the poison is cleared
    /// (the slot is still empty) and later requests retry.
    pub fn get_or_build<E>(
        &self,
        key: ArtifactKey,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let slot = {
            let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
            slots.entry(key).or_default().clone()
        };
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(v) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(v));
        }
        let built = Arc::new(build()?);
        self.builds.fetch_add(1, Ordering::Relaxed);
        *guard = Some(Arc::clone(&built));
        Ok(built)
    }

    /// The artifact for `key`, if already built.
    pub fn get(&self, key: ArtifactKey) -> Option<Arc<V>> {
        let slot = {
            let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
            slots.get(&key).cloned()
        }?;
        let found = slot.lock().unwrap_or_else(PoisonError::into_inner).clone();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Build/hit counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct keys with a completed artifact.
    pub fn len(&self) -> usize {
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots
            .values()
            .filter(|s| s.lock().unwrap_or_else(PoisonError::into_inner).is_some())
            .count()
    }

    /// Whether no artifact has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(source: u64, config: u64) -> ArtifactKey {
        ArtifactKey { source, config }
    }

    #[test]
    fn hit_returns_the_identical_artifact() {
        let cache: ArtifactCache<Vec<u8>> = ArtifactCache::new();
        let a = cache
            .get_or_build(key(1, 1), || Ok::<_, ()>(vec![1, 2, 3]))
            .unwrap();
        let b = cache
            .get_or_build(key(1, 1), || -> Result<_, ()> {
                panic!("must not rebuild")
            })
            .unwrap();
        // Pointer equality: the very same allocation, not an equal copy.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { builds: 1, hits: 1 });
    }

    #[test]
    fn distinct_configs_never_collide() {
        let cache: ArtifactCache<u64> = ArtifactCache::new();
        let a = cache.get_or_build(key(7, 1), || Ok::<_, ()>(100)).unwrap();
        let b = cache.get_or_build(key(7, 2), || Ok::<_, ()>(200)).unwrap();
        let c = cache.get_or_build(key(8, 1), || Ok::<_, ()>(300)).unwrap();
        assert_eq!((*a, *b, *c), (100, 200, 300));
        assert_eq!(cache.stats().builds, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn failed_build_is_retried() {
        let cache: ArtifactCache<u64> = ArtifactCache::new();
        let err = cache.get_or_build(key(1, 1), || Err::<u64, _>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        let ok = cache.get_or_build(key(1, 1), || Ok::<_, &str>(5)).unwrap();
        assert_eq!(*ok, 5);
        assert_eq!(cache.stats(), CacheStats { builds: 1, hits: 0 });
    }

    #[test]
    fn concurrent_same_key_builds_exactly_once() {
        let cache: Arc<ArtifactCache<u64>> = Arc::new(ArtifactCache::new());
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let results: Vec<Arc<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        barrier.wait();
                        cache
                            .get_or_build(key(42, 42), || {
                                // Widen the race window.
                                std::thread::sleep(std::time::Duration::from_millis(5));
                                Ok::<_, ()>(777)
                            })
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.stats().builds, 1);
        assert_eq!(cache.stats().hits, 7);
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r));
        }
    }

    #[test]
    fn get_without_build() {
        let cache: ArtifactCache<u64> = ArtifactCache::new();
        assert!(cache.get(key(1, 1)).is_none());
        assert!(cache.is_empty());
        cache.get_or_build(key(1, 1), || Ok::<_, ()>(9)).unwrap();
        assert_eq!(*cache.get(key(1, 1)).unwrap(), 9);
    }
}
