//! wasmperf-farm: the parallel benchmark farm.
//!
//! The paper's BROWSIX-SPEC harness (§3) runs every (benchmark × engine ×
//! trial) job serially and recompiles each pipeline inside every
//! experiment. This crate is the scheduling/caching subsystem that turns
//! that into a deterministic parallel farm:
//!
//! - [`job`]: every unit of work is a hashable [`JobSpec`] —
//!   (benchmark, engine, size, append-policy, trial) — identified by
//!   *content* (source hash, engine-configuration fingerprint), not by
//!   display names;
//! - [`pool`]: a scoped worker pool over a shared queue with panic
//!   isolation (one failing job never kills the run) and per-worker
//!   progress reporting; results return in submission order;
//! - [`service`]: the long-lived variant for network services — a
//!   [`ServicePool`] of persistent workers over a *bounded* queue that
//!   rejects (backpressure) instead of blocking when full, with graceful
//!   drain;
//! - [`cache`]: a content-addressed [`ArtifactCache`] so each
//!   (benchmark, engine) pair is compiled exactly once per process and
//!   the compiled module is shared — across trials, experiments, and
//!   worker threads — behind an `Arc`;
//! - [`store`]: a persistent JSONL [`ResultStore`] that makes report
//!   generation resumable: already-recorded jobs are skipped on rerun,
//!   across process restarts;
//! - [`hash`]/[`json`]: the process-stable FNV-1a content addressing and
//!   the dependency-free JSON codec the store is built on.
//!
//! **Determinism is the contract.** Jobs are pure functions of their
//! `JobSpec` (the simulator is exactly repeatable, and measurement noise
//! is synthesized from seeds derived from the spec — see
//! [`JobSpec::seed`]), the pool returns outcomes in submission order, and
//! the cache/store only ever substitute a value for the identical
//! computation. A report rendered through an N-worker farm, a 1-worker
//! farm, or a resumed store is byte-identical; `tests/farm_determinism.rs`
//! in the workspace root proves it against the live harness.
//!
//! The harness side of the bridge — turning a `(Benchmark, Engine,
//! AppendPolicy)` into a `JobSpec`, compiling artifacts, encoding
//! `RunResult`s for the store — lives in `wasmperf_harness::farm`, which
//! keeps this crate free of any dependency on the compiler pipeline.

pub mod cache;
pub mod job;
pub mod pool;
pub mod service;
pub mod store;

pub use cache::{ArtifactCache, ArtifactKey, CacheStats};
pub use job::JobSpec;
pub use wasmperf_trace::json::Json;
// The JSON codec and FNV hasher live in `wasmperf-trace` (the bottom of
// the dependency stack) so lower layers — notably `wasmperf-replay`'s
// recording format — can reuse them; the farm re-exports both under
// their historical paths.
pub use pool::{run_jobs, JobEvent, JobFailure, JobOutcome, PoolStats};
pub use service::{ServicePool, SubmitError};
pub use store::ResultStore;
pub use wasmperf_trace::hash;
pub use wasmperf_trace::json;
