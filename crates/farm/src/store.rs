//! The persistent, resumable result store.
//!
//! One JSONL file (`results.jsonl`) under a results directory; one line
//! per completed job:
//!
//! ```text
//! {"v":1,"key":"<16-hex job key>","label":"401.bzip2/chrome","payload":{...}}
//! ```
//!
//! The payload is an opaque [`Json`] value — the harness owns the
//! [`RunResult`] encoding; the store owns keys, dedup, and durability.
//! Records are appended and flushed as jobs complete, so an interrupted
//! run resumes from its last finished job: on reopen, every recorded key
//! is served from memory and never re-executed. Unparseable lines (e.g. a
//! torn final write from a killed process) are counted and skipped, never
//! fatal — the job simply reruns.
//!
//! [`RunResult`]: ../../wasmperf_harness/engine/struct.RunResult.html

use crate::hash::{hex64, parse_hex64};
use crate::json::Json;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name within the results directory.
pub const STORE_FILE: &str = "results.jsonl";

/// An open result store. See the module docs.
pub struct ResultStore {
    path: PathBuf,
    file: File,
    records: HashMap<u64, Json>,
    loaded: usize,
    skipped: usize,
    /// True when the file ends mid-line (a torn final write): the first
    /// append must terminate that line first, or the next record would be
    /// glued onto it and destroyed with it on the next reload.
    needs_newline: bool,
}

impl ResultStore {
    /// Opens (creating if needed) the store under `dir`, loading every
    /// valid existing record.
    pub fn open(dir: &Path) -> std::io::Result<ResultStore> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(STORE_FILE);
        let mut records = HashMap::new();
        let mut skipped = 0;
        let mut needs_newline = false;
        if path.exists() {
            for line in BufReader::new(File::open(&path)?).lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match parse_record(&line) {
                    Some((key, payload)) => {
                        records.insert(key, payload);
                    }
                    None => skipped += 1,
                }
            }
            needs_newline = !ends_with_newline(&path)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(ResultStore {
            path,
            file,
            loaded: records.len(),
            records,
            skipped,
            needs_newline,
        })
    }

    /// The JSONL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The recorded payload for a job key, if present.
    pub fn get(&self, key: u64) -> Option<&Json> {
        self.records.get(&key)
    }

    /// Whether a job key has a recorded result.
    pub fn contains(&self, key: u64) -> bool {
        self.records.contains_key(&key)
    }

    /// Records a completed job and flushes it to disk. Recording a key
    /// that is already present is a no-op (first result wins — results
    /// are pure functions of the key, so any duplicate is identical).
    pub fn record(&mut self, key: u64, label: &str, payload: Json) -> std::io::Result<()> {
        if self.records.contains_key(&key) {
            return Ok(());
        }
        if self.needs_newline {
            self.file.write_all(b"\n")?;
            self.needs_newline = false;
        }
        let line = Json::Obj(vec![
            ("v".into(), Json::u64(1)),
            ("key".into(), Json::Str(hex64(key))),
            ("label".into(), Json::Str(label.to_string())),
            ("payload".into(), payload.clone()),
        ])
        .render();
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        self.records.insert(key, payload);
        Ok(())
    }

    /// Number of records currently held (loaded + newly recorded).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records loaded from disk at open time.
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// Number of malformed lines skipped at open time.
    pub fn skipped(&self) -> usize {
        self.skipped
    }
}

/// Whether the file's last byte is `\n` (an empty file counts as
/// terminated — there is no line to tear).
fn ends_with_newline(path: &Path) -> std::io::Result<bool> {
    let mut f = File::open(path)?;
    if f.metadata()?.len() == 0 {
        return Ok(true);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last[0] == b'\n')
}

fn parse_record(line: &str) -> Option<(u64, Json)> {
    let v = Json::parse(line).ok()?;
    if v.get("v").and_then(Json::as_u64) != Some(1) {
        return None;
    }
    let key = parse_hex64(v.get("key")?.as_str()?)?;
    let payload = v.get("payload")?.clone();
    Some((key, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("wasmperf-store-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn payload(n: u64) -> Json {
        Json::Obj(vec![
            ("checksum".into(), Json::u64(n)),
            ("engine".into(), Json::Str("chrome".into())),
        ])
    }

    #[test]
    fn records_survive_reopen() {
        let tmp = TempDir::new("reopen");
        {
            let mut store = ResultStore::open(&tmp.0).unwrap();
            assert!(store.is_empty());
            store.record(0xabc, "a/chrome", payload(1)).unwrap();
            store.record(0xdef, "b/firefox", payload(2)).unwrap();
            assert_eq!(store.len(), 2);
            assert_eq!(store.loaded(), 0);
        }
        // "Process restart": a fresh handle on the same directory.
        let store = ResultStore::open(&tmp.0).unwrap();
        assert_eq!(store.loaded(), 2);
        assert_eq!(store.get(0xabc), Some(&payload(1)));
        assert_eq!(store.get(0xdef), Some(&payload(2)));
        assert!(!store.contains(0x123));
    }

    #[test]
    fn duplicate_records_are_dropped() {
        let tmp = TempDir::new("dup");
        let mut store = ResultStore::open(&tmp.0).unwrap();
        store.record(7, "x", payload(1)).unwrap();
        store.record(7, "x", payload(99)).unwrap();
        assert_eq!(store.len(), 1);
        // First write wins, and only one line hit the disk.
        assert_eq!(store.get(7), Some(&payload(1)));
        let text = std::fs::read_to_string(store.path()).unwrap();
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn torn_lines_are_skipped_not_fatal() {
        let tmp = TempDir::new("torn");
        {
            let mut store = ResultStore::open(&tmp.0).unwrap();
            store.record(1, "ok", payload(1)).unwrap();
        }
        // Simulate a torn write from a killed process.
        let path = tmp.0.join(STORE_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"v\":1,\"key\":\"00000000000").unwrap();
        drop(f);
        let store = ResultStore::open(&tmp.0).unwrap();
        assert_eq!(store.loaded(), 1);
        assert_eq!(store.skipped(), 1);
        assert!(store.contains(1));
    }

    #[test]
    fn appending_after_a_torn_line_does_not_destroy_the_new_record() {
        let tmp = TempDir::new("torn-append");
        {
            let mut store = ResultStore::open(&tmp.0).unwrap();
            store.record(1, "ok", payload(1)).unwrap();
        }
        // Crash mid-`record`: a torn final line with no trailing newline.
        let path = tmp.0.join(STORE_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"v\":1,\"key\":\"00000000000").unwrap();
        drop(f);
        // Crash replay: reopen and keep recording, as a resumed run does.
        {
            let mut store = ResultStore::open(&tmp.0).unwrap();
            assert_eq!(store.skipped(), 1);
            store.record(2, "next", payload(2)).unwrap();
            store.record(3, "more", payload(3)).unwrap();
        }
        // Before the fix, record 2 was appended onto the unterminated torn
        // line, so this reload lost it too (loaded == 2, skipped == 1).
        let store = ResultStore::open(&tmp.0).unwrap();
        assert_eq!(store.loaded(), 3);
        assert_eq!(store.skipped(), 1);
        assert_eq!(store.get(1), Some(&payload(1)));
        assert_eq!(store.get(2), Some(&payload(2)));
        assert_eq!(store.get(3), Some(&payload(3)));
    }

    #[test]
    fn torn_line_termination_happens_once() {
        let tmp = TempDir::new("torn-once");
        std::fs::create_dir_all(&tmp.0).unwrap();
        std::fs::write(tmp.0.join(STORE_FILE), "{\"torn").unwrap();
        let mut store = ResultStore::open(&tmp.0).unwrap();
        store.record(1, "a", payload(1)).unwrap();
        store.record(2, "b", payload(2)).unwrap();
        let text = std::fs::read_to_string(store.path()).unwrap();
        // The torn line was terminated exactly once; no blank lines crept
        // in between the new records.
        assert_eq!(text.lines().count(), 3);
        assert!(!text.contains("\n\n"));
    }

    #[test]
    fn wrong_version_is_skipped() {
        let tmp = TempDir::new("ver");
        std::fs::create_dir_all(&tmp.0).unwrap();
        std::fs::write(
            tmp.0.join(STORE_FILE),
            "{\"v\":2,\"key\":\"0000000000000001\",\"label\":\"x\",\"payload\":null}\n",
        )
        .unwrap();
        let store = ResultStore::open(&tmp.0).unwrap();
        assert_eq!(store.loaded(), 0);
        assert_eq!(store.skipped(), 1);
    }
}
