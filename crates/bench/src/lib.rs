//! Benchmark-only crate: the Criterion benches live in `benches/`.
//!
//! Each bench regenerates (a reduced version of) one paper table or
//! figure; the full-scale reproduction is the `report` binary in
//! `wasmperf-harness`. See EXPERIMENTS.md for the mapping.
