//! Simulator-throughput harness: how many *simulated* instructions per
//! host second each interpreter loop sustains.
//!
//! Runs a fixed benchmark × engine matrix through both [`ExecMode`]s,
//! asserts the two paths produce byte-identical results (the predecode
//! invariant), and writes one JSON report (see docs/PERFORMANCE.md for
//! the schema). With `--check <baseline.json>` it fails if any row's
//! predecoded-over-legacy speedup regressed more than 20% against the
//! checked-in baseline — a host-independent ratio, so CI machines of any
//! speed can gate on it.
//!
//! Usage:
//!
//! ```text
//! wasmperf-bench [--quick] [--filter SUBSTR] [--out BENCH_PR4.json]
//!                [--check BASELINE.json]
//! ```
//!
//! `--filter SUBSTR` keeps only benchmarks whose name contains SUBSTR
//! (applied after `--quick`'s matrix selection).

use std::time::Instant;

use wasmperf_benchsuite::{Benchmark, Size};
use wasmperf_browsix::AppendPolicy;
use wasmperf_cpu::ExecMode;
use wasmperf_farm::Json;
use wasmperf_harness::engine::{execute_with_mode, prepare, Engine, RunResult};
use wasmperf_wasmjit::EngineProfile;

/// One measured matrix cell.
struct Row {
    bench: String,
    engine: String,
    instructions: u64,
    predecoded_mips: f64,
    legacy_mips: f64,
    speedup: f64,
}

/// The regression gate: fail `--check` if a row's speedup drops below
/// 80% of the baseline's.
const REGRESSION_TOLERANCE: f64 = 0.8;

fn benchmarks(quick: bool, filter: Option<&str>) -> Vec<Benchmark> {
    let names: &[&str] = if quick {
        &["gemm", "401.bzip2"]
    } else {
        &["gemm", "lu", "fdtd-2d", "401.bzip2", "458.sjeng"]
    };
    wasmperf_benchsuite::all(Size::Test)
        .into_iter()
        .filter(|b| names.contains(&b.name.as_str()))
        .filter(|b| filter.is_none_or(|f| b.name.contains(f)))
        .collect()
}

fn engines(quick: bool) -> Vec<Engine> {
    if quick {
        vec![Engine::Native, Engine::Jit(EngineProfile::chrome())]
    } else {
        Engine::headline()
    }
}

/// Times `reps` executions and returns the best simulated-MIPS figure
/// (min wall time, like any throughput benchmark) plus one result for
/// the equivalence check.
fn measure(
    bench: &Benchmark,
    engine: &Engine,
    artifact: &wasmperf_harness::engine::Artifact,
    mode: ExecMode,
    reps: u32,
) -> (f64, RunResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = execute_with_mode(bench, engine, artifact, AppendPolicy::Chunked4K, mode)
            .unwrap_or_else(|e| panic!("{}/{}: {e:?}", bench.name, engine.name()));
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    let result = result.expect("at least one rep");
    let mips = result.counters.instructions_retired as f64 / best / 1e6;
    (mips, result)
}

fn row_json(r: &Row) -> Json {
    Json::Obj(vec![
        ("bench".into(), Json::Str(r.bench.clone())),
        ("engine".into(), Json::Str(r.engine.clone())),
        ("instructions".into(), Json::u64(r.instructions)),
        ("predecoded_mips".into(), Json::Num(r.predecoded_mips)),
        ("legacy_mips".into(), Json::Num(r.legacy_mips)),
        ("speedup".into(), Json::Num(r.speedup)),
    ])
}

/// Per-(bench, engine) speedups from a report's JSON.
fn speedups(j: &Json) -> Vec<(String, String, f64)> {
    j.get("rows")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| {
                    Some((
                        r.get("bench")?.as_str()?.to_string(),
                        r.get("engine")?.as_str()?.to_string(),
                        r.get("speedup")?.as_f64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn main() {
    let mut out_path = "BENCH_PR4.json".to_string();
    let mut check_path: Option<String> = None;
    let mut quick = false;
    let mut filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            "--quick" => quick = true,
            "--filter" => filter = Some(args.next().expect("--filter needs a substring")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    let reps = if quick { 2 } else { 3 };

    let benches = benchmarks(quick, filter.as_deref());
    if benches.is_empty() {
        eprintln!("no benchmarks match the filter");
        std::process::exit(2);
    }
    let mut rows = Vec::new();
    for bench in &benches {
        for engine in &engines(quick) {
            let artifact = prepare(bench, engine)
                .unwrap_or_else(|e| panic!("{}/{}: {e:?}", bench.name, engine.name()));
            let (fast_mips, fast) = measure(bench, engine, &artifact, ExecMode::Predecoded, reps);
            let (slow_mips, slow) = measure(bench, engine, &artifact, ExecMode::Legacy, reps);
            // The whole point of having two paths: byte-identical results.
            assert_eq!(
                fast,
                slow,
                "{}/{}: predecoded and legacy runs diverged",
                bench.name,
                engine.name()
            );
            let row = Row {
                bench: bench.name.to_string(),
                engine: engine.name(),
                instructions: fast.counters.instructions_retired,
                predecoded_mips: fast_mips,
                legacy_mips: slow_mips,
                speedup: fast_mips / slow_mips,
            };
            eprintln!(
                "{:>12} {:>10}  {:>7.1} -> {:>7.1} sim-MIPS  ({:.2}x)",
                row.bench, row.engine, row.legacy_mips, row.predecoded_mips, row.speedup
            );
            rows.push(row);
        }
    }

    let geomean = (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    eprintln!("geomean speedup: {geomean:.2}x over {} rows", rows.len());

    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("wasmperf-bench/1".into())),
        ("quick".into(), Json::Bool(quick)),
        ("geomean_speedup".into(), Json::Num(geomean)),
        (
            "rows".into(),
            Json::Arr(rows.iter().map(row_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, report.render() + "\n").expect("write report");
    eprintln!("wrote {out_path}");

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path).expect("read baseline");
        let baseline = Json::parse(&text).expect("parse baseline");
        let mut failures = Vec::new();
        for (bench, engine, base) in speedups(&baseline) {
            let Some(row) = rows.iter().find(|r| r.bench == bench && r.engine == engine) else {
                continue; // baseline may cover the full matrix; --quick runs a subset
            };
            if row.speedup < base * REGRESSION_TOLERANCE {
                failures.push(format!(
                    "{bench}/{engine}: speedup {:.2}x < {:.2}x (80% of baseline {base:.2}x)",
                    row.speedup,
                    base * REGRESSION_TOLERANCE
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("throughput regression vs {path}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("no regression vs {path}");
    }
}
