//! Simulator-throughput harness: how many *simulated* instructions per
//! host second each interpreter loop sustains.
//!
//! Runs a fixed benchmark × engine matrix through the optimized
//! [`ExecMode`] tiers (direct-threaded superblock dispatch and the
//! predecoded micro-op loop) against the legacy per-instruction loop,
//! asserts all paths produce byte-identical results (the unobservable
//! contract), and writes one JSON report (see docs/PERFORMANCE.md for
//! the schema). With `--check <baseline.json>` it exits non-zero if any
//! *per-benchmark, per-tier* speedup regressed more than 20% against the
//! checked-in baseline, naming the offending benchmark and tier — a
//! host-independent ratio, so CI machines of any speed can gate on it.
//! A baseline row whose tier is missing from the current run is itself a
//! failure: a tier silently dropping out of the matrix must not pass.
//!
//! Usage:
//!
//! ```text
//! wasmperf-bench [--quick] [--filter SUBSTR] [--tier TIER]...
//!                [--out BENCH_PR8.json] [--check BASELINE.json]
//!                [--gate-threaded] [--sandbox]
//! ```
//!
//! `--filter SUBSTR` keeps only benchmarks whose name contains SUBSTR
//! (applied after `--quick`'s matrix selection). `--tier` restricts the
//! optimized tiers measured (`threaded`, `predecoded`; repeatable;
//! default both — legacy is always measured as the denominator).
//! `--gate-threaded` exits non-zero unless the threaded tier's geomean
//! speedup is at least the predecoded tier's. `--sandbox` extends the
//! engine matrix with the heap-protection ablations (`chrome+bounds`,
//! `chrome+pku`, see docs/SANDBOX.md) so interpreter-throughput effects
//! of the extra check instructions are measurable; baselines without
//! those rows are unaffected (`--check` only reads baseline rows).

use std::time::Instant;

use wasmperf_benchsuite::{Benchmark, Size};
use wasmperf_browsix::AppendPolicy;
use wasmperf_cpu::ExecMode;
use wasmperf_farm::Json;
use wasmperf_harness::engine::{execute_with_mode, prepare, Engine, RunResult};
use wasmperf_wasmjit::EngineProfile;

/// An optimized interpreter tier, measured against [`ExecMode::Legacy`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tier {
    Predecoded,
    Threaded,
}

impl Tier {
    const ALL: [Tier; 2] = [Tier::Predecoded, Tier::Threaded];

    fn name(self) -> &'static str {
        match self {
            Tier::Predecoded => "predecoded",
            Tier::Threaded => "threaded",
        }
    }

    fn mode(self) -> ExecMode {
        match self {
            Tier::Predecoded => ExecMode::Predecoded,
            Tier::Threaded => ExecMode::Threaded,
        }
    }

    fn parse(s: &str) -> Option<Tier> {
        Tier::ALL.into_iter().find(|t| t.name() == s)
    }
}

/// One measured matrix cell: the legacy denominator plus one
/// (simulated-MIPS, speedup-over-legacy) pair per measured tier.
struct Row {
    bench: String,
    engine: String,
    instructions: u64,
    legacy_mips: f64,
    tiers: Vec<(Tier, f64, f64)>,
}

impl Row {
    fn speedup(&self, tier: Tier) -> Option<f64> {
        self.tiers
            .iter()
            .find(|(t, _, _)| *t == tier)
            .map(|&(_, _, s)| s)
    }
}

/// The regression gate: fail `--check` if a row's speedup drops below
/// 80% of the baseline's.
const REGRESSION_TOLERANCE: f64 = 0.8;

fn benchmarks(quick: bool, filter: Option<&str>) -> Vec<Benchmark> {
    let names: &[&str] = if quick {
        &["gemm", "401.bzip2"]
    } else {
        &["gemm", "lu", "fdtd-2d", "401.bzip2", "458.sjeng"]
    };
    wasmperf_benchsuite::all(Size::Test)
        .into_iter()
        .filter(|b| names.contains(&b.name.as_str()))
        .filter(|b| filter.is_none_or(|f| b.name.contains(f)))
        .collect()
}

fn engines(quick: bool, sandbox: bool) -> Vec<Engine> {
    let mut engines = if quick {
        vec![Engine::Native, Engine::Jit(EngineProfile::chrome())]
    } else {
        Engine::headline()
    };
    if sandbox {
        for e in Engine::sandbox_set() {
            if !engines.contains(&e) {
                engines.push(e);
            }
        }
    }
    engines
}

/// Times `reps` executions and returns the best simulated-MIPS figure
/// (min wall time, like any throughput benchmark) plus one result for
/// the equivalence check.
fn measure(
    bench: &Benchmark,
    engine: &Engine,
    artifact: &wasmperf_harness::engine::Artifact,
    mode: ExecMode,
    reps: u32,
) -> (f64, RunResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = execute_with_mode(bench, engine, artifact, AppendPolicy::Chunked4K, mode)
            .unwrap_or_else(|e| panic!("{}/{}: {e:?}", bench.name, engine.name()));
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    let result = result.expect("at least one rep");
    let mips = result.counters.instructions_retired as f64 / best / 1e6;
    (mips, result)
}

fn row_json(r: &Row) -> Json {
    let mut fields = vec![
        ("bench".into(), Json::Str(r.bench.clone())),
        ("engine".into(), Json::Str(r.engine.clone())),
        ("instructions".into(), Json::u64(r.instructions)),
        ("legacy_mips".into(), Json::Num(r.legacy_mips)),
    ];
    for &(tier, mips, speedup) in &r.tiers {
        fields.push((format!("{}_mips", tier.name()), Json::Num(mips)));
        fields.push((format!("{}_speedup", tier.name()), Json::Num(speedup)));
    }
    Json::Obj(fields)
}

/// Per-(bench, engine, tier) speedups from a baseline report. Reads both
/// the v2 schema (`<tier>_speedup` fields) and the v1 schema, whose bare
/// `speedup` field meant predecoded-over-legacy.
fn baseline_speedups(j: &Json) -> Vec<(String, String, &'static str, f64)> {
    let mut out = Vec::new();
    let Some(rows) = j.get("rows").and_then(Json::as_arr) else {
        return out;
    };
    for r in rows {
        let (Some(bench), Some(engine)) = (
            r.get("bench").and_then(Json::as_str),
            r.get("engine").and_then(Json::as_str),
        ) else {
            continue;
        };
        for tier in Tier::ALL {
            if let Some(s) = r
                .get(&format!("{}_speedup", tier.name()))
                .and_then(Json::as_f64)
            {
                out.push((bench.to_string(), engine.to_string(), tier.name(), s));
            }
        }
        if let Some(s) = r.get("speedup").and_then(Json::as_f64) {
            out.push((
                bench.to_string(),
                engine.to_string(),
                Tier::Predecoded.name(),
                s,
            ));
        }
    }
    out
}

fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = vals.fold((0.0, 0u32), |(s, n), v| (s + v.ln(), n + 1));
    if n == 0 {
        f64::NAN
    } else {
        (sum / n as f64).exp()
    }
}

fn main() {
    let mut out_path = "BENCH_PR8.json".to_string();
    let mut check_path: Option<String> = None;
    let mut quick = false;
    let mut filter: Option<String> = None;
    let mut tiers: Vec<Tier> = Vec::new();
    let mut gate_threaded = false;
    let mut sandbox = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            "--quick" => quick = true,
            "--filter" => filter = Some(args.next().expect("--filter needs a substring")),
            "--tier" => {
                let name = args.next().expect("--tier needs threaded|predecoded");
                let tier = Tier::parse(&name)
                    .unwrap_or_else(|| panic!("unknown tier {name:?} (threaded|predecoded)"));
                if !tiers.contains(&tier) {
                    tiers.push(tier);
                }
            }
            "--gate-threaded" => gate_threaded = true,
            "--sandbox" => sandbox = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    if tiers.is_empty() {
        tiers = Tier::ALL.to_vec();
    }
    let reps = if quick { 2 } else { 3 };

    let benches = benchmarks(quick, filter.as_deref());
    if benches.is_empty() {
        eprintln!("no benchmarks match the filter");
        std::process::exit(2);
    }
    let mut rows = Vec::new();
    for bench in &benches {
        for engine in &engines(quick, sandbox) {
            let artifact = prepare(bench, engine)
                .unwrap_or_else(|e| panic!("{}/{}: {e:?}", bench.name, engine.name()));
            let (legacy_mips, legacy) = measure(bench, engine, &artifact, ExecMode::Legacy, reps);
            let mut row = Row {
                bench: bench.name.to_string(),
                engine: engine.name(),
                instructions: legacy.counters.instructions_retired,
                legacy_mips,
                tiers: Vec::new(),
            };
            for &tier in &tiers {
                let (mips, fast) = measure(bench, engine, &artifact, tier.mode(), reps);
                // The whole point of having multiple tiers: byte-identical
                // results, counters, traps, and output files.
                assert_eq!(
                    fast,
                    legacy,
                    "{}/{}: {} and legacy runs diverged",
                    bench.name,
                    engine.name(),
                    tier.name()
                );
                row.tiers.push((tier, mips, mips / legacy_mips));
            }
            let per_tier: Vec<String> = row
                .tiers
                .iter()
                .map(|&(t, m, s)| format!("{} {m:>7.1} ({s:.2}x)", t.name()))
                .collect();
            eprintln!(
                "{:>12} {:>10}  legacy {:>7.1} sim-MIPS | {}",
                row.bench,
                row.engine,
                row.legacy_mips,
                per_tier.join(" | ")
            );
            rows.push(row);
        }
    }

    let mut geomeans = Vec::new();
    for &tier in &tiers {
        let g = geomean(rows.iter().filter_map(|r| r.speedup(tier)));
        eprintln!(
            "geomean {} speedup: {g:.2}x over {} rows",
            tier.name(),
            rows.len()
        );
        geomeans.push((tier, g));
    }

    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("wasmperf-bench/2".into())),
        ("quick".into(), Json::Bool(quick)),
        (
            "geomeans".into(),
            Json::Obj(
                geomeans
                    .iter()
                    .map(|&(t, g)| (t.name().to_string(), Json::Num(g)))
                    .collect(),
            ),
        ),
        (
            "rows".into(),
            Json::Arr(rows.iter().map(row_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, report.render() + "\n").expect("write report");
    eprintln!("wrote {out_path}");

    if gate_threaded {
        let t = geomeans.iter().find(|(t, _)| *t == Tier::Threaded);
        let p = geomeans.iter().find(|(t, _)| *t == Tier::Predecoded);
        match (t, p) {
            (Some(&(_, tg)), Some(&(_, pg))) => {
                if tg < pg {
                    eprintln!(
                        "--gate-threaded: threaded geomean {tg:.2}x < predecoded geomean {pg:.2}x"
                    );
                    std::process::exit(1);
                }
                eprintln!("--gate-threaded: threaded {tg:.2}x >= predecoded {pg:.2}x");
            }
            _ => {
                eprintln!("--gate-threaded needs both tiers measured (drop --tier, or pass both)");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path).expect("read baseline");
        let baseline = Json::parse(&text).expect("parse baseline");
        let entries = baseline_speedups(&baseline);
        if entries.is_empty() {
            eprintln!("baseline {path} has no speedup rows — refusing to pass an empty check");
            std::process::exit(1);
        }
        let mut failures = Vec::new();
        let mut matched = 0usize;
        for (bench, engine, tier, base) in entries {
            let Some(row) = rows.iter().find(|r| r.bench == bench && r.engine == engine) else {
                continue; // baseline may cover the full matrix; --quick runs a subset
            };
            matched += 1;
            let Some(tier) = Tier::parse(tier) else {
                unreachable!("baseline_speedups only emits known tier names");
            };
            let Some(speedup) = row.speedup(tier) else {
                failures.push(format!(
                    "{bench}/{engine} [{}]: tier in baseline but not measured in this run \
                     (pass --tier {} or drop --tier)",
                    tier.name(),
                    tier.name()
                ));
                continue;
            };
            if speedup < base * REGRESSION_TOLERANCE {
                failures.push(format!(
                    "{bench}/{engine} [{}]: speedup {speedup:.2}x < {:.2}x (80% of baseline {base:.2}x)",
                    tier.name(),
                    base * REGRESSION_TOLERANCE
                ));
            }
        }
        if matched == 0 {
            eprintln!("no baseline row in {path} matches this run's matrix — check is vacuous");
            std::process::exit(1);
        }
        if !failures.is_empty() {
            eprintln!("throughput regression vs {path}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("no regression vs {path} ({matched} rows checked)");
    }
}
