//! Criterion benchmarks, one group per paper table/figure plus the
//! DESIGN.md ablations.
//!
//! These benchmark the *reproduction pipeline itself* (wall time on the
//! host): compile times directly realize Table 2; the per-figure groups
//! execute reduced versions of each experiment so regressions in the
//! simulator or backends are caught. The full-scale simulated numbers come
//! from `cargo run --release -p wasmperf-harness --bin report`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wasmperf_benchsuite::{polybench, spec, Size};
use wasmperf_browsix::{AppendPolicy, Kernel};
use wasmperf_clanglite::CompileOptions;
use wasmperf_cpu::{Machine, NullHost};
use wasmperf_harness::{run_one, Engine};
use wasmperf_wasmjit::{EngineProfile, Tier};

fn bench_source(name: &str) -> wasmperf_cir::HProgram {
    let b = spec::all(Size::Test)
        .into_iter()
        .find(|b| b.name == name)
        .expect("benchmark exists");
    wasmperf_cir::compile(&b.source).expect("compiles")
}

/// Table 2: compile times — clanglite (AOT) vs the Chrome JIT.
fn table2_compile_times(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_compile_times");
    g.sample_size(10);
    for name in ["401.bzip2", "458.sjeng", "450.soplex"] {
        let prog = bench_source(name);
        let wasm = wasmperf_emcc::compile(&prog);
        g.bench_with_input(BenchmarkId::new("clanglite", name), &prog, |b, p| {
            b.iter(|| black_box(wasmperf_clanglite::compile(p, &CompileOptions::default())));
        });
        g.bench_with_input(BenchmarkId::new("chrome-jit", name), &wasm, |b, w| {
            b.iter(|| black_box(wasmperf_wasmjit::compile(w, &EngineProfile::chrome())));
        });
    }
    g.finish();
}

/// Figures 3a/3b/9/10 substrate: simulator execution throughput per
/// engine on one PolyBench kernel and one SPEC analog.
fn fig3_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_execution");
    g.sample_size(10);
    let engines = [
        ("native", Engine::Native),
        ("chrome", Engine::Jit(EngineProfile::chrome())),
        ("firefox", Engine::Jit(EngineProfile::firefox())),
    ];
    for bench_name in ["gemm", "473.astar"] {
        let b = wasmperf_benchsuite::all(Size::Test)
            .into_iter()
            .find(|x| x.name == bench_name)
            .unwrap();
        for (ename, engine) in &engines {
            g.bench_function(BenchmarkId::new(*ename, bench_name), |bch| {
                bch.iter(|| black_box(run_one(&b, engine, AppendPolicy::Chunked4K).expect("runs")));
            });
        }
    }
    g.finish();
}

/// Figure 1 substrate: tiered JIT compilation.
fn fig1_polybench_vintages(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_polybench_vintages");
    g.sample_size(10);
    let b = polybench::all(Size::Test)
        .into_iter()
        .find(|b| b.name == "gemm")
        .unwrap();
    for tier in [Tier::Y2017, Tier::Y2018, Tier::Y2019] {
        let engine = Engine::Jit(EngineProfile::chrome().at_tier(tier));
        g.bench_function(format!("{tier:?}"), |bch| {
            bch.iter(|| black_box(run_one(&b, &engine, AppendPolicy::Chunked4K).expect("runs")));
        });
    }
    g.finish();
}

/// Figures 5/6 substrate: asm.js vs wasm execution.
fn fig5_asmjs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_asmjs");
    g.sample_size(10);
    let b = spec::all(Size::Test)
        .into_iter()
        .find(|b| b.name == "462.libquantum")
        .unwrap();
    for (name, engine) in [
        ("wasm", Engine::Jit(EngineProfile::chrome())),
        ("asmjs", Engine::Jit(EngineProfile::chrome_asmjs())),
    ] {
        g.bench_function(name, |bch| {
            bch.iter(|| black_box(run_one(&b, &engine, AppendPolicy::Chunked4K).expect("runs")));
        });
    }
    g.finish();
}

/// Figure 8 substrate: the matmul sweep at one size per engine.
fn fig8_matmul_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_matmul_sweep");
    g.sample_size(10);
    let src = "
        const N = 24;
        array i32 C[N * N];
        array i32 A[N * N];
        array i32 B[N * N];
        fn main() -> i32 {
            var i: i32 = 0; var k: i32 = 0; var j: i32 = 0;
            for (i = 0; i < N * N; i += 1) { A[i] = i % 7; B[i] = i % 5; }
            for (i = 0; i < N; i += 1) {
                for (k = 0; k < N; k += 1) {
                    for (j = 0; j < N; j += 1) {
                        C[i * N + j] += A[i * N + k] * B[k * N + j];
                    }
                }
            }
            var s: i32 = 0;
            for (i = 0; i < N * N; i += 1) { s = s * 31 + C[i]; }
            return s;
        }";
    let prog = wasmperf_cir::compile(src).unwrap();
    let native = wasmperf_clanglite::compile(&prog, &CompileOptions::default());
    let wasm = wasmperf_emcc::compile(&prog);
    let jit = wasmperf_wasmjit::compile(&wasm, &EngineProfile::chrome()).unwrap();
    g.bench_function("native", |b| {
        b.iter(|| {
            let mut m = Machine::new(&native, NullHost);
            black_box(m.run(native.entry.unwrap(), &[], 1 << 40).expect("runs"))
        });
    });
    g.bench_function("chrome", |b| {
        b.iter(|| {
            let mut m = Machine::new(&jit.module, NullHost);
            black_box(
                m.run(jit.module.entry.unwrap(), &[], 1 << 40)
                    .expect("runs"),
            )
        });
    });
    g.finish();
}

/// Figure 4 substrate: syscall service cost through the kernel.
fn fig4_syscall_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_syscall_cost");
    g.bench_function("open_write_close", |b| {
        b.iter(|| {
            let mut k = Kernel::new(AppendPolicy::Chunked4K);
            let mut mem = vec![0u8; 4096];
            mem[..6].copy_from_slice(b"/f.txt");
            let (fd, _) = k.syscall(&[5, 0, 0x241, 0], mem.as_mut_slice());
            let (n, _) = k.syscall(&[4, fd, 100, 2000], mem.as_mut_slice());
            let (r, _) = k.syscall(&[6, fd, 0, 0], mem.as_mut_slice());
            black_box((fd, n, r))
        });
    });
    g.finish();
}

/// §2 ablation: BROWSERFS append policies.
fn ablation_browserfs_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_browserfs_append");
    g.sample_size(10);
    for (name, policy) in [
        ("exact_fit", AppendPolicy::ExactFit),
        ("chunked_4k", AppendPolicy::Chunked4K),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut fs = wasmperf_browsix::BrowserFs::new(policy);
                fs.write_all("/log", b"").unwrap();
                let mut off = 0u64;
                for _ in 0..800 {
                    fs.write("/log", off, &[7u8; 16]).unwrap();
                    off += 16;
                }
                black_box(fs.stats)
            });
        });
    }
    g.finish();
}

/// DESIGN.md ablation: register allocators on the same LIR.
fn ablation_regalloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_regalloc");
    g.sample_size(10);
    let prog = bench_source("458.sjeng");
    g.bench_function("native_graph_coloring", |b| {
        b.iter(|| {
            black_box(wasmperf_clanglite::compile(
                &prog,
                &CompileOptions::default(),
            ))
        });
    });
    let wasm = wasmperf_emcc::compile(&prog);
    g.bench_function("jit_linear_scan", |b| {
        b.iter(|| black_box(wasmperf_wasmjit::compile(&wasm, &EngineProfile::chrome())));
    });
    g.finish();
}

/// Substrate throughput: wasm validation and binary round-trip.
fn wasm_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("wasm_substrate");
    let prog = bench_source("450.soplex");
    let module = wasmperf_emcc::compile(&prog);
    g.bench_function("validate", |b| {
        b.iter(|| black_box(wasmperf_wasm::validate(&module)).unwrap());
    });
    let bytes = wasmperf_wasm::binary::encode(&module);
    g.bench_function("encode", |b| {
        b.iter(|| black_box(wasmperf_wasm::binary::encode(&module)));
    });
    g.bench_function("decode", |b| {
        b.iter(|| black_box(wasmperf_wasm::binary::decode(&bytes)).unwrap());
    });
    g.finish();
}

criterion_group!(
    benches,
    table2_compile_times,
    fig3_execution,
    fig1_polybench_vintages,
    fig5_asmjs,
    fig8_matmul_sweep,
    fig4_syscall_cost,
    ablation_browserfs_append,
    ablation_regalloc,
    wasm_substrate,
);
criterion_main!(benches);
